//! Randomized sequential equivalence: deterministic pseudo-random operation
//! sequences on the move-ready structures must behave exactly like their
//! obvious models (`VecDeque` for the queue, `Vec` for the stacks),
//! including interleaved single-threaded moves checked against a
//! two-container model. Seeds are fixed, so failures reproduce exactly.

use lfc_runtime::SmallRng;
use lockfree_compose::{move_one, MoveOutcome, MsQueue, StampedStack, TreiberStack};
use std::collections::VecDeque;

const CASES: u64 = 64;

#[derive(Clone, Debug)]
enum QOp {
    Enq(u64),
    Deq,
}

fn gen_ops(rng: &mut SmallRng, max_len: u64) -> Vec<QOp> {
    let len = rng.below(max_len);
    (0..len)
        .map(|_| {
            if rng.below(2) == 0 {
                QOp::Enq(rng.below(1000))
            } else {
                QOp::Deq
            }
        })
        .collect()
}

#[test]
fn queue_matches_vecdeque() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x51E0 ^ case);
        let ops = gen_ops(&mut rng, 200);
        let q: MsQueue<u64> = MsQueue::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                QOp::Enq(v) => {
                    q.enqueue(v);
                    model.push_back(v);
                }
                QOp::Deq => {
                    assert_eq!(q.dequeue(), model.pop_front(), "case {case}");
                }
            }
        }
        // Drain and compare the remainder.
        while let Some(v) = model.pop_front() {
            assert_eq!(q.dequeue(), Some(v), "case {case}");
        }
        assert_eq!(q.dequeue(), None, "case {case}");
    }
}

#[test]
fn treiber_matches_vec() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x57AC ^ case);
        let ops = gen_ops(&mut rng, 200);
        let s: TreiberStack<u64> = TreiberStack::new();
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                QOp::Enq(v) => {
                    s.push(v);
                    model.push(v);
                }
                QOp::Deq => {
                    assert_eq!(s.pop(), model.pop(), "case {case}");
                }
            }
        }
        while let Some(v) = model.pop() {
            assert_eq!(s.pop(), Some(v), "case {case}");
        }
        assert_eq!(s.pop(), None, "case {case}");
    }
}

#[test]
fn stamped_matches_vec() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x57A2 ^ case);
        let ops = gen_ops(&mut rng, 200);
        let s: StampedStack<u64> = StampedStack::new();
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                QOp::Enq(v) => {
                    s.push(v);
                    model.push(v);
                }
                QOp::Deq => {
                    assert_eq!(s.pop(), model.pop(), "case {case}");
                }
            }
        }
        while let Some(v) = model.pop() {
            assert_eq!(s.pop(), Some(v), "case {case}");
        }
    }
}

#[test]
fn moves_match_two_container_model() {
    for case in 0..CASES {
        // Single-threaded: queue + stack with interleaved ops and moves,
        // checked against (VecDeque, Vec).
        let mut rng = SmallRng::seed_from_u64(0x30BE ^ case);
        let q: MsQueue<u64> = MsQueue::new();
        let s: TreiberStack<u64> = TreiberStack::new();
        let mut mq: VecDeque<u64> = VecDeque::new();
        let mut ms: Vec<u64> = Vec::new();
        let mut next = 10_000u64;
        for _ in 0..rng.below(30) {
            let v = rng.below(1000);
            q.enqueue(v);
            mq.push_back(v);
        }
        for _ in 0..rng.below(120) {
            match rng.below(5) {
                0 => {
                    q.enqueue(next);
                    mq.push_back(next);
                    next += 1;
                }
                1 => {
                    s.push(next);
                    ms.push(next);
                    next += 1;
                }
                2 => assert_eq!(q.dequeue(), mq.pop_front(), "case {case}"),
                3 => {
                    // move queue -> stack
                    let expected = mq.pop_front();
                    let got = move_one(&q, &s);
                    match expected {
                        Some(v) => {
                            assert_eq!(got, MoveOutcome::Moved, "case {case}");
                            ms.push(v);
                        }
                        None => assert_eq!(got, MoveOutcome::SourceEmpty, "case {case}"),
                    }
                }
                _ => {
                    // move stack -> queue
                    let expected = ms.pop();
                    let got = move_one(&s, &q);
                    match expected {
                        Some(v) => {
                            assert_eq!(got, MoveOutcome::Moved, "case {case}");
                            mq.push_back(v);
                        }
                        None => assert_eq!(got, MoveOutcome::SourceEmpty, "case {case}"),
                    }
                }
            }
        }
        while let Some(v) = mq.pop_front() {
            assert_eq!(q.dequeue(), Some(v), "case {case}");
        }
        while let Some(v) = ms.pop() {
            assert_eq!(s.pop(), Some(v), "case {case}");
        }
        assert_eq!(q.dequeue(), None, "case {case}");
        assert_eq!(s.pop(), None, "case {case}");
    }
}
