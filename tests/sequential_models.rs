//! Property-based sequential equivalence: random operation sequences on the
//! move-ready structures must behave exactly like their obvious models
//! (`VecDeque` for the queue, `Vec` for the stacks), including interleaved
//! single-threaded moves checked against a two-container model.

use lockfree_compose::{move_one, MoveOutcome, MsQueue, StampedStack, TreiberStack};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Debug)]
enum QOp {
    Enq(u64),
    Deq,
}

fn qop() -> impl Strategy<Value = QOp> {
    prop_oneof![
        (0u64..1000).prop_map(QOp::Enq),
        Just(QOp::Deq),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn queue_matches_vecdeque(ops in proptest::collection::vec(qop(), 0..200)) {
        let q: MsQueue<u64> = MsQueue::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                QOp::Enq(v) => {
                    q.enqueue(v);
                    model.push_back(v);
                }
                QOp::Deq => {
                    prop_assert_eq!(q.dequeue(), model.pop_front());
                }
            }
        }
        // Drain and compare the remainder.
        while let Some(v) = model.pop_front() {
            prop_assert_eq!(q.dequeue(), Some(v));
        }
        prop_assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn treiber_matches_vec(ops in proptest::collection::vec(qop(), 0..200)) {
        let s: TreiberStack<u64> = TreiberStack::new();
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                QOp::Enq(v) => {
                    s.push(v);
                    model.push(v);
                }
                QOp::Deq => {
                    prop_assert_eq!(s.pop(), model.pop());
                }
            }
        }
        while let Some(v) = model.pop() {
            prop_assert_eq!(s.pop(), Some(v));
        }
        prop_assert_eq!(s.pop(), None);
    }

    #[test]
    fn stamped_matches_vec(ops in proptest::collection::vec(qop(), 0..200)) {
        let s: StampedStack<u64> = StampedStack::new();
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                QOp::Enq(v) => {
                    s.push(v);
                    model.push(v);
                }
                QOp::Deq => {
                    prop_assert_eq!(s.pop(), model.pop());
                }
            }
        }
        while let Some(v) = model.pop() {
            prop_assert_eq!(s.pop(), Some(v));
        }
    }

    #[test]
    fn moves_match_two_container_model(
        seed in proptest::collection::vec(0u64..1000, 0..30),
        ops in proptest::collection::vec(0u8..5, 0..120),
    ) {
        // Single-threaded: queue + stack with interleaved ops and moves,
        // checked against (VecDeque, Vec).
        let q: MsQueue<u64> = MsQueue::new();
        let s: TreiberStack<u64> = TreiberStack::new();
        let mut mq: VecDeque<u64> = VecDeque::new();
        let mut ms: Vec<u64> = Vec::new();
        let mut next = 10_000u64;
        for v in seed {
            q.enqueue(v);
            mq.push_back(v);
        }
        for op in ops {
            match op {
                0 => {
                    q.enqueue(next);
                    mq.push_back(next);
                    next += 1;
                }
                1 => {
                    s.push(next);
                    ms.push(next);
                    next += 1;
                }
                2 => prop_assert_eq!(q.dequeue(), mq.pop_front()),
                3 => {
                    // move queue -> stack
                    let expected = mq.pop_front();
                    let got = move_one(&q, &s);
                    match expected {
                        Some(v) => {
                            prop_assert_eq!(got, MoveOutcome::Moved);
                            ms.push(v);
                        }
                        None => prop_assert_eq!(got, MoveOutcome::SourceEmpty),
                    }
                }
                _ => {
                    // move stack -> queue
                    let expected = ms.pop();
                    let got = move_one(&s, &q);
                    match expected {
                        Some(v) => {
                            prop_assert_eq!(got, MoveOutcome::Moved);
                            mq.push_back(v);
                        }
                        None => prop_assert_eq!(got, MoveOutcome::SourceEmpty),
                    }
                }
            }
        }
        while let Some(v) = mq.pop_front() {
            prop_assert_eq!(q.dequeue(), Some(v));
        }
        while let Some(v) = ms.pop() {
            prop_assert_eq!(s.pop(), Some(v));
        }
        prop_assert_eq!(q.dequeue(), None);
        prop_assert_eq!(s.pop(), None);
    }
}
