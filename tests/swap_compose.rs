//! The compositions the unified engine newly expresses: `swap` (atomic
//! exchange of one element between two objects), keyed fan-out
//! (`move_keyed_to_all`), mixed keyed→unkeyed moves, and user-defined
//! `Composition` chains.

use lockfree_compose::{
    move_keyed_to_all, move_keyed_to_unkeyed, swap, Composition, LfHashMap, MoveOutcome, MsQueue,
    OrderedSet, SwapOutcome, TreiberStack,
};
use std::collections::HashSet;

#[test]
fn swap_exchanges_queue_heads() {
    let a: MsQueue<u64> = MsQueue::new();
    let b: MsQueue<u64> = MsQueue::new();
    a.enqueue(1);
    b.enqueue(2);
    assert_eq!(swap(&a, &b), SwapOutcome::Swapped);
    assert_eq!(a.dequeue(), Some(2), "b's element arrived in a");
    assert_eq!(b.dequeue(), Some(1), "a's element arrived in b");
    assert!(a.is_empty() && b.is_empty());
}

#[test]
fn swap_preserves_fifo_tails() {
    let a: MsQueue<u64> = MsQueue::new();
    let b: MsQueue<u64> = MsQueue::new();
    for v in [10, 11] {
        a.enqueue(v);
    }
    for v in [20, 21] {
        b.enqueue(v);
    }
    assert_eq!(swap(&a, &b), SwapOutcome::Swapped);
    // Heads crossed over to the other queue's tail; tails stayed.
    assert_eq!(
        std::iter::from_fn(|| a.dequeue()).collect::<Vec<_>>(),
        vec![11, 20]
    );
    assert_eq!(
        std::iter::from_fn(|| b.dequeue()).collect::<Vec<_>>(),
        vec![21, 10]
    );
}

#[test]
fn swap_empty_sides_report_which() {
    let a: MsQueue<u64> = MsQueue::new();
    let b: MsQueue<u64> = MsQueue::new();
    assert_eq!(swap(&a, &b), SwapOutcome::FirstEmpty);
    a.enqueue(1);
    assert_eq!(swap(&a, &b), SwapOutcome::SecondEmpty);
    assert_eq!(a.count(), 1, "nothing moved");
    assert!(b.is_empty());
}

#[test]
fn swap_on_stacks_reports_aliasing() {
    // A LIFO's push and pop both linearize on `top`: the four-entry swap
    // would need two CASes on one word, which the capture-time alias
    // detection refuses.
    let a: TreiberStack<u64> = TreiberStack::new();
    let b: TreiberStack<u64> = TreiberStack::new();
    a.push(1);
    b.push(2);
    assert_eq!(swap(&a, &b), SwapOutcome::WouldAlias);
    assert_eq!(a.pop(), Some(1), "first stack untouched");
    assert_eq!(b.pop(), Some(2), "second stack untouched");
}

#[test]
fn self_swap_reports_aliasing() {
    let q: MsQueue<u64> = MsQueue::new();
    q.enqueue(1);
    q.enqueue(2);
    assert_eq!(swap(&q, &q), SwapOutcome::WouldAlias);
    assert_eq!(q.count(), 2, "nothing moved");
}

#[test]
fn concurrent_swaps_conserve_both_populations() {
    // Swaps in both directions racing direct traffic: a swap moves one
    // element each way, so each queue's population is invariant, and the
    // union multiset never changes.
    const PER: u64 = 40;
    let a: MsQueue<u64> = MsQueue::new();
    let b: MsQueue<u64> = MsQueue::new();
    for i in 0..PER {
        a.enqueue(i);
        b.enqueue(1_000 + i);
    }
    std::thread::scope(|sc| {
        let (a, b) = (&a, &b);
        for _ in 0..2 {
            sc.spawn(move || {
                for _ in 0..2_000 {
                    assert_ne!(swap(a, b), SwapOutcome::WouldAlias);
                }
            });
            sc.spawn(move || {
                for _ in 0..2_000 {
                    assert_ne!(swap(b, a), SwapOutcome::WouldAlias);
                }
            });
        }
    });
    let got_a: Vec<u64> = std::iter::from_fn(|| a.dequeue()).collect();
    let got_b: Vec<u64> = std::iter::from_fn(|| b.dequeue()).collect();
    assert_eq!(got_a.len() as u64, PER, "a's population is invariant");
    assert_eq!(got_b.len() as u64, PER, "b's population is invariant");
    let union: HashSet<u64> = got_a.iter().chain(got_b.iter()).copied().collect();
    assert_eq!(union.len() as u64, 2 * PER, "no token lost or duplicated");
}

#[test]
fn keyed_to_unkeyed_crosses_container_shapes() {
    let sessions: LfHashMap<u64, String> = LfHashMap::new();
    let work: MsQueue<String> = MsQueue::new();
    sessions.insert(7, "payload".into());
    assert_eq!(
        move_keyed_to_unkeyed(&sessions, &7, &work),
        MoveOutcome::Moved
    );
    assert!(!sessions.contains(&7), "left the map");
    assert_eq!(work.dequeue().as_deref(), Some("payload"));
    assert_eq!(
        move_keyed_to_unkeyed(&sessions, &7, &work),
        MoveOutcome::SourceEmpty
    );
}

#[test]
fn keyed_fan_out_is_all_or_nothing() {
    let src: LfHashMap<u64, u64> = LfHashMap::new();
    let d1: OrderedSet<u64, u64> = OrderedSet::new();
    let d2: OrderedSet<u64, u64> = OrderedSet::new();
    src.insert(3, 33);
    // Second target already holds the key: nothing may move anywhere.
    d2.insert(3, 99);
    assert_eq!(
        move_keyed_to_all(&src, &3, &[&d1, &d2]),
        MoveOutcome::TargetRejected
    );
    assert_eq!(src.get(&3), Some(33), "source untouched");
    assert_eq!(d1.get(&3), None, "first target untouched");
    assert_eq!(d2.get(&3), Some(99));
    // With the duplicate gone the same fan-out lands everywhere.
    assert_eq!(d2.remove(&3), Some(99));
    assert_eq!(move_keyed_to_all(&src, &3, &[&d1, &d2]), MoveOutcome::Moved);
    assert_eq!(src.get(&3), None);
    assert_eq!(d1.get(&3), Some(33));
    assert_eq!(d2.get(&3), Some(33));
}

#[test]
fn concurrent_keyed_fan_out_conserves_keys() {
    // The conservation property of the keyed broadcast: at the end, every
    // key lives either in the source (and in no target) or in EVERY
    // target — never in a strict subset.
    const KEYS: u64 = 60;
    let src: LfHashMap<u64, u64> = LfHashMap::with_buckets(8);
    let d1: OrderedSet<u64, u64> = OrderedSet::new();
    let d2: OrderedSet<u64, u64> = OrderedSet::new();
    for k in 0..KEYS {
        src.insert(k, k + 500);
    }
    std::thread::scope(|sc| {
        let (src, d1, d2) = (&src, &d1, &d2);
        for t in 0..3u64 {
            sc.spawn(move || {
                for k in 0..KEYS {
                    if k % 3 != t {
                        // Two of the three threads race on every key.
                        let _ = move_keyed_to_all(src, &k, &[d1, d2]);
                    }
                }
            });
        }
    });
    let mut total = 0usize;
    for k in 0..KEYS {
        let here = src.get(&k);
        let t1 = d1.get(&k);
        let t2 = d2.get(&k);
        match (here, t1, t2) {
            (Some(v), None, None) => assert_eq!(v, k + 500),
            (None, Some(v1), Some(v2)) => {
                assert_eq!(v1, k + 500);
                assert_eq!(v2, k + 500);
            }
            other => panic!("key {k} in a strict subset of containers: {other:?}"),
        }
        total += 1;
    }
    assert_eq!(total as u64, KEYS);
    assert_eq!(src.count() + d1.count(), KEYS as usize);
    assert_eq!(d1.count(), d2.count(), "targets move in lockstep");
}

#[test]
fn builder_chains_mixed_keyed_and_unkeyed_targets() {
    let staging: MsQueue<u64> = MsQueue::new();
    let index: LfHashMap<u64, u64> = LfHashMap::new();
    let log: MsQueue<u64> = MsQueue::new();
    staging.enqueue(42);
    // Unkeyed source fanned into a keyed map (under key 7) AND a queue.
    let outcome = Composition::moving_from(&staging)
        .into_keyed_target(&index, &7)
        .into_target(&log)
        .run();
    assert_eq!(outcome, MoveOutcome::Moved);
    assert!(staging.is_empty());
    assert_eq!(index.get(&7), Some(42));
    assert_eq!(log.dequeue(), Some(42));
}

#[test]
fn builder_expresses_atomic_rekey() {
    // Move a value between maps while *changing its key* — one
    // linearization point, a composition none of the fixed entry points
    // offered.
    let m1: LfHashMap<u64, String> = LfHashMap::new();
    let m2: LfHashMap<u64, String> = LfHashMap::new();
    m1.insert(1, "v".into());
    let outcome = Composition::moving_key_from(&m1, &1)
        .into_keyed_target(&m2, &2)
        .run();
    assert_eq!(outcome, MoveOutcome::Moved);
    assert!(!m1.contains(&1));
    assert_eq!(m2.get(&2).as_deref(), Some("v"));
    assert!(!m2.contains(&1));
}

#[test]
fn builder_rejects_duplicate_and_preserves_everything() {
    let m1: LfHashMap<u64, u64> = LfHashMap::new();
    let m2: LfHashMap<u64, u64> = LfHashMap::new();
    let q: MsQueue<u64> = MsQueue::new();
    m1.insert(1, 10);
    m2.insert(2, 20); // target key occupied
    let outcome = Composition::moving_key_from(&m1, &1)
        .into_target(&q)
        .into_keyed_target(&m2, &2)
        .run();
    assert_eq!(outcome, MoveOutcome::TargetRejected);
    assert_eq!(m1.get(&1), Some(10), "source untouched");
    assert_eq!(m2.get(&2), Some(20), "target untouched");
    assert!(q.is_empty(), "sibling target untouched");
}
