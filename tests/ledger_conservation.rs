//! Tier-1 slice of the PR 10 chaos campaign, driven through the public
//! `lockfree_compose::ledger` facade: a small sharded ledger under kill
//! AND OOM adversaries armed **together**, with quiesced audits asserting
//! exact token conservation while the campaign is live. The full-scale
//! version (plus the stall adversary, Zipfian load and availability
//! series) is the ignored `chaos_campaign` test in `lfc-bench`; this one
//! stays under a second so every `cargo test` run gates on conservation.
//!
//! The wind-down also exercises `fault::disarm_site`: adversaries retire
//! one at a time (kills first, OOM after), the phased-schedule shape the
//! site-level disarm API exists for.

use lockfree_compose::fault;
use lockfree_compose::ledger::{Ledger, LedgerCfg};
use std::sync::atomic::{AtomicBool, Ordering};

#[test]
fn combined_kill_and_oom_conserve_every_token() {
    fault::install_quiet_abandon_hook();
    fault::disarm();
    // The main thread audits and adopts; it must not be reaped and must
    // not advance the kill counters.
    fault::shield_thread(true);

    const ACCOUNTS: u64 = 48;
    const VOUCHERS_PER_LANE: u64 = 4;
    const WORKERS: usize = 3;
    const BURSTS: usize = 14;

    let l = Ledger::new(LedgerCfg {
        shards: 3,
        ..LedgerCfg::default()
    });
    for i in 0..ACCOUNTS {
        l.open(i % 5 + 1).unwrap();
    }
    for s in 0..3 {
        for _ in 0..VOUCHERS_PER_LANE {
            l.fund_lane(s, 2).unwrap();
        }
    }
    let abandoned0 = fault::abandoned_total();

    // Both adversaries at once (counters advance only for unshielded
    // threads). At this scale the claim-pattern engine pools 2-entry
    // descriptors, so the classic `dcas.desc`/`dcas.published` sites see
    // only a couple dozen passes — the kills and refusals go where this
    // workload actually commits: the 4-entry settle path (`kcas.announced`
    // kill, `dcas.casn` allocation) and the slow-path publish.
    fault::arm_site("kcas.announced", fault::Schedule::EveryNth(37));
    fault::arm_site("dcas.published", fault::Schedule::EveryNth(7));
    fault::arm_site(
        "dcas.casn",
        fault::Schedule::Prob {
            ppm: 25_000,
            seed: 0x1ED6,
        },
    );
    fault::arm_site(
        "dcas.desc",
        fault::Schedule::Prob {
            ppm: 25_000,
            seed: 0x6ED1,
        },
    );

    let stop = AtomicBool::new(false);
    std::thread::scope(|sc| {
        for w in 0..WORKERS {
            let l = &l;
            sc.spawn(move || {
                let mut i = w as u64;
                for _ in 0..BURSTS {
                    // A kill unwinds the burst (releasing the in-flight
                    // ticket), parks the tid as a corpse, and the same OS
                    // thread re-enters the next burst with a new identity.
                    fault::abandonment_scope(|| {
                        for _ in 0..24 {
                            let id = i % ACCOUNTS;
                            match i % 4 {
                                0 => drop(l.migrate(id, (id as usize + 1) % 3)),
                                1 => drop(l.settle(i as usize % 3, (i as usize + 1) % 3)),
                                2 => drop(l.promote(id)),
                                _ => drop(l.demote(id)),
                            }
                            i = i.wrapping_add(1);
                        }
                    });
                }
            });
        }
        // Governor: recycle dead tids while the workers run.
        let (l, stop) = (&l, &stop);
        let governor = sc.spawn(move || {
            fault::shield_thread(true);
            while !stop.load(Ordering::Acquire) {
                let _ = l.tend();
                std::thread::yield_now();
            }
        });

        // Continuous sweeps while both adversaries are live: every one
        // must balance exactly — Σ balances + Σ vouchers == minted − burned.
        for _ in 0..6 {
            std::thread::sleep(std::time::Duration::from_millis(2));
            let r = l.quiesced_audit();
            assert!(r.conserved(), "sweep under live kill+OOM: {r:?}");
            assert_eq!(r.accounts, ACCOUNTS, "no account lost or duplicated");
            assert_eq!(
                r.voucher_tokens,
                3 * VOUCHERS_PER_LANE * 2,
                "no voucher lost or duplicated"
            );
        }
        stop.store(true, Ordering::Release);
        governor.join().unwrap();
    });

    // Phased wind-down: retire the crash adversary first and audit with
    // the OOM schedule still armed, then retire that too.
    fault::disarm_site("kcas.announced");
    fault::disarm_site("dcas.published");
    let r = l.quiesced_audit();
    assert!(r.conserved(), "sweep with only the OOM adversary: {r:?}");
    fault::disarm_site("dcas.casn");
    fault::disarm_site("dcas.desc");

    let r = l.quiesced_audit();
    assert!(r.conserved(), "final sweep fully disarmed: {r:?}");
    assert_eq!(r.accounts, ACCOUNTS);
    assert_eq!(fault::corpse_count(), 0, "every corpse adopted");
    assert!(
        fault::abandoned_total() > abandoned0,
        "the kill schedule must actually reap workers"
    );
    fault::disarm();
    fault::shield_thread(false);
}
