//! The paper's §1.1 motivating scenario end-to-end: atomic keyed moves
//! between a hash map and a sorted list (and between maps).

use lockfree_compose::{move_keyed, LfHashMap, MoveOutcome, OrderedSet};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn map_to_list_keyed_move() {
    let map: LfHashMap<u64, String> = LfHashMap::new();
    let list: OrderedSet<u64, String> = OrderedSet::new();
    map.insert(7, "seven".into());
    assert_eq!(move_keyed(&map, &7, &list), MoveOutcome::Moved);
    assert_eq!(map.get(&7), None, "left the map");
    assert_eq!(
        list.get(&7).as_deref(),
        Some("seven"),
        "arrived in the list"
    );
}

#[test]
fn list_to_map_keyed_move() {
    let map: LfHashMap<u64, u64> = LfHashMap::new();
    let list: OrderedSet<u64, u64> = OrderedSet::new();
    list.insert(3, 33);
    assert_eq!(move_keyed(&list, &3, &map), MoveOutcome::Moved);
    assert_eq!(list.get(&3), None);
    assert_eq!(map.get(&3), Some(33));
}

#[test]
fn missing_key_reports_empty() {
    let a: OrderedSet<u64, u64> = OrderedSet::new();
    let b: OrderedSet<u64, u64> = OrderedSet::new();
    a.insert(1, 10);
    assert_eq!(move_keyed(&a, &2, &b), MoveOutcome::SourceEmpty);
    assert_eq!(a.count(), 1, "source untouched");
}

#[test]
fn duplicate_key_in_target_rejects_and_preserves_source() {
    let a: OrderedSet<u64, u64> = OrderedSet::new();
    let b: OrderedSet<u64, u64> = OrderedSet::new();
    a.insert(5, 50);
    b.insert(5, 55);
    assert_eq!(move_keyed(&a, &5, &b), MoveOutcome::TargetRejected);
    assert_eq!(a.get(&5), Some(50), "abort left the source intact");
    assert_eq!(b.get(&5), Some(55), "target untouched");
}

#[test]
fn keyed_ping_pong_conserves_entry() {
    let a: LfHashMap<u64, u64> = LfHashMap::new();
    let b: LfHashMap<u64, u64> = LfHashMap::new();
    a.insert(9, 99);
    let ab = AtomicUsize::new(0);
    let ba = AtomicUsize::new(0);
    std::thread::scope(|sc| {
        let (a, b, ab, ba) = (&a, &b, &ab, &ba);
        for dir in 0..2 {
            for _ in 0..2 {
                sc.spawn(move || {
                    for _ in 0..1_500 {
                        if dir == 0 {
                            if move_keyed(a, &9, b) == MoveOutcome::Moved {
                                ab.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if move_keyed(b, &9, a) == MoveOutcome::Moved {
                            ba.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        }
    });
    let (in_a, in_b) = (a.get(&9), b.get(&9));
    let (ab, ba) = (
        ab.load(Ordering::Relaxed) as i64,
        ba.load(Ordering::Relaxed) as i64,
    );
    match (in_a, in_b) {
        (Some(99), None) => assert_eq!(ab, ba),
        (None, Some(99)) => assert_eq!(ab, ba + 1),
        other => panic!("entry duplicated or lost: {other:?}"),
    }
    assert_eq!(a.count() + b.count(), 1);
}

#[test]
fn many_keys_migrate_concurrently() {
    // Migrate a whole keyspace map -> list while readers poll; every key
    // ends up in exactly one container with its value intact.
    const KEYS: u64 = 200;
    let map: LfHashMap<u64, u64> = LfHashMap::with_buckets(16);
    let list: OrderedSet<u64, u64> = OrderedSet::new();
    for k in 0..KEYS {
        map.insert(k, k + 1_000);
    }
    std::thread::scope(|sc| {
        let (map, list) = (&map, &list);
        for t in 0..3u64 {
            sc.spawn(move || {
                for k in 0..KEYS {
                    if k % 3 == t {
                        let _ = move_keyed(map, &k, list);
                    }
                }
            });
        }
        sc.spawn(move || {
            // Concurrent observer: a key's value must never be observed
            // with a wrong payload, wherever it currently lives.
            for _ in 0..2_000 {
                let k = 17;
                if let Some(v) = map.get(&k) {
                    assert_eq!(v, k + 1_000);
                }
                if let Some(v) = list.get(&k) {
                    assert_eq!(v, k + 1_000);
                }
            }
        });
    });
    for k in 0..KEYS {
        let m = map.get(&k);
        let l = list.get(&k);
        assert!(
            m.is_some() ^ l.is_some(),
            "key {k} must live in exactly one container ({m:?}/{l:?})"
        );
        assert_eq!(m.or(l), Some(k + 1_000));
    }
    assert_eq!(map.count() + list.count(), KEYS as usize);
}
