//! Empirical linearizability: record *real* concurrent histories of
//! inserts, removes and composed moves on the paper's case-study objects,
//! then verify them against the composed sequential specification in which
//! a move is a single atomic action.
//!
//! This is the strongest correctness evidence in the suite: it checks the
//! exact property Figure 1d claims — the unified linearization point.

use lfc_runtime::SmallRng;
use lockfree_compose::linear::{
    check_linearizable, render_history, Cont, PairOp, PairSpec, Recorder, SwapResult, TrioOp,
    TrioSpec,
};
use lockfree_compose::{
    move_one, move_to_all, swap, MoveOutcome, MsQueue, SwapOutcome, TreiberStack,
};
use std::sync::atomic::{AtomicU32, Ordering};

/// Run a small randomized workload on (queue, stack) recording every
/// operation with its outcome, and return the history.
fn record_history(
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> Vec<lockfree_compose::linear::Entry<PairOp>> {
    let q: MsQueue<u32> = MsQueue::new();
    let s: TreiberStack<u32> = TreiberStack::new();
    let rec: Recorder<PairOp> = Recorder::new();
    let next_val = AtomicU32::new(1);

    std::thread::scope(|sc| {
        for t in 0..threads {
            let q = &q;
            let s = &s;
            let rec = &rec;
            let next_val = &next_val;
            sc.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed + t as u64);
                for _ in 0..ops_per_thread {
                    match rng.below(6) {
                        0 => {
                            let v = next_val.fetch_add(1, Ordering::Relaxed);
                            rec.record(|| {
                                q.enqueue(v);
                                PairOp::InsA(v)
                            });
                        }
                        1 => {
                            let v = next_val.fetch_add(1, Ordering::Relaxed);
                            rec.record(|| {
                                s.push(v);
                                PairOp::InsB(v)
                            });
                        }
                        2 => {
                            rec.record(|| PairOp::RemA(q.dequeue()));
                        }
                        3 => {
                            rec.record(|| PairOp::RemB(s.pop()));
                        }
                        4 => {
                            rec.record(|| PairOp::MoveAB(move_one(q, s) == MoveOutcome::Moved));
                        }
                        _ => {
                            rec.record(|| PairOp::MoveBA(move_one(s, q) == MoveOutcome::Moved));
                        }
                    }
                }
            });
        }
    });
    rec.finish()
}

#[test]
fn recorded_queue_stack_histories_are_linearizable() {
    let spec = PairSpec {
        a: Cont::Fifo,
        b: Cont::Lifo,
    };
    // Many small windows rather than one big history: the checker is
    // exponential in the worst case, and short histories with real
    // concurrency are the informative ones.
    for round in 0..30 {
        let h = record_history(3, 8, 0xA5EED + round);
        assert!(h.len() <= 24 + 2);
        let verdict = check_linearizable(&spec, &h);
        assert!(
            verdict.is_linearizable(),
            "round {round}: recorded history not linearizable:\n{}",
            render_history(&h)
        );
    }
}

#[test]
fn recorded_move_only_histories_are_linearizable() {
    // Movers only, both directions, plus observers removing: the scenario
    // where a torn move would surface as an impossible outcome pattern.
    let spec = PairSpec {
        a: Cont::Fifo,
        b: Cont::Lifo,
    };
    for round in 0..30 {
        let q: MsQueue<u32> = MsQueue::new();
        let s: TreiberStack<u32> = TreiberStack::new();
        let rec: Recorder<PairOp> = Recorder::new();
        // Seed two elements so moves have work.
        rec.record(|| {
            q.enqueue(100 + round);
            PairOp::InsA(100 + round)
        });
        rec.record(|| {
            s.push(200 + round);
            PairOp::InsB(200 + round)
        });
        std::thread::scope(|sc| {
            let (qr, sr, recr) = (&q, &s, &rec);
            for _ in 0..2 {
                sc.spawn(move || {
                    for _ in 0..3 {
                        recr.record(|| PairOp::MoveAB(move_one(qr, sr) == MoveOutcome::Moved));
                        recr.record(|| PairOp::MoveBA(move_one(sr, qr) == MoveOutcome::Moved));
                    }
                });
            }
            sc.spawn(move || {
                for _ in 0..3 {
                    recr.record(|| PairOp::RemA(qr.dequeue()));
                    recr.record(|| PairOp::RemB(sr.pop()));
                }
            });
        });
        let h = rec.finish();
        let verdict = check_linearizable(&spec, &h);
        assert!(
            verdict.is_linearizable(),
            "round {round}: move-only history not linearizable:\n{}",
            render_history(&h)
        );
    }
}

#[test]
fn recorded_swap_histories_are_linearizable() {
    // Queue/queue swaps racing inserts, removes and moves: the swap's four
    // linearization points must appear as ONE action in every explaining
    // sequential history.
    fn swap_result(o: SwapOutcome) -> SwapResult {
        match o {
            SwapOutcome::Swapped => SwapResult::Swapped,
            SwapOutcome::FirstEmpty => SwapResult::FirstEmpty,
            SwapOutcome::SecondEmpty => SwapResult::SecondEmpty,
            SwapOutcome::Rejected | SwapOutcome::WouldAlias => {
                unreachable!("distinct unbounded queues")
            }
        }
    }
    let spec = PairSpec {
        a: Cont::Fifo,
        b: Cont::Fifo,
    };
    for round in 0..30u64 {
        let a: MsQueue<u32> = MsQueue::new();
        let b: MsQueue<u32> = MsQueue::new();
        let rec: Recorder<PairOp> = Recorder::new();
        let next_val = AtomicU32::new(1);
        std::thread::scope(|sc| {
            for t in 0..3u64 {
                let (a, b, rec, next_val) = (&a, &b, &rec, &next_val);
                sc.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x5A4B + round * 17 + t);
                    for _ in 0..8 {
                        match rng.below(6) {
                            0 => {
                                let v = next_val.fetch_add(1, Ordering::Relaxed);
                                rec.record(|| {
                                    a.enqueue(v);
                                    PairOp::InsA(v)
                                });
                            }
                            1 => {
                                let v = next_val.fetch_add(1, Ordering::Relaxed);
                                rec.record(|| {
                                    b.enqueue(v);
                                    PairOp::InsB(v)
                                });
                            }
                            2 => {
                                rec.record(|| PairOp::RemA(a.dequeue()));
                            }
                            3 => {
                                rec.record(|| PairOp::RemB(b.dequeue()));
                            }
                            4 => {
                                rec.record(|| PairOp::Swap(swap_result(swap(a, b))));
                            }
                            _ => {
                                rec.record(|| PairOp::MoveAB(move_one(a, b) == MoveOutcome::Moved));
                            }
                        }
                    }
                });
            }
        });
        let h = rec.finish();
        let verdict = check_linearizable(&spec, &h);
        assert!(
            verdict.is_linearizable(),
            "round {round}: swap history not linearizable:\n{}",
            render_history(&h)
        );
    }
}

#[test]
fn recorded_broadcast_histories_are_linearizable() {
    // move_to_all with two targets under the trio spec: an observer must
    // never catch the element in a strict subset of the targets.
    let spec = TrioSpec {
        a: Cont::Fifo,
        b: Cont::Fifo,
        c: Cont::Fifo,
    };
    for round in 0..30u64 {
        let src: MsQueue<u32> = MsQueue::new();
        let d1: MsQueue<u32> = MsQueue::new();
        let d2: MsQueue<u32> = MsQueue::new();
        let rec: Recorder<TrioOp> = Recorder::new();
        let next_val = AtomicU32::new(1);
        std::thread::scope(|sc| {
            for t in 0..3u64 {
                let (src, d1, d2, rec, next_val) = (&src, &d1, &d2, &rec, &next_val);
                sc.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0xB40A + round * 13 + t);
                    for _ in 0..8 {
                        match rng.below(5) {
                            0 => {
                                let v = next_val.fetch_add(1, Ordering::Relaxed);
                                rec.record(|| {
                                    src.enqueue(v);
                                    TrioOp::InsA(v)
                                });
                            }
                            1 => {
                                rec.record(|| TrioOp::RemA(src.dequeue()));
                            }
                            2 => {
                                rec.record(|| TrioOp::RemB(d1.dequeue()));
                            }
                            3 => {
                                rec.record(|| TrioOp::RemC(d2.dequeue()));
                            }
                            _ => {
                                rec.record(|| {
                                    TrioOp::Broadcast(
                                        move_to_all(src, &[d1, d2]) == MoveOutcome::Moved,
                                    )
                                });
                            }
                        }
                    }
                });
            }
        });
        let h = rec.finish();
        let verdict = check_linearizable(&spec, &h);
        assert!(
            verdict.is_linearizable(),
            "round {round}: broadcast history not linearizable:\n{}",
            render_history(&h)
        );
    }
}

#[test]
fn recorded_keyed_map_list_histories_are_linearizable() {
    // The §1.1 scenario under the checker: concurrent keyed inserts,
    // removes and moves between a hash map (A) and a sorted list (B),
    // verified against a spec in which the keyed move is one atomic action.
    use lockfree_compose::linear::{KeyedMoveResult, KeyedPairOp, KeyedPairSpec};
    use lockfree_compose::{move_keyed, LfHashMap, OrderedSet};

    fn mv_result(o: MoveOutcome) -> KeyedMoveResult {
        match o {
            MoveOutcome::Moved => KeyedMoveResult::Moved,
            MoveOutcome::SourceEmpty => KeyedMoveResult::Absent,
            MoveOutcome::TargetRejected => KeyedMoveResult::Duplicate,
            MoveOutcome::WouldAlias => unreachable!("distinct containers"),
        }
    }

    for round in 0..30u64 {
        let map: LfHashMap<u32, u32> = LfHashMap::with_buckets(4);
        let list: OrderedSet<u32, u32> = OrderedSet::new();
        let rec: Recorder<KeyedPairOp> = Recorder::new();
        std::thread::scope(|sc| {
            for t in 0..3u64 {
                let (map, list, rec) = (&map, &list, &rec);
                sc.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x6EED + round * 31 + t);
                    for _ in 0..8 {
                        // Small key space so operations genuinely conflict.
                        let k = rng.below(4) as u32;
                        match rng.below(6) {
                            0 => {
                                rec.record(|| KeyedPairOp::InsA(k, map.insert(k, k)));
                            }
                            1 => {
                                rec.record(|| KeyedPairOp::InsB(k, list.insert(k, k)));
                            }
                            2 => {
                                rec.record(|| KeyedPairOp::RemA(k, map.remove(&k).is_some()));
                            }
                            3 => {
                                rec.record(|| KeyedPairOp::RemB(k, list.remove(&k).is_some()));
                            }
                            4 => {
                                rec.record(|| {
                                    KeyedPairOp::MoveAB(k, mv_result(move_keyed(map, &k, list)))
                                });
                            }
                            _ => {
                                rec.record(|| {
                                    KeyedPairOp::MoveBA(k, mv_result(move_keyed(list, &k, map)))
                                });
                            }
                        }
                    }
                });
            }
        });
        let h = rec.finish();
        let verdict = check_linearizable(&KeyedPairSpec, &h);
        assert!(
            verdict.is_linearizable(),
            "round {round}: keyed history not linearizable:\n{}",
            render_history(&h)
        );
    }
}

#[test]
fn recorded_hash_map_histories_are_linearizable() {
    // LfHashMap alone under its own sequential spec: concurrent
    // insert-if-absent, remove and get on a tiny key space, small bucket
    // count so keys collide inside one ordered bucket list.
    use lockfree_compose::linear::{MapOp, MapSpec};
    use lockfree_compose::LfHashMap;

    for round in 0..30u64 {
        let map: LfHashMap<u32, u32> = LfHashMap::with_buckets(2);
        let rec: Recorder<MapOp> = Recorder::new();
        std::thread::scope(|sc| {
            for t in 0..3u64 {
                let (map, rec) = (&map, &rec);
                sc.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x4A5B + round * 29 + t);
                    for i in 0..8u32 {
                        let k = rng.below(4) as u32;
                        match rng.below(4) {
                            0 | 1 => {
                                let v = (t as u32) * 100 + i;
                                rec.record(|| MapOp::Insert(k, v, map.insert(k, v)));
                            }
                            2 => {
                                rec.record(|| MapOp::Remove(k, map.remove(&k)));
                            }
                            _ => {
                                rec.record(|| MapOp::Get(k, map.get(&k)));
                            }
                        }
                    }
                });
            }
        });
        let h = rec.finish();
        let verdict = check_linearizable(&MapSpec, &h);
        assert!(
            verdict.is_linearizable(),
            "round {round}: hash-map history not linearizable:\n{}",
            render_history(&h)
        );
    }
}

#[test]
fn recorded_map_histories_across_resize_are_linearizable() {
    // The PR 5 acceptance history: MapSpec semantics must be unchanged
    // while the split-ordered directory doubles mid-history. Two threads
    // churn a tiny key space (conflicts inside one chain before growth,
    // across split chains after) while a third floods fresh keys and
    // forces doublings, so every round's history crosses at least one
    // resize boundary.
    use lockfree_compose::linear::{MapOp, MapSpec};
    use lockfree_compose::LfHashMap;

    for round in 0..20u64 {
        let map: LfHashMap<u32, u32> = LfHashMap::with_buckets(1);
        let rec: Recorder<MapOp> = Recorder::new();
        std::thread::scope(|sc| {
            for t in 0..2u64 {
                let (map, rec) = (&map, &rec);
                sc.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x5E51 + round * 37 + t);
                    for i in 0..8u32 {
                        let k = rng.below(4) as u32;
                        match rng.below(4) {
                            0 | 1 => {
                                let v = (t as u32) * 100 + i;
                                rec.record(|| MapOp::Insert(k, v, map.insert(k, v)));
                            }
                            2 => {
                                rec.record(|| MapOp::Remove(k, map.remove(&k)));
                            }
                            _ => {
                                rec.record(|| MapOp::Get(k, map.get(&k)));
                            }
                        }
                    }
                });
            }
            let (map, rec) = (&map, &rec);
            sc.spawn(move || {
                for i in 0..16u32 {
                    let k = 1_000 + i; // disjoint from the churn key space
                    rec.record(|| MapOp::Insert(k, k, map.insert(k, k)));
                    if i % 4 == 0 {
                        map.force_grow();
                    }
                }
            });
        });
        assert!(
            map.capacity() > 1,
            "round {round}: the history must cross a resize boundary"
        );
        let h = rec.finish();
        let verdict = check_linearizable(&MapSpec, &h);
        assert!(
            verdict.is_linearizable(),
            "round {round}: map history across resize not linearizable:\n{}",
            render_history(&h)
        );
    }
}

#[test]
fn recorded_one_slot_histories_are_linearizable() {
    // OneSlot under its own spec: the bounded container whose rejected
    // puts must still linearize at a moment the slot is observably full.
    use lockfree_compose::linear::{SlotOp, SlotSpec};
    use lockfree_compose::OneSlot;

    for round in 0..30u64 {
        let slot: OneSlot<u32> = OneSlot::new();
        let rec: Recorder<SlotOp> = Recorder::new();
        std::thread::scope(|sc| {
            for t in 0..3u64 {
                let (slot, rec) = (&slot, &rec);
                sc.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x5107 + round * 23 + t);
                    for i in 0..8u32 {
                        match rng.below(3) {
                            0 => {
                                let v = (t as u32) * 100 + i + 1;
                                rec.record(|| SlotOp::Put(v, slot.put(v)));
                            }
                            1 => {
                                rec.record(|| SlotOp::Take(slot.take()));
                            }
                            _ => {
                                rec.record(|| SlotOp::Peek(slot.peek()));
                            }
                        }
                    }
                });
            }
        });
        let h = rec.finish();
        let verdict = check_linearizable(&SlotSpec, &h);
        assert!(
            verdict.is_linearizable(),
            "round {round}: one-slot history not linearizable:\n{}",
            render_history(&h)
        );
    }
}

#[test]
fn recorded_stamped_stack_histories_are_linearizable() {
    // StampedStack is a LIFO stack whose top carries a version stamp; the
    // stamp must be invisible in the history: plain StackSpec semantics,
    // including under composed moves onto a queue.
    use lockfree_compose::linear::{StackOp, StackSpec};
    use lockfree_compose::StampedStack;

    for round in 0..30u64 {
        let s: StampedStack<u32> = StampedStack::new();
        let rec: Recorder<StackOp> = Recorder::new();
        std::thread::scope(|sc| {
            for t in 0..3u64 {
                let (s, rec) = (&s, &rec);
                sc.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x57A4 + round * 19 + t);
                    for i in 0..8u32 {
                        if rng.below(2) == 0 {
                            let v = (t as u32) * 100 + i + 1;
                            rec.record(|| {
                                s.push(v);
                                StackOp::Push(v)
                            });
                        } else {
                            rec.record(|| StackOp::Pop(s.pop()));
                        }
                    }
                });
            }
        });
        let h = rec.finish();
        let verdict = check_linearizable(&StackSpec, &h);
        assert!(
            verdict.is_linearizable(),
            "round {round}: stamped-stack history not linearizable:\n{}",
            render_history(&h)
        );
    }
}

#[test]
fn recorded_stamped_move_histories_are_linearizable() {
    // Composed moves between a StampedStack (A, LIFO) and an MsQueue (B,
    // FIFO): the stamp packing must not break the unified linearization
    // point.
    let spec = PairSpec {
        a: Cont::Lifo,
        b: Cont::Fifo,
    };
    for round in 0..20u64 {
        let s: lockfree_compose::StampedStack<u32> = lockfree_compose::StampedStack::new();
        let q: MsQueue<u32> = MsQueue::new();
        let rec: Recorder<PairOp> = Recorder::new();
        let next_val = AtomicU32::new(1);
        std::thread::scope(|sc| {
            for t in 0..3u64 {
                let (s, q, rec, next_val) = (&s, &q, &rec, &next_val);
                sc.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x57A5 + round * 37 + t);
                    for _ in 0..8 {
                        match rng.below(6) {
                            0 => {
                                let v = next_val.fetch_add(1, Ordering::Relaxed);
                                rec.record(|| {
                                    s.push(v);
                                    PairOp::InsA(v)
                                });
                            }
                            1 => {
                                let v = next_val.fetch_add(1, Ordering::Relaxed);
                                rec.record(|| {
                                    q.enqueue(v);
                                    PairOp::InsB(v)
                                });
                            }
                            2 => {
                                rec.record(|| PairOp::RemA(s.pop()));
                            }
                            3 => {
                                rec.record(|| PairOp::RemB(q.dequeue()));
                            }
                            4 => {
                                rec.record(|| PairOp::MoveAB(move_one(s, q) == MoveOutcome::Moved));
                            }
                            _ => {
                                rec.record(|| PairOp::MoveBA(move_one(q, s) == MoveOutcome::Moved));
                            }
                        }
                    }
                });
            }
        });
        let h = rec.finish();
        let verdict = check_linearizable(&spec, &h);
        assert!(
            verdict.is_linearizable(),
            "round {round}: stamped-stack move history not linearizable:\n{}",
            render_history(&h)
        );
    }
}

#[test]
fn recorded_skip_map_histories_are_linearizable() {
    // LfSkipMap under MapSpec: concurrent insert-if-absent, remove and get
    // on a tiny key space so every operation contends inside one level-0
    // chain — with tower builds and unlinks racing throughout. The tower
    // CASes are auxiliary; only the level-0 protocol word may decide
    // outcomes, which is exactly what the checker verifies.
    use lockfree_compose::linear::{MapOp, MapSpec};
    use lockfree_compose::LfSkipMap;

    for round in 0..30u64 {
        let map: LfSkipMap<u32, u32> = LfSkipMap::new();
        let rec: Recorder<MapOp> = Recorder::new();
        std::thread::scope(|sc| {
            for t in 0..3u64 {
                let (map, rec) = (&map, &rec);
                sc.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x5C1F + round * 41 + t);
                    for i in 0..8u32 {
                        let k = rng.below(4) as u32;
                        match rng.below(4) {
                            0 | 1 => {
                                let v = (t as u32) * 100 + i;
                                rec.record(|| MapOp::Insert(k, v, map.insert(k, v)));
                            }
                            2 => {
                                rec.record(|| MapOp::Remove(k, map.remove(&k)));
                            }
                            _ => {
                                rec.record(|| MapOp::Get(k, map.get(&k)));
                            }
                        }
                    }
                });
            }
        });
        let h = rec.finish();
        let verdict = check_linearizable(&MapSpec, &h);
        assert!(
            verdict.is_linearizable(),
            "round {round}: skip-map history not linearizable:\n{}",
            render_history(&h)
        );
    }
}

#[test]
fn recorded_skip_map_range_entries_linearize_per_key() {
    // The documented `range` contract made checkable: a range is NOT a
    // consistent cut, but each reported (or omitted) in-bound key is an
    // individually linearizable presence observation somewhere inside the
    // range call's interval. Each range over the probe window is therefore
    // recorded as one Get entry per probe key — present keys with their
    // observed value, absent keys as Get(k, None) — all sharing the range
    // call's [invoke, ret] interval, and the whole history must linearize
    // under MapSpec. A range that resurrected a dead key, missed a stable
    // one, or returned a torn value would be caught here.
    use lockfree_compose::linear::{MapOp, MapSpec};
    use lockfree_compose::LfSkipMap;

    const PROBE_KEYS: u32 = 4;
    for round in 0..20u64 {
        let map: LfSkipMap<u32, u32> = LfSkipMap::new();
        let rec: Recorder<MapOp> = Recorder::new();
        std::thread::scope(|sc| {
            for t in 0..2u64 {
                let (map, rec) = (&map, &rec);
                sc.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0xA5C1 + round * 53 + t);
                    for i in 0..10u32 {
                        let k = rng.below(PROBE_KEYS as u64) as u32;
                        match rng.below(3) {
                            0 | 1 => {
                                let v = (t as u32) * 100 + i;
                                rec.record(|| MapOp::Insert(k, v, map.insert(k, v)));
                            }
                            _ => {
                                rec.record(|| MapOp::Remove(k, map.remove(&k)));
                            }
                        }
                    }
                });
            }
            let (map, rec) = (&map, &rec);
            sc.spawn(move || {
                for _ in 0..10 {
                    let invoke = rec.now();
                    let snap = map.range(0..PROBE_KEYS);
                    let ret = rec.now();
                    // Sortedness is part of the contract regardless of
                    // concurrency.
                    for w in snap.windows(2) {
                        assert!(w[0].0 < w[1].0, "range must be strictly ascending");
                    }
                    for k in 0..PROBE_KEYS {
                        let seen = snap.iter().find(|(sk, _)| *sk == k).map(|(_, v)| *v);
                        rec.push(MapOp::Get(k, seen), invoke, ret);
                    }
                }
            });
        });
        let h = rec.finish();
        let verdict = check_linearizable(&MapSpec, &h);
        assert!(
            verdict.is_linearizable(),
            "round {round}: per-entry range observations not linearizable:\n{}",
            render_history(&h)
        );
    }
}
