//! `LfSkipMap` under composition: keyed moves, atomic rekeys and swaps
//! between the skip map and every other keyed structure must conserve
//! tokens — each key's value lives in exactly one container at all times,
//! and a skip map is indistinguishable from the other keyed maps at the
//! composition layer (level-0 is the only linearization chain; towers are
//! auxiliary and never participate in a capture).

use lockfree_compose::{
    move_keyed, move_keyed_to_all, move_keyed_to_unkeyed, Composition, LfHashMap, LfSkipMap,
    MoveOutcome, MsQueue, OrderedSet,
};

#[test]
fn skip_map_to_every_keyed_structure_and_back() {
    // One round-trip against each keyed peer (and itself): the token is
    // present in exactly one container after every hop, value intact.
    let skip: LfSkipMap<u64, String> = LfSkipMap::new();
    let map: LfHashMap<u64, String> = LfHashMap::new();
    let list: OrderedSet<u64, String> = OrderedSet::new();
    let skip2: LfSkipMap<u64, String> = LfSkipMap::new();

    assert!(skip.insert(7, "tok".into()));

    // skip -> hash map -> skip
    assert_eq!(move_keyed(&skip, &7, &map), MoveOutcome::Moved);
    assert!(!skip.contains(&7));
    assert_eq!(map.get(&7).as_deref(), Some("tok"));
    assert_eq!(move_keyed(&map, &7, &skip), MoveOutcome::Moved);
    assert!(!map.contains(&7));

    // skip -> ordered list -> skip
    assert_eq!(move_keyed(&skip, &7, &list), MoveOutcome::Moved);
    assert_eq!(list.get(&7).as_deref(), Some("tok"));
    assert_eq!(move_keyed(&list, &7, &skip), MoveOutcome::Moved);
    assert!(!list.contains(&7));

    // skip -> skip
    assert_eq!(move_keyed(&skip, &7, &skip2), MoveOutcome::Moved);
    assert!(!skip.contains(&7));
    assert_eq!(skip2.get(&7).as_deref(), Some("tok"));
    assert_eq!(skip2.count(), 1);
}

#[test]
fn skip_map_duplicate_and_missing_outcomes() {
    let a: LfSkipMap<u64, u64> = LfSkipMap::new();
    let b: LfHashMap<u64, u64> = LfHashMap::new();
    assert_eq!(move_keyed(&a, &1, &b), MoveOutcome::SourceEmpty);
    a.insert(1, 11);
    b.insert(1, 99);
    assert_eq!(move_keyed(&a, &1, &b), MoveOutcome::TargetRejected);
    assert_eq!(a.get(&1), Some(11), "source untouched on rejection");
    assert_eq!(b.get(&1), Some(99), "target untouched on rejection");
}

#[test]
fn skip_map_atomic_rekey_swaps_keys_between_maps() {
    // The composition-builder "swap" shape for keyed structures: two
    // rekeying moves exchange which container holds which key, each one
    // a single linearization point through the skip map's level-0 chain.
    let skip: LfSkipMap<u64, String> = LfSkipMap::new();
    let map: LfHashMap<u64, String> = LfHashMap::new();
    skip.insert(1, "from-skip".into());
    map.insert(2, "from-map".into());

    let out = Composition::moving_key_from(&skip, &1)
        .into_keyed_target(&map, &10)
        .run();
    assert_eq!(out, MoveOutcome::Moved);
    let out = Composition::moving_key_from(&map, &2)
        .into_keyed_target(&skip, &20)
        .run();
    assert_eq!(out, MoveOutcome::Moved);

    assert_eq!(map.get(&10).as_deref(), Some("from-skip"));
    assert_eq!(skip.get(&20).as_deref(), Some("from-map"));
    assert!(!skip.contains(&1));
    assert!(!map.contains(&2));
    assert_eq!(skip.count(), 1);
    assert_eq!(map.count(), 1);
}

#[test]
fn skip_map_keyed_fan_out_is_all_or_nothing() {
    // Skip map as both source and (twice) target of the keyed broadcast.
    let src: LfSkipMap<u64, u64> = LfSkipMap::new();
    let d1: LfSkipMap<u64, u64> = LfSkipMap::new();
    let d2: LfSkipMap<u64, u64> = LfSkipMap::new();
    src.insert(3, 33);
    d2.insert(3, 99); // second target occupied: nothing moves
    assert_eq!(
        move_keyed_to_all(&src, &3, &[&d1, &d2]),
        MoveOutcome::TargetRejected
    );
    assert_eq!(src.get(&3), Some(33));
    assert_eq!(d1.get(&3), None);
    assert_eq!(d2.remove(&3), Some(99));
    assert_eq!(move_keyed_to_all(&src, &3, &[&d1, &d2]), MoveOutcome::Moved);
    assert_eq!(src.get(&3), None);
    assert_eq!(d1.get(&3), Some(33));
    assert_eq!(d2.get(&3), Some(33));
}

#[test]
fn skip_map_to_unkeyed_queue() {
    let sessions: LfSkipMap<u64, String> = LfSkipMap::new();
    let work: MsQueue<String> = MsQueue::new();
    sessions.insert(7, "payload".into());
    assert_eq!(
        move_keyed_to_unkeyed(&sessions, &7, &work),
        MoveOutcome::Moved
    );
    assert!(!sessions.contains(&7));
    assert_eq!(work.dequeue().as_deref(), Some("payload"));
}

#[test]
fn skip_map_keyed_ping_pong_conserves_entry() {
    // Two threads move the same key in opposite directions between a skip
    // map and a hash map; a third observes. The entry is never duplicated
    // and never lost.
    let a: LfSkipMap<u64, u64> = LfSkipMap::new();
    let b: LfHashMap<u64, u64> = LfHashMap::new();
    a.insert(5, 55);
    std::thread::scope(|sc| {
        let (a, b) = (&a, &b);
        sc.spawn(move || {
            for _ in 0..400 {
                let _ = move_keyed(a, &5, b);
            }
        });
        sc.spawn(move || {
            for _ in 0..400 {
                let _ = move_keyed(b, &5, a);
            }
        });
        sc.spawn(move || {
            for _ in 0..800 {
                let (x, y) = (a.get(&5), b.get(&5));
                if let Some(v) = x.or(y) {
                    assert_eq!(v, 55, "payload must never corrupt");
                }
            }
        });
    });
    let (x, y) = (a.get(&5), b.get(&5));
    assert!(
        x.is_some() ^ y.is_some(),
        "entry must live in exactly one container ({x:?}/{y:?})"
    );
    assert_eq!(a.count() + b.count(), 1);
}

#[test]
fn whole_keyspace_migrates_through_skip_map_concurrently() {
    // hash map -> skip map -> ordered list: three racing movers drain each
    // stage while it fills; every key ends in exactly one container with
    // its value intact, and the skip map's ordered view stays sorted.
    const KEYS: u64 = 120;
    let map: LfHashMap<u64, u64> = LfHashMap::with_buckets(8);
    let skip: LfSkipMap<u64, u64> = LfSkipMap::new();
    let list: OrderedSet<u64, u64> = OrderedSet::new();
    for k in 0..KEYS {
        map.insert(k, k + 1_000);
    }
    std::thread::scope(|sc| {
        let (map, skip, list) = (&map, &skip, &list);
        for t in 0..2u64 {
            sc.spawn(move || {
                for k in 0..KEYS {
                    if k % 2 == t {
                        let _ = move_keyed(map, &k, skip);
                    }
                }
            });
            sc.spawn(move || {
                for k in 0..KEYS {
                    let _ = move_keyed(skip, &k, list);
                }
            });
        }
        sc.spawn(move || {
            // Ordered observer: any snapshot of the skip map mid-migration
            // must be strictly ascending with intact payloads.
            for _ in 0..50 {
                let snap = skip.to_vec();
                for w in snap.windows(2) {
                    assert!(w[0].0 < w[1].0, "range must stay sorted under churn");
                }
                for (k, v) in snap {
                    assert_eq!(v, k + 1_000);
                }
            }
        });
    });
    for k in 0..KEYS {
        let homes = [map.get(&k), skip.get(&k), list.get(&k)];
        let present = homes.iter().flatten().count();
        assert_eq!(present, 1, "key {k} must live in exactly one container");
        assert_eq!(homes.iter().flatten().next(), Some(&(k + 1_000)));
    }
    assert_eq!(map.count() + skip.count() + list.count(), KEYS as usize);
}
