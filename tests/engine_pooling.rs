//! Acceptance check for the unified engine's descriptor economy: the
//! steady-state `move_to_all` hot path performs **zero** `lfc-alloc` block
//! allocations — solo commits build no descriptors at all, and published
//! CASN/RDCSS descriptors are recycled through the per-thread pools.
//!
//! One test per file (like `solo_paths.rs` in lfc-dcas): a sibling test's
//! thread would register itself and both disturb the solo phase and race
//! the process-global pool counters.

use lfc_dcas::kcas::counters;
use lockfree_compose::{move_to_all, MoveOutcome, MsQueue};

fn roundtrip(src: &MsQueue<u64>, refs: &[&MsQueue<u64>], dsts: &[MsQueue<u64>]) {
    assert_eq!(move_to_all(src, refs), MoveOutcome::Moved);
    for (i, d) in dsts.iter().enumerate() {
        let v = d.dequeue().unwrap();
        if i == 0 {
            src.enqueue(v);
        }
    }
}

#[test]
fn steady_state_move_to_all_never_hits_the_allocator() {
    let src: MsQueue<u64> = MsQueue::new();
    let dsts: Vec<MsQueue<u64>> = (0..3).map(|_| MsQueue::new()).collect();
    let refs: Vec<&MsQueue<u64>> = dsts.iter().collect();
    src.enqueue(1);

    // Phase 1: solo regime — the commit never builds a descriptor.
    assert_eq!(lfc_runtime::active_threads(), 1);
    for _ in 0..50 {
        roundtrip(&src, &refs, &dsts);
    }
    assert_eq!(
        counters::casn_pool_hits()
            + counters::casn_pool_misses()
            + counters::rdcss_pool_hits()
            + counters::rdcss_pool_misses(),
        0,
        "solo move_to_all must not touch the descriptor layer at all"
    );

    // Phase 2: a second registered thread forces the published CASN path.
    let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
    let blocker = std::thread::spawn(move || {
        let _g = lockfree_compose::hazard::pin();
        ready_tx.send(()).unwrap();
        stop_rx.recv().ok();
    });
    ready_rx.recv().unwrap();

    // Warmup: first commits miss the (empty) pools; flushing returns the
    // retired descriptors so the pools are primed.
    for _ in 0..50 {
        roundtrip(&src, &refs, &dsts);
        lockfree_compose::hazard::flush();
    }
    // Steady state: every allocation must be a pool hit.
    let miss0 = counters::casn_pool_misses() + counters::rdcss_pool_misses();
    let hits0 = counters::casn_pool_hits() + counters::rdcss_pool_hits();
    for _ in 0..200 {
        roundtrip(&src, &refs, &dsts);
        lockfree_compose::hazard::flush();
    }
    assert_eq!(
        counters::casn_pool_misses() + counters::rdcss_pool_misses(),
        miss0,
        "steady-state move_to_all must never fall through to lfc-alloc"
    );
    assert!(
        counters::casn_pool_hits() + counters::rdcss_pool_hits() >= hits0 + 200,
        "steady-state commits are served by the pools"
    );

    stop_tx.send(()).unwrap();
    blocker.join().unwrap();
}
