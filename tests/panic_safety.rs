//! Panic-safety audit (PR 8, satellite 2): a user-code panic that unwinds
//! out of a composed operation must leave the global protocol state
//! *helpable* — no dangling descriptor claim, no stuck hazard slot, no
//! poisoned object — so that every later operation (same thread or any
//! other) completes normally and conservation still holds.
//!
//! The organic panic source in this crate's API surface is `T::clone`:
//! removes clone the element before their linearization point (paper
//! requirement 4) and multi-target moves clone once per target. The drop
//! paths under audit are `OpGuard` (epoch unpin), the engine's `Drop`
//! (clears `ENTRY*` hazard promotions when the composition never
//! finished), and the descriptor handles (retire-on-drop). Panics injected
//! *between descriptor publication and decision* are the abandonment
//! subsystem's territory (`lfc_runtime::fault`) and are covered by the
//! crash-adversary and model-kill suites.

use lockfree_compose::{move_one, Composition, LfHashMap, MoveOutcome, MsQueue, TreiberStack};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Serializes the tests in this binary: they share the panic-arming
/// statics below.
static SERIAL: Mutex<()> = Mutex::new(());

static ARMED: AtomicBool = AtomicBool::new(false);

/// A value whose `Clone` panics while [`ARMED`] — the clone site sits on
/// the remove path *before* the linearization point, so an armed move must
/// unwind without having changed either object.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Bomb(u64);

impl Clone for Bomb {
    fn clone(&self) -> Self {
        if ARMED.load(Ordering::Relaxed) {
            panic!("injected clone panic");
        }
        Bomb(self.0)
    }
}

#[test]
fn unwind_mid_move_leaves_both_objects_usable() {
    let _serial = SERIAL.lock().unwrap();
    const N: u64 = 16;
    let q: MsQueue<Bomb> = MsQueue::new();
    let s: TreiberStack<Bomb> = TreiberStack::new();
    for i in 0..N {
        q.enqueue(Bomb(i)); // enqueue moves, no clone
    }

    ARMED.store(true, Ordering::Relaxed);
    let r = catch_unwind(AssertUnwindSafe(|| move_one(&q, &s)));
    ARMED.store(false, Ordering::Relaxed);
    assert!(r.is_err(), "armed clone must panic out of the move");

    // The panic fired before the remove's linearization point: nothing
    // moved, nothing was lost, and — the audit target — the unwound
    // thread's guards were released, so the same thread immediately
    // composes again.
    for _ in 0..N {
        assert_eq!(move_one(&q, &s), MoveOutcome::Moved);
    }
    assert_eq!(move_one(&q, &s), MoveOutcome::SourceEmpty);

    // Conservation: every token exists exactly once, on the stack.
    let mut all: Vec<u64> = std::iter::from_fn(|| s.pop().map(|b| b.0)).collect();
    all.sort_unstable();
    assert_eq!(all, (0..N).collect::<Vec<u64>>());
}

#[test]
fn other_threads_are_unaffected_by_an_unwound_peer() {
    let _serial = SERIAL.lock().unwrap();
    const N: u64 = 64;
    let q: MsQueue<Bomb> = MsQueue::new();
    let s: TreiberStack<Bomb> = TreiberStack::new();
    for i in 0..N {
        q.enqueue(Bomb(i));
    }

    // A dedicated thread panics out of a move (several times, to stress
    // repeated unwinds from the same thread's re-used guards/engine), then
    // survivor threads drain the whole queue through composed moves.
    std::thread::scope(|sc| {
        let (q, s) = (&q, &s);
        sc.spawn(move || {
            for _ in 0..8 {
                ARMED.store(true, Ordering::Relaxed);
                let r = catch_unwind(AssertUnwindSafe(|| move_one(q, s)));
                ARMED.store(false, Ordering::Relaxed);
                assert!(r.is_err());
            }
        })
        .join()
        .expect("the panics are caught inside the closure");
        for _ in 0..2 {
            sc.spawn(move || {
                while move_one(q, s) == MoveOutcome::Moved {
                    std::hint::spin_loop();
                }
            });
        }
    });

    let mut all: Vec<u64> = std::iter::from_fn(|| s.pop().map(|b| b.0)).collect();
    all.sort_unstable();
    assert_eq!(
        all,
        (0..N).collect::<Vec<u64>>(),
        "conservation after unwinds"
    );
}

#[test]
fn unwind_mid_builder_composition_is_clean() {
    let _serial = SERIAL.lock().unwrap();
    let m: LfHashMap<u64, Bomb> = LfHashMap::new();
    let q: MsQueue<Bomb> = MsQueue::new();
    let log: MsQueue<Bomb> = MsQueue::new();
    assert!(m.insert(1, Bomb(10)));

    // A three-stage composition (keyed remove fanned into two queues): the
    // second target's clone panics, unwinding through the builder run with
    // stage captures already taken — the engine `Drop` must clear its
    // `ENTRY*` promotions so reclamation is not wedged afterwards.
    ARMED.store(true, Ordering::Relaxed);
    let r = catch_unwind(AssertUnwindSafe(|| {
        Composition::moving_key_from(&m, &1)
            .into_target(&q)
            .into_target(&log)
            .run()
    }));
    ARMED.store(false, Ordering::Relaxed);
    assert!(r.is_err());

    // Nothing committed, nothing leaked protection: the same composition
    // now succeeds, and the element lands in every target.
    let outcome = Composition::moving_key_from(&m, &1)
        .into_target(&q)
        .into_target(&log)
        .run();
    assert_eq!(outcome, MoveOutcome::Moved);
    assert!(!m.contains(&1));
    assert_eq!(q.dequeue(), Some(Bomb(10)));
    assert_eq!(log.dequeue(), Some(Bomb(10)));

    // The unwound attempt pinned epochs and promoted ENTRY hazards; had
    // any survived the unwind, this flush could never reclaim the nodes
    // retired above. Drive the domain and require forward progress.
    let before = lockfree_compose::hazard::pending_retired();
    for _ in 0..64 {
        lockfree_compose::hazard::flush();
        if lockfree_compose::hazard::pending_retired() < before || before == 0 {
            break;
        }
        std::thread::yield_now();
    }
}
