//! The n-object move extension (paper §8): remove from one object, insert
//! into n others, all atomically.

use lockfree_compose::{move_to_all, DynMoveTarget, MoveOutcome, MsQueue, OneSlot, TreiberStack};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn broadcast_to_two_stacks() {
    let q: MsQueue<u64> = MsQueue::new();
    let a: TreiberStack<u64> = TreiberStack::new();
    let b: TreiberStack<u64> = TreiberStack::new();
    q.enqueue(7);
    assert_eq!(move_to_all(&q, &[&a, &b]), MoveOutcome::Moved);
    assert!(q.is_empty(), "element left the source");
    assert_eq!(a.pop(), Some(7), "clone in target 1");
    assert_eq!(b.pop(), Some(7), "clone in target 2");
}

#[test]
fn broadcast_to_five_targets() {
    let q: MsQueue<u64> = MsQueue::new();
    let dsts: Vec<MsQueue<u64>> = (0..5).map(|_| MsQueue::new()).collect();
    q.enqueue(42);
    let refs: Vec<&MsQueue<u64>> = dsts.iter().collect();
    assert_eq!(move_to_all(&q, &refs), MoveOutcome::Moved);
    for d in &dsts {
        assert_eq!(d.dequeue(), Some(42));
    }
}

#[test]
fn empty_source_reports_cleanly() {
    let q: MsQueue<u64> = MsQueue::new();
    let a: TreiberStack<u64> = TreiberStack::new();
    assert_eq!(move_to_all(&q, &[&a]), MoveOutcome::SourceEmpty);
    assert!(a.is_empty());
}

#[test]
fn one_full_target_aborts_whole_broadcast() {
    // All-or-nothing: if any target rejects, nothing moves anywhere.
    let q: MsQueue<u64> = MsQueue::new();
    let s1: OneSlot<u64> = OneSlot::new();
    let s2: OneSlot<u64> = OneSlot::new();
    q.enqueue(1);
    s2.put(99); // second target is full
    assert_eq!(move_to_all(&q, &[&s1, &s2]), MoveOutcome::TargetRejected);
    assert_eq!(q.count(), 1, "source untouched");
    assert!(!s1.is_occupied(), "first target untouched");
    assert_eq!(s2.take(), Some(99));
    // With both free the same broadcast succeeds.
    assert!(s2.take().is_none());
    assert_eq!(move_to_all(&q, &[&s1, &s2]), MoveOutcome::Moved);
    assert_eq!(s1.take(), Some(1));
    assert_eq!(s2.take(), Some(1));
}

#[test]
fn duplicate_target_reports_aliasing() {
    let q: MsQueue<u64> = MsQueue::new();
    let s: TreiberStack<u64> = TreiberStack::new();
    q.enqueue(5);
    assert_eq!(move_to_all(&q, &[&s, &s]), MoveOutcome::WouldAlias);
    assert_eq!(q.count(), 1, "nothing moved");
    assert!(s.is_empty());
}

#[test]
fn single_target_multi_move_equals_move_one() {
    let q: MsQueue<u64> = MsQueue::new();
    let s: TreiberStack<u64> = TreiberStack::new();
    q.enqueue(3);
    assert_eq!(move_to_all(&q, &[&s]), MoveOutcome::Moved);
    assert_eq!(s.pop(), Some(3));
}

#[test]
fn concurrent_broadcasts_deliver_everywhere_exactly_once() {
    const TOKENS: u64 = 400;
    let src: MsQueue<u64> = MsQueue::new();
    let d1: MsQueue<u64> = MsQueue::new();
    let d2: TreiberStack<u64> = TreiberStack::new();
    for i in 0..TOKENS {
        src.enqueue(i);
    }
    let moved = AtomicUsize::new(0);
    std::thread::scope(|sc| {
        let (src, d1, d2, moved) = (&src, &d1, &d2, &moved);
        for _ in 0..3 {
            sc.spawn(move || {
                // Heterogeneous targets (queue + stack) share one slice via
                // the object-safe `DynMoveTarget` bridge.
                let targets: [&dyn DynMoveTarget<u64>; 2] = [d1, d2];
                while move_to_all(src, &targets) == MoveOutcome::Moved {
                    moved.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(moved.load(Ordering::Relaxed), TOKENS as usize);
    let mut got1: Vec<u64> = std::iter::from_fn(|| d1.dequeue()).collect();
    let mut got2: Vec<u64> = std::iter::from_fn(|| d2.pop()).collect();
    got1.sort_unstable();
    got2.sort_unstable();
    let want: Vec<u64> = (0..TOKENS).collect();
    assert_eq!(got1, want, "every token exactly once in target 1");
    assert_eq!(got2, want, "every token exactly once in target 2");
    assert!(src.is_empty());
}

#[test]
fn broadcasts_race_direct_traffic() {
    // Broadcasters race direct pushers/poppers on the targets; per-target
    // accounting must still balance.
    const TOKENS: u64 = 300;
    let src: MsQueue<u64> = MsQueue::new();
    let d1: TreiberStack<u64> = TreiberStack::new();
    let d2: TreiberStack<u64> = TreiberStack::new();
    for i in 0..TOKENS {
        src.enqueue(i);
    }
    let moved = AtomicUsize::new(0);
    let direct_popped = AtomicUsize::new(0);
    std::thread::scope(|sc| {
        let (src, d1, d2, moved, direct_popped) = (&src, &d1, &d2, &moved, &direct_popped);
        for _ in 0..2 {
            sc.spawn(move || {
                while move_to_all(src, &[d1, d2]) == MoveOutcome::Moved {
                    moved.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        sc.spawn(move || {
            for _ in 0..20_000 {
                if d1.pop().is_some() {
                    direct_popped.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    });
    let moved = moved.load(Ordering::Relaxed);
    let popped = direct_popped.load(Ordering::Relaxed);
    assert_eq!(moved, TOKENS as usize);
    assert_eq!(popped + d1.count(), moved, "target 1 balance");
    assert_eq!(d2.count(), moved, "target 2 got every broadcast");
}
