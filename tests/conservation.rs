//! Cross-crate stress: element conservation across every move-ready
//! structure under concurrent mixed traffic, plus allocator leak checks.

use lockfree_compose::{move_one, MoveOutcome, MsQueue, OneSlot, StampedStack, TreiberStack};
use std::collections::HashSet;

#[test]
fn four_way_topology_conserves_every_token() {
    // queue -> stack -> stamped-stack -> slot -> queue ring, with movers on
    // every edge plus direct producers/consumers. Each token is a unique
    // u64; at the end every token must exist exactly once somewhere.
    const TOKENS: u64 = 300;
    let q: MsQueue<u64> = MsQueue::new();
    let s: TreiberStack<u64> = TreiberStack::new();
    let z: StampedStack<u64> = StampedStack::new();
    let slot: OneSlot<u64> = OneSlot::new();
    for i in 0..TOKENS {
        q.enqueue(i);
    }

    std::thread::scope(|sc| {
        let (q, s, z, slot) = (&q, &s, &z, &slot);
        for round in 0..4u64 {
            sc.spawn(move || {
                let mut x = round * 7 + 3;
                for _ in 0..8_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    match x % 8 {
                        0 => drop(move_one(q, s)),
                        1 => drop(move_one(s, z)),
                        2 => drop(move_one(z, slot)),
                        3 => drop(move_one(slot, q)),
                        4 => drop(move_one(s, q)),
                        5 => drop(move_one(z, s)),
                        6 => drop(move_one(q, slot)),
                        _ => drop(move_one(slot, z)),
                    }
                }
            });
        }
    });

    let mut all: Vec<u64> = Vec::new();
    while let Some(v) = q.dequeue() {
        all.push(v);
    }
    while let Some(v) = s.pop() {
        all.push(v);
    }
    while let Some(v) = z.pop() {
        all.push(v);
    }
    if let Some(v) = slot.take() {
        all.push(v);
    }
    all.sort_unstable();
    assert_eq!(all, (0..TOKENS).collect::<Vec<u64>>());
}

#[test]
fn clone_heavy_values_survive_moves() {
    // String values: exercises real Clone + Drop through nodes and moves.
    let q: MsQueue<String> = MsQueue::new();
    let s: TreiberStack<String> = TreiberStack::new();
    for i in 0..100 {
        q.enqueue(format!("value-{i:04}"));
    }
    std::thread::scope(|sc| {
        let (q, s) = (&q, &s);
        for _ in 0..2 {
            sc.spawn(move || {
                for _ in 0..200 {
                    let _ = move_one(q, s);
                    let _ = move_one(s, q);
                }
            });
        }
    });
    let mut got = HashSet::new();
    while let Some(v) = q.dequeue() {
        assert!(got.insert(v));
    }
    while let Some(v) = s.pop() {
        assert!(got.insert(v));
    }
    assert_eq!(got.len(), 100);
    for i in 0..100 {
        assert!(got.contains(&format!("value-{i:04}")));
    }
}

#[test]
fn move_outcomes_are_accurate_under_contention() {
    // Count Moved outcomes and verify they exactly explain the final
    // distribution of elements.
    let a: MsQueue<u64> = MsQueue::new();
    let b: MsQueue<u64> = MsQueue::new();
    const N: u64 = 500;
    for i in 0..N {
        a.enqueue(i);
    }
    let ab = std::sync::atomic::AtomicI64::new(0);
    std::thread::scope(|sc| {
        let (a, b, ab) = (&a, &b, &ab);
        for dir in 0..2 {
            sc.spawn(move || {
                for _ in 0..4_000 {
                    if dir == 0 {
                        if move_one(a, b) == MoveOutcome::Moved {
                            ab.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    } else if move_one(b, a) == MoveOutcome::Moved {
                        ab.fetch_add(-1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let net = ab.load(std::sync::atomic::Ordering::Relaxed);
    let in_b = b.count() as i64;
    assert_eq!(net, in_b, "net a->b moves must equal b's population");
    assert_eq!(a.count() as i64 + in_b, N as i64);
}

#[test]
fn no_unbounded_block_leak_across_churn() {
    let before = lockfree_compose::alloc_stats::outstanding();
    for round in 0..20 {
        let q: MsQueue<u64> = MsQueue::new();
        let s: TreiberStack<u64> = TreiberStack::new();
        std::thread::scope(|sc| {
            let (q, s) = (&q, &s);
            for t in 0..3u64 {
                sc.spawn(move || {
                    for i in 0..500 {
                        q.enqueue(round * 10_000 + t * 1_000 + i);
                        let _ = move_one(q, s);
                        let _ = s.pop();
                    }
                });
            }
        });
    }
    // Flush until the retire backlog drains: since the adaptive scan
    // trigger (PR 5) a thread may carry a larger — still bounded, still
    // reclaimable — backlog at any instant, and records adopted from
    // exited workers need one scan to be tagged and a later one to be
    // freed (possibly more while sibling tests' operation epochs pin
    // them). A *leak* is what never drains.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut after = lockfree_compose::alloc_stats::outstanding();
    while after > before + 2_000 && std::time::Instant::now() < deadline {
        lockfree_compose::hazard::flush();
        std::thread::yield_now();
        after = lockfree_compose::alloc_stats::outstanding();
    }
    assert!(
        after <= before + 2_000,
        "outstanding blocks {before} -> {after}: churn must not leak"
    );
}

#[test]
fn mixed_object_kinds_in_one_program() {
    // The API promise: any MoveSource into any MoveTarget.
    let q: MsQueue<u64> = MsQueue::new();
    let t: TreiberStack<u64> = TreiberStack::new();
    let z: StampedStack<u64> = StampedStack::new();
    let o: OneSlot<u64> = OneSlot::new();
    q.enqueue(1);
    assert_eq!(move_one(&q, &t), MoveOutcome::Moved);
    assert_eq!(move_one(&t, &z), MoveOutcome::Moved);
    assert_eq!(move_one(&z, &o), MoveOutcome::Moved);
    assert_eq!(move_one(&o, &q), MoveOutcome::Moved);
    assert_eq!(q.dequeue(), Some(1));
}

#[test]
fn abort_storm_never_corrupts() {
    // Movers push against a mostly-full bounded slot: the move abort path
    // (paper step 2, "if the insertion fails ... the move is aborted") runs
    // thousands of times interleaved with successes; accounting must stay
    // exact throughout.
    const TOKENS: u64 = 50;
    let q: MsQueue<u64> = MsQueue::new();
    let slot: OneSlot<u64> = OneSlot::new();
    let sink: MsQueue<u64> = MsQueue::new();
    for i in 0..TOKENS {
        q.enqueue(i);
    }
    let aborted = std::sync::atomic::AtomicUsize::new(0);
    let drained = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|sc| {
        let (q, slot, sink, aborted, drained) = (&q, &slot, &sink, &aborted, &drained);
        // Occupier: keeps the slot full half the time with its own token.
        // The yields matter on single-core hosts: without them the slot is
        // only ever empty *inside* another thread's timeslice, and movers
        // can succeed only on a lucky preemption.
        sc.spawn(move || {
            while drained.load(std::sync::atomic::Ordering::Relaxed) < TOKENS as usize {
                if slot.put(u64::MAX) {
                    std::thread::yield_now();
                    while slot.peek() == Some(u64::MAX) {
                        if slot.take() == Some(u64::MAX) {
                            break;
                        }
                    }
                }
                std::thread::yield_now();
            }
        });
        // Movers: queue -> slot (often rejected).
        for _ in 0..2 {
            sc.spawn(move || {
                while drained.load(std::sync::atomic::Ordering::Relaxed) < TOKENS as usize {
                    if move_one(q, slot) == MoveOutcome::TargetRejected {
                        aborted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Drainer: slot -> sink (ignoring the occupier's marker).
        sc.spawn(move || {
            while drained.load(std::sync::atomic::Ordering::Relaxed) < TOKENS as usize {
                match slot.take() {
                    Some(v) if v == u64::MAX => {
                        let _ = slot.put(v); // give the marker back
                        std::thread::yield_now();
                    }
                    Some(v) => {
                        sink.enqueue(v);
                        drained.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    None => std::thread::yield_now(),
                }
            }
        });
    });
    let mut got: Vec<u64> = std::iter::from_fn(|| sink.dequeue()).collect();
    got.sort_unstable();
    assert_eq!(
        got,
        (0..TOKENS).collect::<Vec<u64>>(),
        "every token exactly once"
    );
    assert!(
        aborted.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "the abort path was actually exercised"
    );
}
