//! OOM-graceful allocation (PR 8 tentpole, part c): with allocation-failure
//! injection armed at every named site, no operation aborts the process —
//! every failure surfaces as `Err(AllocError)` from a `try_` entry point
//! (with the caller's element handed back where one was consumed), and the
//! hash map degrades to no-resize instead of failing at all.
//!
//! The named sites exercised here: `dcas.desc`, `dcas.casn`, `dcas.rdcss`
//! (commit descriptors), `structures.node`, `structures.header` (object
//! allocations), `batch.node`, `batch.gate` (group-commit front-end),
//! `map.grow` / `map.segment` / `map.dummy` (directory growth degrade),
//! and the allocator-level `alloc.block` beneath them all.

use lockfree_compose::batch::decode_move;
use lockfree_compose::fault::{arm_site, disarm, fired_total, Schedule};
use lockfree_compose::{
    move_one, try_move_keyed, try_move_one, try_move_to_all, try_swap, BatchGate, LfHashMap,
    MoveOneOp, MoveOutcome, MsQueue, TreiberStack,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The fault registry is process-global; serialize the tests sharing it.
static SERIAL: Mutex<()> = Mutex::new(());

/// Commit descriptors are only allocated outside the solo regime: keep a
/// second registered thread alive around `f` so the multi-thread protocol
/// (and with it the fallible allocation paths) actually runs.
fn with_peer<R>(f: impl FnOnce() -> R) -> R {
    // Stop the peer from a drop guard: if `f` panics, `thread::scope`
    // joins the peer *before* resuming the unwind, which would deadlock
    // against a plain store placed after `f()`.
    struct StopOnDrop<'a>(&'a AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|sc| {
        sc.spawn(|| {
            // Shielded peer: registers a tid (defeating the solo regime)
            // without tripping any armed site itself.
            lockfree_compose::fault::shield_thread(true);
            let _g = lockfree_compose::hazard::pin();
            while !stop.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        });
        let _stop_guard = StopOnDrop(&stop);
        f()
    })
}

#[test]
fn composition_try_ops_surface_alloc_errors() {
    let _serial = SERIAL.lock().unwrap();
    disarm();
    let q: MsQueue<u64> = MsQueue::new();
    let q2: MsQueue<u64> = MsQueue::new();
    let s: TreiberStack<u64> = TreiberStack::new();
    let s2: TreiberStack<u64> = TreiberStack::new();
    let m: LfHashMap<u64, u64> = LfHashMap::new();
    let m2: LfHashMap<u64, u64> = LfHashMap::new();
    q.enqueue(1);
    // Both swap sides non-empty queues: a stack's insert and remove share
    // the top word, so stack↔anything swaps are `WouldAlias` by design and
    // never reach the commit whose allocation we want to starve.
    q2.enqueue(2);
    m.insert(7, 70);

    with_peer(|| {
        let before = fired_total();
        arm_site("dcas.desc", Schedule::Always);
        arm_site("dcas.casn", Schedule::Always);
        assert!(
            try_move_one(&q, &s).is_err(),
            "2-entry commit needs a DCAS desc"
        );
        assert!(try_move_keyed(&m, &7, &m2).is_err());
        assert!(
            try_swap(&q, &q2).is_err(),
            "4-entry swap commit needs a CASN desc"
        );
        // Fan-out beyond 2 entries goes through CASN.
        assert!(try_move_to_all(&q, &[&s, &s2]).is_err());
        assert!(
            fired_total() >= before + 4,
            "every Err came from an injection"
        );
        disarm();

        // Nothing moved, nothing was lost, and the same calls now succeed.
        assert_eq!(try_move_one(&q, &s), Ok(MoveOutcome::Moved));
        assert_eq!(try_move_keyed(&m, &7, &m2), Ok(MoveOutcome::Moved));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(m2.get(&7), Some(70));
    });
}

#[test]
fn rdcss_exhaustion_fails_casn_commits_gracefully() {
    let _serial = SERIAL.lock().unwrap();
    disarm();
    let q: MsQueue<u64> = MsQueue::new();
    let a: TreiberStack<u64> = TreiberStack::new();
    let b: TreiberStack<u64> = TreiberStack::new();
    q.enqueue(5);

    with_peer(|| {
        // The CASN descriptor itself allocates, but every entry install
        // also needs an RDCSS descriptor: starve only those. Nth (not
        // Always) keeps concurrent best-effort helpers from livelocking
        // the owner's read loop — the documented schedule for this site.
        arm_site("dcas.rdcss", Schedule::Nth(1));
        let r = try_move_to_all(&q, &[&a, &b]);
        disarm();
        assert!(r.is_err(), "owner's first RDCSS allocation failed");
        assert_eq!(
            q.dequeue(),
            Some(5),
            "aborted commit left the source intact"
        );
        assert!(a.is_empty() && b.is_empty());
    });
}

#[test]
fn structure_try_ops_hand_the_element_back() {
    let _serial = SERIAL.lock().unwrap();
    disarm();
    let q: MsQueue<String> = MsQueue::new();
    let s: TreiberStack<String> = TreiberStack::new();
    let m: LfHashMap<u64, String> = LfHashMap::new();

    arm_site("structures.node", Schedule::Always);
    let (v, _) = s.try_push("stack".into()).expect_err("node starved");
    assert_eq!(v, "stack", "element handed back");
    let (v, _) = q.try_enqueue("queue".into()).expect_err("node starved");
    assert_eq!(v, "queue");
    let ((k, v), _) = m.try_insert(3, "map".into()).expect_err("node starved");
    assert_eq!((k, v.as_str()), (3, "map"));
    disarm();

    assert!(s.try_push("stack".into()).is_ok());
    assert!(q.try_enqueue("queue".into()).is_ok());
    assert_eq!(m.try_insert(3, "map".into()), Ok(true));
    assert_eq!(s.pop().as_deref(), Some("stack"));
    assert_eq!(q.dequeue().as_deref(), Some("queue"));
    assert_eq!(m.get(&3).as_deref(), Some("map"));
}

#[test]
fn constructors_and_gate_fail_fallibly() {
    let _serial = SERIAL.lock().unwrap();
    disarm();
    arm_site("structures.header", Schedule::Always);
    arm_site("batch.gate", Schedule::Always);
    assert!(TreiberStack::<u64>::try_new().is_err());
    assert!(MsQueue::<u64>::try_new().is_err());
    assert!(BatchGate::<MoveOneOp<u64, MsQueue<u64>, TreiberStack<u64>>>::try_new().is_err());
    disarm();
    assert!(TreiberStack::<u64>::try_new().is_ok());
    assert!(MsQueue::<u64>::try_new().is_ok());
}

#[test]
fn batch_submit_degrades_to_direct_execution_without_nodes() {
    let _serial = SERIAL.lock().unwrap();
    disarm();
    let q: MsQueue<u64> = MsQueue::new();
    let s: TreiberStack<u64> = TreiberStack::new();
    q.enqueue(9);

    // A gate that would *always* batch cannot even allocate its request
    // node: submit must fall back to unbounded direct execution and still
    // return the operation's real outcome.
    let gate: BatchGate<MoveOneOp<u64, MsQueue<u64>, TreiberStack<u64>>> =
        BatchGate::always_batched();
    arm_site("batch.node", Schedule::Always);
    let w = gate.submit(MoveOneOp::new(&q, &s));
    disarm();
    assert_eq!(decode_move(w), MoveOutcome::Moved);
    assert_eq!(s.pop(), Some(9));
}

#[test]
fn map_degrades_to_no_resize_under_pressure() {
    let _serial = SERIAL.lock().unwrap();
    disarm();
    let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(2);

    // Growth starved at every layer: the doubling CAS, the directory
    // segments, and the bucket dummies. Inserts must keep succeeding —
    // the map just runs at a higher load factor on coarser chains.
    arm_site("map.grow", Schedule::Always);
    arm_site("map.segment", Schedule::Always);
    arm_site("map.dummy", Schedule::Always);
    for k in 0..500u64 {
        assert!(m.insert(k, !k), "insert {k} under growth pressure");
    }
    assert_eq!(m.capacity(), 2, "no doubling happened under pressure");
    for k in 0..500u64 {
        assert_eq!(m.get(&k), Some(!k));
    }
    assert_eq!(m.count(), 500);
    disarm();

    // Pressure lifts: the very next inserts re-trigger the heuristic and
    // the directory heals (dummies thread in lazily on first touch).
    for k in 500..1_200u64 {
        assert!(m.insert(k, !k));
    }
    assert!(m.capacity() > 2, "growth resumed after disarm");
    for k in 0..1_200u64 {
        assert_eq!(m.get(&k), Some(!k), "key {k} after degrade + regrow");
    }
}

#[test]
fn allocator_level_failures_stay_fallible() {
    let _serial = SERIAL.lock().unwrap();
    disarm();
    let s: TreiberStack<u64> = TreiberStack::new();
    let q: MsQueue<u64> = MsQueue::new();
    q.enqueue(2);

    // Below every named site sits `alloc.block` in lfc-alloc itself; the
    // try_ paths must propagate it as the same AllocError.
    arm_site("alloc.block", Schedule::Always);
    assert!(s.try_push(1).is_err());
    disarm();
    assert!(s.try_push(1).is_ok());

    // And the infallible API never noticed any of this.
    assert_eq!(move_one(&q, &s), MoveOutcome::Moved);
    assert_eq!(s.pop(), Some(2));
}
