//! The n-object move (paper §8): fan a work item out to several consumers
//! *atomically* — either every consumer's queue receives it (and it leaves
//! the staging queue), or nothing changes anywhere.
//!
//! ```sh
//! cargo run --release --example multi_move
//! ```

use lockfree_compose::{move_to_all, MoveOutcome, MsQueue, TreiberStack};

fn main() {
    let staging: MsQueue<u64> = MsQueue::new();
    let audit_log: MsQueue<u64> = MsQueue::new();
    let worker: TreiberStack<u64> = TreiberStack::new();
    let replica: MsQueue<u64> = MsQueue::new();

    for job in 0..5 {
        staging.enqueue(job);
    }

    // Publish each staged job to the worker, the replica AND the audit log
    // in one atomic step: a crash-style observer can never see a job that
    // reached the worker but not the audit log.
    let mut published = 0;
    while move_to_all(&staging, &[&worker as &dyn AnyTarget, &replica, &audit_log])
        == MoveOutcome::Moved
    {
        published += 1;
    }
    println!("published {published} jobs to 3 destinations atomically");

    assert!(staging.is_empty());
    for _ in 0..published {
        let w = worker.pop().unwrap();
        println!("worker got job {w}");
    }
    assert_eq!(
        (0..5)
            .map(|_| replica.dequeue().unwrap())
            .collect::<Vec<_>>(),
        (0..5).collect::<Vec<_>>(),
        "replica preserves staging order"
    );
    assert_eq!(audit_log.count(), 5);
    println!("audit log complete: every job accounted for");
}

/// Object-safe adapter so heterogeneous targets (queue + stack) can share
/// one `&[&dyn ...]` slice.
trait AnyTarget: Sync {
    fn do_insert(
        &self,
        v: u64,
        ctx: &mut dyn lockfree_compose::InsertCtx,
    ) -> lockfree_compose::InsertOutcome;
}

impl<X: lockfree_compose::MoveTarget<u64> + Sync> AnyTarget for X {
    fn do_insert(
        &self,
        v: u64,
        ctx: &mut dyn lockfree_compose::InsertCtx,
    ) -> lockfree_compose::InsertOutcome {
        struct Fwd<'a>(&'a mut dyn lockfree_compose::InsertCtx);
        impl lockfree_compose::InsertCtx for Fwd<'_> {
            fn scas(&mut self, lp: lockfree_compose::LinPoint<'_>) -> lockfree_compose::ScasResult {
                self.0.scas(lp)
            }
        }
        self.insert_with(v, &mut Fwd(ctx))
    }
}

impl lockfree_compose::MoveTarget<u64> for dyn AnyTarget + '_ {
    fn insert_with<C: lockfree_compose::InsertCtx>(
        &self,
        elem: u64,
        ctx: &mut C,
    ) -> lockfree_compose::InsertOutcome {
        self.do_insert(elem, ctx)
    }
}
