//! The n-object move (paper §8): fan a work item out to several consumers
//! *atomically* — either every consumer's queue receives it (and it leaves
//! the staging queue), or nothing changes anywhere.
//!
//! ```sh
//! cargo run --release --example multi_move
//! ```

use lockfree_compose::{move_to_all, DynMoveTarget, MoveOutcome, MsQueue, TreiberStack};

fn main() {
    let staging: MsQueue<u64> = MsQueue::new();
    let audit_log: MsQueue<u64> = MsQueue::new();
    let worker: TreiberStack<u64> = TreiberStack::new();
    let replica: MsQueue<u64> = MsQueue::new();

    for job in 0..5 {
        staging.enqueue(job);
    }

    // Publish each staged job to the worker, the replica AND the audit log
    // in one atomic step: a crash-style observer can never see a job that
    // reached the worker but not the audit log.
    // Heterogeneous targets (stack + queues) share one slice through the
    // library's object-safe `DynMoveTarget` bridge.
    let targets: [&dyn DynMoveTarget<u64>; 3] = [&worker, &replica, &audit_log];
    let mut published = 0;
    while move_to_all(&staging, &targets) == MoveOutcome::Moved {
        published += 1;
    }
    println!("published {published} jobs to 3 destinations atomically");

    assert!(staging.is_empty());
    for _ in 0..published {
        let w = worker.pop().unwrap();
        println!("worker got job {w}");
    }
    assert_eq!(
        (0..5)
            .map(|_| replica.dequeue().unwrap())
            .collect::<Vec<_>>(),
        (0..5).collect::<Vec<_>>(),
        "replica preserves staging order"
    );
    assert_eq!(audit_log.count(), 5);
    println!("audit log complete: every job accounted for");
}
