//! Token vault transfers: atomicity you can audit.
//!
//! Two vaults hold numbered bearer tokens. Transfers between vaults use the
//! composed move; an auditor concurrently withdraws tokens and pays them
//! back in. When the music stops, every token must exist exactly once —
//! which only holds because a move can never leave a token duplicated or
//! in limbo between the vaults (the intermediate state of paper Fig. 1c).
//!
//! ```sh
//! cargo run --release --example bank_transfer
//! ```

use lockfree_compose::{move_one, MsQueue, TreiberStack};
use std::sync::atomic::{AtomicBool, Ordering};

const TOKENS: u64 = 64;

fn main() {
    // Different container types on purpose: composition is cross-type.
    let vault_a: MsQueue<u64> = MsQueue::new();
    let vault_b: TreiberStack<u64> = TreiberStack::new();
    for t in 0..TOKENS {
        vault_a.enqueue(t);
    }
    let stop = AtomicBool::new(false);

    std::thread::scope(|sc| {
        let (a, b, stop) = (&vault_a, &vault_b, &stop);
        // Transfer desks shuffle tokens between vaults, both directions.
        for dir in 0..2 {
            sc.spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if dir == 0 {
                        let _ = move_one(a, b);
                    } else {
                        let _ = move_one(b, a);
                    }
                    n += 1;
                    if n.is_multiple_of(10_000) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        // The auditor withdraws a token, inspects it, and pays it back.
        sc.spawn(move || {
            let mut inspected = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if let Some(t) = a.dequeue() {
                    assert!(t < TOKENS, "forged token {t}!");
                    a.enqueue(t);
                    inspected += 1;
                }
                if let Some(t) = b.pop() {
                    assert!(t < TOKENS, "forged token {t}!");
                    b.push(t);
                    inspected += 1;
                }
            }
            println!("auditor inspected {inspected} tokens in flight");
        });
        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });

    // Final audit: every token exactly once, across both vaults.
    let mut ledger = vec![0u32; TOKENS as usize];
    let mut in_a = 0;
    let mut in_b = 0;
    while let Some(t) = vault_a.dequeue() {
        ledger[t as usize] += 1;
        in_a += 1;
    }
    while let Some(t) = vault_b.pop() {
        ledger[t as usize] += 1;
        in_b += 1;
    }
    for (t, n) in ledger.iter().enumerate() {
        assert_eq!(*n, 1, "token {t} seen {n} times");
    }
    println!("final audit clean: {TOKENS} tokens ({in_a} in vault A, {in_b} in vault B)");
}
