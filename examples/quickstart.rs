//! Quickstart: compose a queue and a stack with an atomic move.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lockfree_compose::{move_one, MoveOutcome, MsQueue, TreiberStack};

fn main() {
    // Two independently designed lock-free objects...
    let queue: MsQueue<String> = MsQueue::new();
    let stack: TreiberStack<String> = TreiberStack::new();

    queue.enqueue("first".to_string());
    queue.enqueue("second".to_string());

    // ...composed: dequeue from the queue and push onto the stack as ONE
    // atomic action. No concurrent observer can catch the element missing
    // from both containers (or present in both).
    assert_eq!(move_one(&queue, &stack), MoveOutcome::Moved);
    println!("moved the queue's head onto the stack");

    assert_eq!(stack.pop().as_deref(), Some("first"));
    assert_eq!(queue.dequeue().as_deref(), Some("second"));

    // Moves report precise outcomes.
    assert_eq!(move_one(&queue, &stack), MoveOutcome::SourceEmpty);
    println!("source empty: the move failed cleanly");

    // A stack moved onto itself would need both linearization points on the
    // same word — impossible for a two-word CAS, reported as aliasing.
    stack.push("self".to_string());
    assert_eq!(move_one(&stack, &stack), MoveOutcome::WouldAlias);
    println!("self-move detected and refused: {:?}", stack.pop());

    println!("quickstart OK");
}
