//! Compositions the unified engine newly expresses: an atomic `swap`
//! (exchange one element between two queues — four linearization points,
//! one atomic step) and mixed keyed→unkeyed moves via the `Composition`
//! builder (hash map → queues, with the key dropped or rewritten).
//!
//! ```sh
//! cargo run --release --example atomic_swap
//! ```

use lockfree_compose::{
    move_keyed_to_unkeyed, swap, Composition, LfHashMap, MoveOutcome, MsQueue, SwapOutcome,
};

fn main() {
    // --- swap: rebalance two worker queues without a torn state. ---
    let fast_lane: MsQueue<&'static str> = MsQueue::new();
    let slow_lane: MsQueue<&'static str> = MsQueue::new();
    fast_lane.enqueue("big-batch-job");
    slow_lane.enqueue("tiny-job");

    // Exchange the two queue heads atomically: no observer can ever see
    // both jobs in one lane, or either lane holding zero or two of them.
    assert_eq!(swap(&fast_lane, &slow_lane), SwapOutcome::Swapped);
    println!(
        "swapped: fast lane now runs {:?}",
        fast_lane.dequeue().unwrap()
    );
    println!(
        "         slow lane now runs {:?}",
        slow_lane.dequeue().unwrap()
    );

    // --- mixed shapes: a keyed map feeding unkeyed pipelines. ---
    let pending: LfHashMap<u64, String> = LfHashMap::new();
    let work: MsQueue<String> = MsQueue::new();
    let audit: MsQueue<String> = MsQueue::new();
    for ticket in [101, 102, 103u64] {
        pending.insert(ticket, format!("ticket-{ticket}"));
    }

    // One ticket straight to the work queue (key dropped atomically).
    assert_eq!(
        move_keyed_to_unkeyed(&pending, &101, &work),
        MoveOutcome::Moved
    );

    // Another fanned into work AND audit with the builder: either both
    // queues receive it (and the map loses it) or nothing changes.
    let outcome = Composition::moving_key_from(&pending, &102)
        .into_target(&work)
        .into_target(&audit)
        .run();
    assert_eq!(outcome, MoveOutcome::Moved);

    // And an atomic re-key: 103 becomes 9103 in a second map, in one step.
    let archive: LfHashMap<u64, String> = LfHashMap::new();
    let outcome = Composition::moving_key_from(&pending, &103)
        .into_keyed_target(&archive, &9103)
        .run();
    assert_eq!(outcome, MoveOutcome::Moved);

    println!("work queue drained:");
    while let Some(t) = work.dequeue() {
        println!("  {t}");
    }
    println!("audit copy: {:?}", audit.dequeue().unwrap());
    println!("archived under 9103: {:?}", archive.get(&9103).unwrap());
    assert_eq!(pending.count(), 0, "every ticket left the map atomically");
}
