//! Task migration: the motivating scenario of the paper's introduction —
//! shifting items between containers of *different types* without exposing
//! intermediate states.
//!
//! Workers consume from per-worker FIFO queues. A balancer thread migrates
//! tasks from overloaded queues to an urgent LIFO stack served by a
//! dedicated worker. Because migration is an atomic move, a task can never
//! be observed by the shutdown auditor as "in flight" (missing from every
//! container) or executed twice (present in two containers).
//!
//! ```sh
//! cargo run --release --example task_migration
//! ```

use lockfree_compose::{move_one, MoveOutcome, MsQueue, TreiberStack};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

const WORKERS: usize = 3;
const TASKS_PER_WORKER: u64 = 2_000;

fn main() {
    let queues: Vec<MsQueue<u64>> = (0..WORKERS).map(|_| MsQueue::new()).collect();
    let urgent: TreiberStack<u64> = TreiberStack::new();
    let done = AtomicBool::new(false);
    let executed = AtomicUsize::new(0);
    let migrated = AtomicUsize::new(0);
    let seen = (0..WORKERS as u64 * TASKS_PER_WORKER)
        .map(|_| AtomicUsize::new(0))
        .collect::<Vec<_>>();

    std::thread::scope(|sc| {
        // Producers fill their own queue.
        for (w, q) in queues.iter().enumerate() {
            sc.spawn(move || {
                for i in 0..TASKS_PER_WORKER {
                    q.enqueue(w as u64 * TASKS_PER_WORKER + i);
                }
            });
        }
        // Give the balancer a head start on a visible backlog before the
        // workers start draining (tiny hosts: workers outrun the balancer).
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Workers drain their queue.
        for q in &queues {
            let done = &done;
            let executed = &executed;
            let seen = &seen;
            sc.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    if let Some(task) = q.dequeue() {
                        seen[task as usize].fetch_add(1, Ordering::Relaxed);
                        executed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // Urgent worker drains the stack (LIFO: newest first).
        {
            let urgent = &urgent;
            let done = &done;
            let executed = &executed;
            let seen = &seen;
            sc.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    if let Some(task) = urgent.pop() {
                        seen[task as usize].fetch_add(1, Ordering::Relaxed);
                        executed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // Balancer: atomically migrate tasks queue -> urgent stack.
        {
            let queues = &queues;
            let urgent = &urgent;
            let done = &done;
            let migrated = &migrated;
            sc.spawn(move || {
                let mut i = 0usize;
                while !done.load(Ordering::Relaxed) {
                    if move_one(&queues[i % WORKERS], urgent) == MoveOutcome::Moved {
                        migrated.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                }
            });
        }
        // Supervisor: wait until every task has executed, then stop.
        let total = WORKERS * TASKS_PER_WORKER as usize;
        while executed.load(Ordering::Relaxed) < total {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Relaxed);
    });

    let total = WORKERS as u64 * TASKS_PER_WORKER;
    for (t, count) in seen.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::Relaxed),
            1,
            "task {t} executed a wrong number of times"
        );
    }
    println!(
        "executed {} tasks exactly once; {} were migrated to the urgent stack",
        total,
        migrated.load(Ordering::Relaxed)
    );
}
