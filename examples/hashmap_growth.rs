//! Flat-latency growth (PR 5): a split-ordered hash map starts tiny and
//! doubles its bucket directory incrementally — one CAS, no stop-the-world
//! rehash — while writers keep inserting and composed keyed broadcasts
//! keep firing across the resize boundaries.
//!
//! ```sh
//! cargo run --release --example hashmap_growth
//! ```

use lockfree_compose::{move_keyed_to_all, LfHashMap, MoveOutcome};
use std::sync::atomic::{AtomicUsize, Ordering};

fn main() {
    // A session registry that starts at a single bucket: every doubling it
    // ever needs happens lazily, paid for by the operations that touch the
    // growing buckets — no insert ever waits for a rehash.
    let registry: LfHashMap<u64, String> = LfHashMap::with_buckets(1);
    // Two replica maps fed by atomic keyed broadcasts mid-growth.
    let replica_a: LfHashMap<u64, String> = LfHashMap::with_buckets(1);
    let replica_b: LfHashMap<u64, String> = LfHashMap::with_buckets(1);

    const WRITERS: u64 = 4;
    const KEYS_PER_WRITER: u64 = 5_000;
    let broadcasts = AtomicUsize::new(0);

    std::thread::scope(|sc| {
        // Writers flood disjoint key ranges while the directory doubles
        // underneath them.
        for w in 0..WRITERS {
            let registry = &registry;
            sc.spawn(move || {
                for i in 0..KEYS_PER_WRITER {
                    let id = w * KEYS_PER_WRITER + i;
                    assert!(registry.insert(id, format!("session-{id}")));
                }
            });
        }
        // A replicator: atomically take a session out of the registry and
        // deliver it to BOTH replicas at one linearization point — while
        // all three maps are resizing. No observer can ever see a session
        // in the registry and a replica at once, or in one replica only.
        let (registry, ra, rb) = (&registry, &replica_a, &replica_b);
        let broadcasts = &broadcasts;
        sc.spawn(move || {
            for id in 0..WRITERS * KEYS_PER_WRITER {
                if move_keyed_to_all(registry, &id, &[ra, rb]) == MoveOutcome::Moved {
                    broadcasts.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    });

    let moved = broadcasts.load(Ordering::Relaxed);
    let total = (WRITERS * KEYS_PER_WRITER) as usize;
    assert_eq!(replica_a.count(), moved);
    assert_eq!(replica_b.count(), moved);
    assert_eq!(registry.count(), total - moved);
    // Every key is in the registry XOR in both replicas — never in limbo,
    // never in a strict subset of the replicas, resize or no resize.
    for id in 0..WRITERS * KEYS_PER_WRITER {
        let in_reg = registry.contains(&id);
        let in_replicas = replica_a.contains(&id) && replica_b.contains(&id);
        assert!(in_reg ^ in_replicas, "session {id} torn by the broadcast");
    }

    println!(
        "inserted {total} sessions into a 1-bucket map; directory grew to \
         {} buckets with zero stop-the-world rehashes",
        registry.capacity()
    );
    println!(
        "broadcast {moved} sessions to both replicas mid-growth \
         (replicas grew to {} / {} buckets)",
        replica_a.capacity(),
        replica_b.capacity()
    );
}
