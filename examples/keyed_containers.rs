//! The paper's opening scenario (§1.1): compose a hash map and a linked
//! list so elements can be *moved* between them atomically — here, a
//! session cache (map) and a sorted eviction list.
//!
//! ```sh
//! cargo run --release --example keyed_containers
//! ```

use lockfree_compose::{move_keyed, LfHashMap, MoveOutcome, OrderedSet};

fn main() {
    // Active sessions, keyed by session id.
    let active: LfHashMap<u64, String> = LfHashMap::new();
    // Sessions pending eviction, sorted by id.
    let evicting: OrderedSet<u64, String> = OrderedSet::new();

    for id in [11, 7, 42, 3] {
        active.insert(id, format!("session-{id}"));
    }

    // Atomically demote sessions 7 and 42: no observer can catch a session
    // in limbo (gone from `active`, not yet in `evicting`) — the exact
    // intermediate state the paper's Figure 1c shows for a plain
    // remove+insert pair.
    for id in [7u64, 42] {
        assert_eq!(move_keyed(&active, &id, &evicting), MoveOutcome::Moved);
        println!("demoted session {id}");
    }

    assert_eq!(active.count(), 2);
    assert_eq!(evicting.count(), 2);
    assert_eq!(evicting.get(&7).as_deref(), Some("session-7"));

    // Moving a missing key fails cleanly...
    assert_eq!(move_keyed(&active, &7, &evicting), MoveOutcome::SourceEmpty);
    // ...and a key collision in the target aborts without touching either
    // container (all-or-nothing).
    active.insert(7, "session-7-reborn".to_string());
    assert_eq!(
        move_keyed(&active, &7, &evicting),
        MoveOutcome::TargetRejected
    );
    assert_eq!(active.get(&7).as_deref(), Some("session-7-reborn"));
    assert_eq!(evicting.get(&7).as_deref(), Some("session-7"));

    // Promote one back.
    assert_eq!(move_keyed(&evicting, &42, &active), MoveOutcome::Moved);
    println!("promoted session 42 back");
    println!(
        "final state: {} active, {} evicting",
        active.count(),
        evicting.count()
    );
}
