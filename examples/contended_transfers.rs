//! Contended transfers through the batched front-end.
//!
//! Many threads hammer a small hot key-set, shuttling tokens between two
//! ledgers with composed keyed moves — every move submitted through a
//! [`BatchGate`], the claim-pattern group-commit front-end added in PR 7.
//! Under contention, one thread claims the whole request list and drives
//! the batch through the composition engine while the others wait on their
//! result words (or, past a patience bound, help and finally self-execute
//! — the lock-freedom escape hatch). Uncontended submits never touch the
//! claim list at all.
//!
//! Two express lanes (queues with one sealed token each) are swapped
//! through a second gate, and a broadcast desk occasionally routes
//! `move_keyed_to_all` through a third. When the music stops, every token
//! must exist exactly once — batching changed who *executes* a move, never
//! its atomicity.
//!
//! ```sh
//! cargo run --release --example contended_transfers
//! ```

use lockfree_compose::batch::{counters, decode_move, decode_swap};
use lockfree_compose::{BatchGate, LfHashMap, MoveKeyedOp, MoveKeyedToAllOp, MsQueue, SwapOp};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const TOKENS: u64 = 32;
const HOT: u64 = 8; // most traffic lands on this many keys
const THREADS: usize = 6;
const RUN: Duration = Duration::from_millis(500);

fn main() {
    // Two ledgers; every token starts in A. Keyed moves between maps are
    // the paper's composed operation, here fronted by the batch gate.
    let a: LfHashMap<u64, u64> = LfHashMap::new();
    let b: LfHashMap<u64, u64> = LfHashMap::new();
    for t in 0..TOKENS {
        a.insert(t, t);
    }
    // Express lanes: one sealed token each, exchanged atomically.
    let q1: MsQueue<u64> = MsQueue::new();
    let q2: MsQueue<u64> = MsQueue::new();
    q1.enqueue(1_000);
    q2.enqueue(2_000);

    // One gate per request type; each gate serves both directions.
    type Ledger = LfHashMap<u64, u64>;
    let moves: BatchGate<MoveKeyedOp<'_, u64, u64, Ledger, Ledger>> = BatchGate::new();
    let casts: BatchGate<MoveKeyedToAllOp<'_, u64, u64, Ledger, Ledger>> = BatchGate::new();
    let swaps: BatchGate<SwapOp<'_, u64, MsQueue<u64>, MsQueue<u64>>> = BatchGate::new();
    let to_a: [&LfHashMap<u64, u64>; 1] = [&a];
    let to_b: [&LfHashMap<u64, u64>; 1] = [&b];

    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|sc| {
        for t in 0..THREADS {
            let (a, b, q1, q2) = (&a, &b, &q1, &q2);
            let (moves, casts, swaps) = (&moves, &casts, &swaps);
            let (to_a, to_b) = (&to_a, &to_b);
            let (stop, ops) = (&stop, &ops);
            sc.spawn(move || {
                let mut n = 0u64;
                let mut x = 0x9E3779B97F4A7C15u64 ^ (t as u64) << 32;
                while !stop.load(Ordering::Relaxed) {
                    // xorshift: cheap, thread-local, deterministic enough.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % HOT;
                    match x >> 60 {
                        0..=5 => {
                            // The hot path: keyed move on a contended key.
                            let op = if x & (1 << 32) == 0 {
                                MoveKeyedOp::new(a, key, b)
                            } else {
                                MoveKeyedOp::new(b, key, a)
                            };
                            let _ = decode_move(moves.submit(op));
                        }
                        6..=9 => {
                            // Cold keys spread some uncontended traffic.
                            let cold = HOT + x % (TOKENS - HOT);
                            let op = if x & (1 << 32) == 0 {
                                MoveKeyedOp::new(a, cold, b)
                            } else {
                                MoveKeyedOp::new(b, cold, a)
                            };
                            let _ = decode_move(moves.submit(op));
                        }
                        10..=12 => {
                            // Broadcast desk: same atomicity, fan-out form.
                            let op = if x & (1 << 32) == 0 {
                                MoveKeyedToAllOp::new(a, key, &to_b[..])
                            } else {
                                MoveKeyedToAllOp::new(b, key, &to_a[..])
                            };
                            let _ = decode_move(casts.submit(op));
                        }
                        _ => {
                            let _ = decode_swap(swaps.submit(SwapOp::new(q1, q2)));
                        }
                    }
                    n += 1;
                }
                ops.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(RUN);
        stop.store(true, Ordering::Release);
    });
    let elapsed = t0.elapsed();

    // Conservation: every ledger token exists exactly once, value intact.
    for k in 0..TOKENS {
        let (in_a, in_b) = (a.get(&k), b.get(&k));
        assert!(
            matches!((in_a, in_b), (Some(v), None) | (None, Some(v)) if v == k),
            "token {k} torn: a={in_a:?} b={in_b:?}"
        );
    }
    // The sealed lane tokens survived every swap, exactly once each.
    let mut lane: Vec<u64> = std::iter::from_fn(|| q1.dequeue().or_else(|| q2.dequeue())).collect();
    lane.sort_unstable();
    assert_eq!(lane, vec![1_000, 2_000], "lane tokens torn by swap");

    let total = ops.load(Ordering::Relaxed);
    println!(
        "{} threads, {} hot keys: {} composed ops in {:.0?} ({:.0} ops/s)",
        THREADS,
        HOT,
        total,
        elapsed,
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "gate traffic: {} direct, {} batched ({} batches drained, {} self-executed)",
        counters::direct_ops(),
        counters::batched_ops(),
        counters::batches_drained(),
        counters::self_execs()
    );
    println!("conservation check passed: every token exists exactly once");
}
