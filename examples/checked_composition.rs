//! Record a real concurrent execution and *prove* it linearizable.
//!
//! Runs a short mixed workload (inserts, removes, and composed moves) on a
//! queue/stack pair while recording every operation's interval and outcome,
//! then feeds the history to the bundled Wing–Gong checker with a
//! sequential specification in which the move is a single atomic action.
//!
//! ```sh
//! cargo run --release --example checked_composition
//! ```

use lockfree_compose::linear::{check_linearizable, CheckResult, Cont, PairOp, PairSpec, Recorder};
use lockfree_compose::{move_one, MoveOutcome, MsQueue, TreiberStack};

fn main() {
    let queue: MsQueue<u32> = MsQueue::new();
    let stack: TreiberStack<u32> = TreiberStack::new();
    let rec: Recorder<PairOp> = Recorder::new();

    std::thread::scope(|sc| {
        let (q, s, rec) = (&queue, &stack, &rec);
        sc.spawn(move || {
            for v in 1..=6u32 {
                rec.record(|| {
                    q.enqueue(v);
                    PairOp::InsA(v)
                });
                rec.record(|| PairOp::MoveAB(move_one(q, s) == MoveOutcome::Moved));
            }
        });
        sc.spawn(move || {
            for v in 100..=105u32 {
                rec.record(|| {
                    s.push(v);
                    PairOp::InsB(v)
                });
                rec.record(|| PairOp::MoveBA(move_one(s, q) == MoveOutcome::Moved));
            }
        });
        sc.spawn(move || {
            for _ in 0..6 {
                rec.record(|| PairOp::RemA(q.dequeue()));
                rec.record(|| PairOp::RemB(s.pop()));
            }
        });
    });

    let history = rec.finish();
    println!("recorded {} operations; checking...", history.len());
    let spec = PairSpec {
        a: Cont::Fifo,
        b: Cont::Lifo,
    };
    match check_linearizable(&spec, &history) {
        CheckResult::Linearizable(order) => {
            println!("linearizable; witness order of first 10 ops:");
            for &i in order.iter().take(10) {
                let e = &history[i];
                println!("  [{:>3},{:>3}] {:?}", e.invoke, e.ret, e.op);
            }
        }
        CheckResult::NotLinearizable => {
            panic!("history not linearizable — composition is broken!")
        }
    }
}
