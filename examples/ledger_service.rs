//! The sharded ledger service, end to end: composed cross-shard moves,
//! the degradation ladder, and an exact audit on a live service.
//!
//! A small tour of `lockfree_compose::ledger`:
//! 1. open accounts and fund settlement lanes (tokens are minted),
//! 2. run migration/settlement/tier-shift traffic while an auditor
//!    takes quiesced sweeps — every sweep balances exactly,
//! 3. starve the commit engine's descriptor allocation with the fault
//!    injector and watch the ladder shed instead of block, then heal.
//!
//! ```sh
//! cargo run --release --example ledger_service
//! ```

use lockfree_compose::fault;
use lockfree_compose::ledger::{HealthCfg, Ledger, LedgerCfg, LedgerError, ServiceState};
use std::sync::atomic::{AtomicBool, Ordering};

fn main() {
    fault::disarm();
    // The main thread audits; keep it off the fault counters.
    fault::shield_thread(true);

    let ledger = Ledger::new(LedgerCfg {
        shards: 4,
        health: HealthCfg {
            // Tight error thresholds so step 3's short starvation is
            // enough to walk the whole ladder in one example run.
            soft_alloc_errors: 4,
            hard_alloc_errors: 24,
            heal_polls: 2,
            ..HealthCfg::default()
        },
        ..LedgerCfg::default()
    });

    // 1. Admission: open 32 accounts, fund every shard's settlement lane.
    let ids: Vec<u64> = (0..32).map(|i| ledger.open(i % 7 + 1).unwrap()).collect();
    for s in 0..4 {
        ledger.fund_lane(s, 3).unwrap();
    }
    let r = ledger.audit();
    println!(
        "opened {} accounts, {} voucher tokens in lanes, circulating {} — conserved: {}",
        r.accounts,
        r.voucher_tokens,
        r.circulating(),
        r.conserved()
    );

    // 2. Traffic + live audits. Every cross-shard movement is one composed
    // operation, so no sweep can ever catch a token in two shards or none.
    let stop = AtomicBool::new(false);
    std::thread::scope(|sc| {
        let (l, stop, ids) = (&ledger, &stop, &ids);
        for w in 0..3u64 {
            sc.spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Acquire) {
                    let id = ids[i as usize % ids.len()];
                    match i % 4 {
                        0 => drop(l.migrate(id, i as usize)),
                        1 => drop(l.settle(i as usize, i as usize + 1)),
                        2 => drop(l.promote(id)),
                        _ => drop(l.demote(id)),
                    }
                    i = i.wrapping_add(3);
                }
            });
        }
        for sweep in 1..=5 {
            std::thread::sleep(std::time::Duration::from_millis(3));
            let r = ledger.quiesced_audit();
            assert!(r.conserved());
            println!(
                "sweep {sweep}: accounts={} account_tokens={} vouchers={} — exact",
                r.accounts, r.account_tokens, r.voucher_tokens
            );
        }
        stop.store(true, Ordering::Release);
    });

    // 3. Pressure: refuse every commit-descriptor allocation. Composed
    // entry points burn their retry budget and report Overloaded — they
    // never block — and the error window drives the ladder to Shed.
    fault::arm_site("dcas.desc", fault::Schedule::Always);
    fault::arm_site("dcas.casn", fault::Schedule::Always);
    let peer_stop = AtomicBool::new(false);
    std::thread::scope(|sc| {
        // A second registered thread keeps the service out of the solo
        // regime (solo composed commits allocate nothing and cannot fail).
        sc.spawn(|| {
            fault::shield_thread(true);
            let _g = lockfree_compose::hazard::pin();
            while !peer_stop.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        });
        for _ in 0..3 {
            assert_eq!(ledger.settle(0, 1), Err(LedgerError::Overloaded));
        }
        peer_stop.store(true, Ordering::Release);
    });
    fault::disarm();

    let state = ledger.health().poll();
    println!(
        "after starvation: state={state}, reads still served: {:?}",
        { ledger.balance(ids[0]).unwrap() }
    );
    assert_eq!(state, ServiceState::Shed);
    assert_eq!(ledger.open(1), Err(LedgerError::Shed), "admission refused");

    // Self-healing: one rung per streak of clean polls.
    while ledger.health().poll() != ServiceState::Normal {}
    println!(
        "healed: state={}, recovery window {:?} ms",
        ledger.health().state(),
        ledger.health().recovery_ms()
    );

    let r = ledger.quiesced_audit();
    assert!(r.conserved());
    println!(
        "final audit: {} accounts, circulating {} == observed {} — exact",
        r.accounts,
        r.circulating(),
        r.observed()
    );
}
