//! Bounded-exhaustive model checking of the split-ordered hash map's
//! resize machinery (PR 5): the races the incremental split opens —
//! a lazily threaded bucket dummy CASing into the very word a composed
//! capture has claimed as its linearization point, and a dummy threading
//! into a chain whose neighbour is concurrently unlinked and retired —
//! explored over every schedule at the same preemption bound (and memory
//! mode) `tests/stale_tag.rs` uses for its acceptance claim.
//!
//! Requires `RUSTFLAGS="--cfg lfc_model"`; compiles to nothing otherwise.
#![cfg(lfc_model)]

use lfc_core::{move_keyed, MoveOutcome};
use lfc_model::{explore, ExploreOpts, MemoryMode};
use lfc_structures::LfHashMap;
use std::sync::Arc;

/// The bound and memory mode of `tests/stale_tag.rs` (the repo's reference
/// configuration for reclamation races): one preemption, weak memory.
fn opts() -> ExploreOpts {
    ExploreOpts {
        preemption_bound: 1,
        step_budget: 200_000,
        max_executions: 400_000,
        memory: MemoryMode::Weak,
    }
}

/// Pick `(k_keep, k_split)` for a 2-bucket map: `k_keep` stays in bucket 0
/// when a 1-bucket map doubles, `k_split`'s bucket-1 dummy gets threaded
/// right at `k_keep`'s chain on first touch after the doubling. Split
/// ordering guarantees bucket 0's data sorts before bucket 1's dummy, so
/// with `k_keep` the only resident key the dummy's insertion CAS lands on
/// `k_keep`'s own `next` word — the exact word a remove (and a composed
/// capture) linearizes through.
fn split_pair() -> (u32, u32) {
    let probe: LfHashMap<u32, u32> = LfHashMap::with_buckets(2);
    let keep = (1..64u32)
        .find(|k| probe.bucket_index(k) == 0)
        .expect("some key hashes to bucket 0");
    let split = (1..64u32)
        .find(|k| probe.bucket_index(k) == 1)
        .expect("some key hashes to bucket 1");
    (keep, split)
}

#[test]
fn dfs_split_vs_capture() {
    // A composed keyed move captures its remove's linearization point on
    // `k_keep.next` while a concurrent operation doubles the directory and
    // lazily threads bucket 1's dummy — whose insertion CAS targets that
    // same word. Every interleaving within the bound must linearize: the
    // key lands in exactly one map (the capture either commits before the
    // dummy threads, or fails its CAS-validated entry and retries past the
    // new dummy), and the split is semantically invisible.
    let (k_keep, k_split) = split_pair();
    let report = explore(opts(), move || {
        let a = Arc::new(LfHashMap::<u32, u32>::with_buckets(1));
        let b = Arc::new(LfHashMap::<u32, u32>::with_buckets(1));
        assert!(a.insert(k_keep, 10));
        let (a1, b1) = (a.clone(), b.clone());
        let mover = lfc_model::thread::spawn(move || {
            assert_eq!(
                move_keyed(&*a1, &k_keep, &*b1),
                MoveOutcome::Moved,
                "the only concurrent activity is a split, which never owns the key"
            );
        });
        let a2 = a.clone();
        let splitter = lfc_model::thread::spawn(move || {
            a2.force_grow();
            // First touch of bucket 1 threads its dummy next to (or onto)
            // k_keep's node, racing the capture.
            assert_eq!(a2.get(&k_split), None);
        });
        mover.join();
        splitter.join();
        // The moved key is in exactly one container, value intact.
        assert_eq!(a.get(&k_keep), None, "key must have left the source");
        assert_eq!(b.get(&k_keep), Some(10), "key must have arrived once");
        assert_eq!(a.count(), 0);
        assert_eq!(b.count(), 1);
    });
    report.assert_ok();
    assert!(
        report.complete,
        "split-vs-capture must be a COMPLETE bounded search ({} executions)",
        report.executions
    );
    assert!(report.executions > 10, "scenario must actually branch");
}

#[test]
fn dfs_split_vs_retire() {
    // The dummy threading races a remove's *physical unlink and retire* of
    // the same neighbour: the splitter's traversal may hold the node while
    // the remover unlinks it and runs tagging + freeing scans. The epoch
    // must keep the block alive under the traversal (a use-after-free is
    // caught by the model's freed-block quarantine), and the threading CAS
    // onto the marked/unlinked node must fail harmlessly and re-find.
    let (k_keep, k_split) = split_pair();
    let report = explore(opts(), move || {
        let a = Arc::new(LfHashMap::<u32, u32>::with_buckets(1));
        assert!(a.insert(k_keep, 10));
        let a1 = a.clone();
        let remover = lfc_model::thread::spawn(move || {
            assert_eq!(a1.remove(&k_keep), Some(10));
            // First scan tags the retired node, second may free it — the
            // stale_tag.rs shape, now with a split traversal in flight.
            lfc_hazard::flush();
            lfc_hazard::flush();
        });
        let a2 = a.clone();
        let splitter = lfc_model::thread::spawn(move || {
            a2.force_grow();
            assert_eq!(a2.get(&k_split), None);
        });
        remover.join();
        splitter.join();
        assert_eq!(a.get(&k_keep), None);
        assert_eq!(a.count(), 0);
        // The split itself must have stuck (the directory only grows).
        assert!(a.capacity() >= 2);
    });
    report.assert_ok();
    assert!(
        report.complete,
        "split-vs-retire must be a COMPLETE bounded search ({} executions)",
        report.executions
    );
    assert!(report.executions > 10, "scenario must actually branch");
}
