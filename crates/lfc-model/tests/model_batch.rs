//! Bounded-exhaustive model checking of the PR 7 contention-adaptation
//! machinery: the claim-pattern batch gate's combiner handoff and the
//! Treiber stack's elimination exchanger.
//!
//! The gate's model build shrinks its waiting windows (`SPIN_ROUNDS = 0`,
//! `SELF_EXEC_ROUNDS = 1`), so every waiter immediately helps and then
//! self-executes — the schedules where a stalled combiner's batch is
//! re-claimed are reached within a small preemption bound.
//!
//! Requires `RUSTFLAGS="--cfg lfc_model"`; compiles to nothing otherwise.
//! The seeded-bug and forced-elimination scenarios flip process-global
//! toggles, so the file serializes itself through a mutex.
#![cfg(lfc_model)]

use lfc_core::batch::decode_move;
use lfc_core::{BatchGate, MoveOneOp, MoveOutcome};
use lfc_linear::{check_linearizable, render_history, Cont, PairOp, PairSpec, Recorder};
use lfc_model::{explore, ExploreOpts, MemoryMode};
use lfc_structures::{MsQueue, TreiberStack};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes the scenarios in this file (they flip process-global
/// toggles) and restores every toggle on drop, even on panic.
struct Toggles {
    _lock: MutexGuard<'static, ()>,
}

impl Toggles {
    fn take() -> Toggles {
        static LOCK: Mutex<()> = Mutex::new(());
        let lock = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        Toggles { _lock: lock }
    }
}

impl Drop for Toggles {
    fn drop(&mut self) {
        lfc_core::model_toggles::SKIP_FLAG_ENTRY.store(false, Ordering::SeqCst);
        lfc_structures::model_toggles::FORCE_ELIM.store(false, Ordering::SeqCst);
    }
}

fn opts(bound: u32) -> ExploreOpts {
    ExploreOpts {
        preemption_bound: bound,
        step_budget: 200_000,
        max_executions: 60_000,
        memory: MemoryMode::Interleaving,
    }
}

/// Two threads submit composed moves through one `always_batched` gate:
/// whichever thread claims the batch may be preempted mid-drain, and the
/// other must re-claim and finish — with each request committing exactly
/// once. Conservation and exactly-once are checked in the root after both
/// submits return.
fn batched_move_scenario() {
    let a = Arc::new(MsQueue::<u32>::new());
    let b = Arc::new(MsQueue::<u32>::new());
    for v in [1, 2, 3] {
        a.enqueue(v);
    }
    // The request type borrows the queues; the Arcs outlive both worker
    // joins below, so promoting the borrows is sound.
    let (ar, br): (&'static MsQueue<u32>, &'static MsQueue<u32>) =
        unsafe { (&*Arc::as_ptr(&a), &*Arc::as_ptr(&b)) };
    let gate: Arc<BatchGate<MoveOneOp<'static, u32, MsQueue<u32>, MsQueue<u32>>>> =
        Arc::new(BatchGate::always_batched());
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let gate = gate.clone();
            lfc_model::thread::spawn(move || {
                let got = decode_move(gate.submit(MoveOneOp::new(ar, br)));
                assert_eq!(got, MoveOutcome::Moved, "three elements were staged");
            })
        })
        .collect();
    for w in workers {
        w.join();
    }
    // Exactly two elements moved (one per request — a re-claimed batch
    // must not double-commit), and nothing was lost or duplicated.
    let mut b_vals = Vec::new();
    while let Some(v) = b.dequeue() {
        b_vals.push(v);
    }
    let mut rest = Vec::new();
    while let Some(v) = a.dequeue() {
        rest.push(v);
    }
    assert_eq!(b_vals.len(), 2, "each submit moves exactly one element");
    let mut all = b_vals;
    all.extend(rest);
    all.sort_unstable();
    assert_eq!(all, vec![1, 2, 3], "moves conserve the elements");
}

#[test]
fn dfs_combiner_handoff_commits_each_request_once() {
    let _t = Toggles::take();
    let report = explore(opts(1), batched_move_scenario);
    report.assert_ok();
    assert!(report.executions > 10, "gate machinery must branch");
}

#[test]
fn dfs_seeded_handoff_bug_double_commits_and_is_caught() {
    // Seeded bug: commit batched requests WITHOUT the result-flag CASN
    // entry and publish the flag by a separate CAS afterwards. A combiner
    // preempted in that window leaves its request PENDING-but-committed;
    // the re-claiming drainer runs it again, and the scenario's
    // exactly-once assertion must observe the duplicate under some
    // schedule. This pins the flag entry as load-bearing: if the checker
    // ever stops catching this toggle, the handoff scenario has lost its
    // teeth.
    let _t = Toggles::take();
    lfc_core::model_toggles::SKIP_FLAG_ENTRY.store(true, Ordering::SeqCst);
    let report = explore(opts(1), batched_move_scenario);
    assert!(
        report.failure.is_some(),
        "naive handoff must double-commit in some schedule"
    );
}

#[test]
fn dfs_elimination_exchange_is_linearizable() {
    // A pusher and two pops race on one stack with the exchanger forced
    // in front of the `top` CAS, so claim/withdraw/claim-lost races are
    // explored directly. Every recorded history must linearize against a
    // LIFO spec, and the element must surface exactly once.
    let _t = Toggles::take();
    lfc_structures::model_toggles::FORCE_ELIM.store(true, Ordering::SeqCst);
    let spec = PairSpec {
        a: Cont::Lifo,
        b: Cont::Fifo, // unused side of the pair spec
    };
    let report = explore(opts(2), move || {
        let s = Arc::new(TreiberStack::<u32>::new());
        let rec = Arc::new(Recorder::<PairOp>::new());
        let (s1, r1) = (s.clone(), rec.clone());
        let pusher = lfc_model::thread::spawn(move || {
            r1.record(|| {
                s1.push(7);
                PairOp::InsA(7)
            });
        });
        let (s2, r2) = (s.clone(), rec.clone());
        let popper = lfc_model::thread::spawn(move || {
            r2.record(|| PairOp::RemA(s2.pop()));
        });
        pusher.join();
        popper.join();
        rec.record(|| PairOp::RemA(s.pop()));
        let rec = Arc::try_unwrap(rec).unwrap_or_else(|_| panic!("sole recorder owner"));
        let h = rec.finish();
        assert!(
            check_linearizable(&spec, &h).is_linearizable(),
            "elimination broke LIFO:\n{}",
            render_history(&h)
        );
    });
    report.assert_ok();
    assert!(report.executions > 10, "exchanger must branch");
}
