//! Bounded-exhaustive model checking of the skip list's tower machinery
//! (PR 9): tower CASes are auxiliary — never linearization subjects — so
//! a tower unlink (or a concurrent tower build) racing a composed capture
//! on the level-0 chain must never tear the capture, at the same
//! preemption bound and memory mode `tests/stale_tag.rs` and
//! `model_resize.rs` use for their acceptance claims.
//!
//! Heights are deterministic per map (one ticket per insert through a
//! Fibonacci mixer): tickets 1→h3, 2→h4, 3→h1, 4→h1, 5→h2. The setup
//! phase burns the tall tickets on pad keys (kept in the map, above the
//! scenario's key range) so every *concurrent* tower is the minimal real
//! one — height 2, one tower level. Setup steps replay serially before
//! the spawns and neither branch on schedule nor on weak memory; the
//! bounded search only pays for the racing steps, which keeps these
//! scenarios at the same scale as the resize ones while still exercising
//! tower freeze, tower unlink and tower build against a live capture.
//!
//! Requires `RUSTFLAGS="--cfg lfc_model"`; compiles to nothing otherwise.
#![cfg(lfc_model)]

use lfc_core::{move_keyed, MoveOutcome};
use lfc_model::{explore, ExploreOpts, MemoryMode};
use lfc_structures::LfSkipMap;
use std::sync::Arc;

/// The stale-tag reference configuration: one preemption, weak memory.
fn opts() -> ExploreOpts {
    ExploreOpts {
        preemption_bound: 1,
        step_budget: 200_000,
        max_executions: 400_000,
        memory: MemoryMode::Weak,
    }
}

#[test]
fn dfs_tower_unlink_vs_capture() {
    // A composed keyed move captures its remove's linearization point on
    // node 10's level-0 `next` word while a concurrent remove of the
    // *successor* key 20 (height 2) freezes 20's tower and sweeps: the
    // sweep's level-0 physical unlink CASes the very word the capture
    // claimed, and the tower unlink CASes the express lane over it.
    // Every interleaving must linearize both operations independently —
    // the move lands key 10 in exactly one map and the remove reclaims
    // key 20; no tower CAS may decide (or tear) either outcome.
    let report = explore(opts(), move || {
        let a = Arc::new(LfSkipMap::<u32, u32>::new());
        let b = Arc::new(LfSkipMap::<u32, u32>::new());
        assert!(a.insert(90, 0)); // ticket 1 (h3): pad above the race keys
        assert!(a.insert(91, 0)); // ticket 2 (h4): pad
        assert!(a.insert(10, 100)); // ticket 3 (h1): the capture subject
        assert!(a.insert(92, 0)); // ticket 4 (h1): pad
        assert!(a.insert(20, 200)); // ticket 5 (h2): victim with a tower
        assert!(b.insert(90, 0)); // burn b's tall tickets too, so the
        assert!(b.insert(91, 0)); // mover's arriving insert is height 1
        let (a1, b1) = (a.clone(), b.clone());
        let mover = lfc_model::thread::spawn(move || {
            assert_eq!(
                move_keyed(&*a1, &10, &*b1),
                MoveOutcome::Moved,
                "the concurrent remove owns a different key"
            );
        });
        let a2 = a.clone();
        let remover = lfc_model::thread::spawn(move || {
            assert_eq!(a2.remove(&20), Some(200));
        });
        mover.join();
        remover.join();
        assert_eq!(a.get(&10), None, "key must have left the source");
        assert_eq!(b.get(&10), Some(100), "key must have arrived once");
        assert_eq!(a.get(&20), None);
        assert_eq!(a.count(), 3, "the three pads stay");
        assert_eq!(b.count(), 3);
    });
    report.assert_ok();
    assert!(
        report.complete,
        "tower-unlink-vs-capture must be a COMPLETE bounded search ({} executions)",
        report.executions
    );
    assert!(report.executions > 10, "scenario must actually branch");
}

#[test]
fn dfs_tower_build_vs_capture() {
    // The dual race: a composed capture claims node 10's level-0 word
    // while a concurrent insert of key 5 (height 2) builds a tower in
    // front of it — the build's level-0 insertion CAS targets the header
    // word feeding node 10, and its tower link splices an express lane
    // over the node mid-capture. The capture must commit or retry on the
    // level-0 word alone; the half-built tower must end fully linked with
    // its key present exactly once.
    let report = explore(opts(), move || {
        let a = Arc::new(LfSkipMap::<u32, u32>::new());
        let b = Arc::new(LfSkipMap::<u32, u32>::new());
        assert!(a.insert(90, 0)); // ticket 1 (h3): pad
        assert!(a.insert(91, 0)); // ticket 2 (h4): pad
        assert!(a.insert(10, 100)); // ticket 3 (h1): the capture subject
        assert!(a.insert(92, 0)); // ticket 4 (h1): pad
        assert!(b.insert(90, 0)); // burn b's tall tickets: arriving
        assert!(b.insert(91, 0)); // insert is height 1
        let (a1, b1) = (a.clone(), b.clone());
        let mover = lfc_model::thread::spawn(move || {
            assert_eq!(
                move_keyed(&*a1, &10, &*b1),
                MoveOutcome::Moved,
                "the concurrent insert owns a different key"
            );
        });
        let a2 = a.clone();
        let builder = lfc_model::thread::spawn(move || {
            assert!(a2.insert(5, 50)); // ticket 5: height 2
        });
        mover.join();
        builder.join();
        assert_eq!(a.get(&10), None);
        assert_eq!(b.get(&10), Some(100));
        assert_eq!(a.get(&5), Some(50), "tower build must survive the race");
        assert_eq!(a.count(), 4, "key 5 plus the three pads");
        assert_eq!(b.count(), 3);
    });
    report.assert_ok();
    assert!(
        report.complete,
        "tower-build-vs-capture must be a COMPLETE bounded search ({} executions)",
        report.executions
    );
    assert!(report.executions > 10, "scenario must actually branch");
}

#[test]
fn dfs_tower_unlink_vs_retire_scan() {
    // The stale_tag.rs shape on the skip list: the remover of a towered
    // node runs tagging + freeing scans right after its tower freeze while
    // a reader's range traversal may still hold the node through an
    // express lane. The per-level reference counts must keep the block
    // alive until the last level lets go (a use-after-free is caught by
    // the model's freed-block quarantine), and the node must retire
    // exactly once.
    let report = explore(opts(), move || {
        let a = Arc::new(LfSkipMap::<u32, u32>::new());
        assert!(a.insert(90, 0)); // ticket 1 (h3): pad
        assert!(a.insert(91, 0)); // ticket 2 (h4): pad
        assert!(a.insert(92, 0)); // ticket 3 (h1): pad
        assert!(a.insert(93, 0)); // ticket 4 (h1): pad
        assert!(a.insert(10, 100)); // ticket 5 (h2): victim with a tower
        let a1 = a.clone();
        let remover = lfc_model::thread::spawn(move || {
            assert_eq!(a1.remove(&10), Some(100));
            lfc_hazard::flush();
            lfc_hazard::flush();
        });
        let a2 = a.clone();
        let reader = lfc_model::thread::spawn(move || {
            // Sub-range walk below the pads: enters at the header, may
            // traverse the victim while it is being frozen, unlinked and
            // scanned.
            for (k, v) in a2.range(..50) {
                assert_eq!((k, v), (10, 100));
            }
        });
        remover.join();
        reader.join();
        assert_eq!(a.get(&10), None);
        assert_eq!(a.count(), 4, "the four pads stay");
    });
    report.assert_ok();
    assert!(
        report.complete,
        "tower-unlink-vs-retire must be a COMPLETE bounded search ({} executions)",
        report.executions
    );
    assert!(report.executions > 10, "scenario must actually branch");
}
