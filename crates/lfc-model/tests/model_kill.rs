//! Model-checked thread-death robustness (PR 8 tentpole, part b): a model
//! thread killed at the worst kill site — `"dcas.published"`, descriptor
//! installed at word 1, word 2 untouched — must leave a state survivors
//! always repair: the corpse's announced operation is helped to its
//! decision, both words end raw with the committed values, and the dead
//! thread's id/bank are adopted, all under a complete preemption-bound-1
//! search.
//!
//! The second phase proves the harness has teeth: with the seeded
//! `SKIP_ADOPT_HELP` sabotage (adoption releases the corpse *without*
//! completing its operation) the same scenario must FAIL — the explorer
//! reports the torn word the broken helping leaves behind.
//!
//! Requires `RUSTFLAGS="--cfg lfc_model"`; compiles to nothing otherwise.
#![cfg(lfc_model)]

use lfc_dcas::{adopt_dead_threads, word, DAtomic, DescHandle};
use lfc_runtime::fault;
use std::sync::Arc;

/// One round: a victim announces and publishes a DCAS (a: 8→24, b: 16→32)
/// and dies at the `"dcas.published"` kill site; a survivor (and finally
/// the root) adopts the corpse. The end-state assertions are exactly the
/// tentpole's robustness claim.
fn scenario() {
    // Re-armed per execution: `Nth(1)` fires on the victim's first (and
    // only) pass through the site; the survivor never runs initiator code.
    fault::arm_site("dcas.published", fault::Schedule::Nth(1));
    let a = Arc::new(DAtomic::new(8));
    let b = Arc::new(DAtomic::new(16));

    // Root pins *before* the victim runs: two registered threads keep the
    // victim out of the solo-regime fast path, which commits without ever
    // announcing (and so could never be killed at a protocol site).
    let g = lfc_hazard::pin();

    let victim = {
        let (a, b) = (a.clone(), b.clone());
        lfc_model::thread::spawn(move || {
            let g = lfc_hazard::pin();
            let mut h = DescHandle::new();
            h.set_first(&a, 8, 24, 0);
            h.set_second(&b, 16, 32, 0);
            // Dies inside: the model thread wrapper recognizes the abandon
            // payload and parks the id/bank as a corpse.
            let _ = h.commit(&g);
        })
    };
    let survivor = lfc_model::thread::spawn(|| {
        let g = lfc_hazard::pin();
        // Bounded attempts: depending on the interleaving the victim may
        // not have died yet; the root's cleanup pass below is the backstop.
        for _ in 0..4 {
            if fault::corpse_count() > 0 && adopt_dead_threads(&g) > 0 {
                break;
            }
        }
    });
    victim.join();
    survivor.join();

    // Cleanup pass: after both joins the corpse (if the survivor raced past
    // it) is certainly visible; one adoption round must clear it.
    if fault::corpse_count() > 0 {
        adopt_dead_threads(&g);
    }
    assert_eq!(fault::corpse_count(), 0, "corpse left unadopted");

    // The tentpole claim, asserted through *plain* loads: `DAtomic::read`
    // would help an installed descriptor and mask exactly the bug the
    // sabotage toggle seeds, so only `load_word` is allowed here.
    let (wa, wb) = (a.load_word(), b.load_word());
    assert!(
        word::is_raw(wa) && word::is_raw(wb),
        "descriptor left installed after adoption (wa={wa:#x}, wb={wb:#x})"
    );
    assert_eq!((wa, wb), (24, 32), "adopted DCAS must have committed");
    fault::disarm();
}

/// As [`scenario`], but the victim dies at `"dcas.announced"` — after the
/// announce-table store, *before* the D10 first-word install. The adoption
/// path must recognize the unpublished descriptor and complete *nothing*:
/// helping it as if published would apply only the second CAS (the
/// first-word swing fails silently), duplicating the moved element — the
/// torn half-commit the crash adversary caught. Both words must end
/// exactly as they started.
fn scenario_unpublished() {
    fault::arm_site("dcas.announced", fault::Schedule::Nth(1));
    let a = Arc::new(DAtomic::new(8));
    let b = Arc::new(DAtomic::new(16));
    let g = lfc_hazard::pin();

    let victim = {
        let (a, b) = (a.clone(), b.clone());
        lfc_model::thread::spawn(move || {
            let g = lfc_hazard::pin();
            let mut h = DescHandle::new();
            h.set_first(&a, 8, 24, 0);
            h.set_second(&b, 16, 32, 0);
            // Dies at the announced (pre-publication) kill site.
            let _ = h.commit(&g);
        })
    };
    let survivor = lfc_model::thread::spawn(|| {
        let g = lfc_hazard::pin();
        for _ in 0..4 {
            if fault::corpse_count() > 0 && adopt_dead_threads(&g) > 0 {
                break;
            }
        }
    });
    victim.join();
    survivor.join();

    if fault::corpse_count() > 0 {
        adopt_dead_threads(&g);
    }
    assert_eq!(fault::corpse_count(), 0, "corpse left unadopted");

    let (wa, wb) = (a.load_word(), b.load_word());
    assert!(
        word::is_raw(wa) && word::is_raw(wb),
        "descriptor installed by adoption of an unpublished op (wa={wa:#x}, wb={wb:#x})"
    );
    assert_eq!(
        (wa, wb),
        (8, 16),
        "an announced-but-unpublished DCAS must not be (half-)applied"
    );
    fault::disarm();
}

fn opts() -> lfc_model::ExploreOpts {
    lfc_model::ExploreOpts {
        preemption_bound: 1,
        step_budget: 200_000,
        max_executions: 60_000,
        memory: lfc_model::MemoryMode::Interleaving,
    }
}

/// Both phases in ONE test: the sabotage toggle is process-global and two
/// parallel `#[test]`s flipping it would race.
#[test]
fn killed_initiator_adopted_clean_then_sabotage_caught() {
    // Phase 1 — helping intact: complete bound-1 search, no failure.
    let report = lfc_model::explore(opts(), scenario);
    if let Some(f) = &report.failure {
        panic!("adoption must repair every bound-1 kill interleaving, but:\n{f}");
    }
    assert!(
        report.complete,
        "the robustness claim is a COMPLETE bounded search, not a truncated \
         one ({} executions hit a budget)",
        report.executions
    );
    eprintln!(
        "kill scenario clean over {} executions (complete: {}, pruned: {})",
        report.executions, report.complete, report.pruned
    );

    // Phase 2 — helping sabotaged: the checker must catch the torn word.
    lfc_dcas::adopt::model_toggles::SKIP_ADOPT_HELP
        .store(true, std::sync::atomic::Ordering::SeqCst);
    let report = lfc_model::explore(opts(), scenario);
    lfc_dcas::adopt::model_toggles::SKIP_ADOPT_HELP
        .store(false, std::sync::atomic::Ordering::SeqCst);
    let failure = report
        .failure
        .expect("broken adoption helping must be caught by the bounded explorer");
    assert!(
        matches!(&failure.kind, lfc_model::FailureKind::Panic(m)
            if m.contains("descriptor left installed") || m.contains("must have committed")),
        "expected the torn-word assertion, got: {failure}"
    );
    assert!(!failure.schedule.is_empty());
    eprintln!(
        "sabotaged helping caught after {} executions:\n{failure}",
        report.executions
    );
}

/// Regression for the torn half-commit the crash adversary caught: a
/// victim killed *before* publication must never have its DCAS
/// half-applied by an adopter (the publication test in
/// `lfc_dcas::adopt`). Complete bound-1 search.
#[test]
fn killed_before_publication_is_never_half_applied() {
    let report = lfc_model::explore(opts(), scenario_unpublished);
    if let Some(f) = &report.failure {
        panic!("adopting an unpublished DCAS must be a no-op on the words, but:\n{f}");
    }
    assert!(
        report.complete,
        "the no-half-commit claim is a COMPLETE bounded search ({} executions hit a budget)",
        report.executions
    );
    eprintln!(
        "unpublished-kill scenario clean over {} executions (complete: {}, pruned: {})",
        report.executions, report.complete, report.pruned
    );
}
