//! Adversarial acceptance test for the model checker (ISSUE 4): with the
//! PR 3 stale-tag fix reverted behind `lfc_hazard::model_toggles`, the
//! bounded explorer must rediscover the use-after-free; with the fix in
//! place the same bound must pass clean.
//!
//! The bug (closed by the PR 3 review fix): a scan tags untagged retire
//! records with its post-fence read of the global epoch. An *unrelated*
//! advance can happen just before the unlink with nothing ordering the
//! tagging scan's read after it — the read may come back one generation
//! stale (a non-multi-copy-atomic behaviour the C11 model permits). A
//! reader that entered and validated at the newer epoch *before* the
//! unlink then satisfies `tag < min_enter` at the next scan and its block
//! is freed under it. The fix folds every entry epoch the reader sweep
//! observes into the tag (`max`), which the SC fence-fence rule makes
//! sufficient.
//!
//! Requires `RUSTFLAGS="--cfg lfc_model"`; compiles to nothing otherwise.
#![cfg(lfc_model)]

use lfc_runtime::sync::{AtomicUsize, Ordering};
use std::alloc::Layout;
use std::sync::Arc;

const MAGIC: usize = 0xFEED_F00D;
const NODE_LAYOUT: Layout = Layout::new::<[usize; 4]>();

unsafe fn reclaim_node(p: *mut u8) {
    // Safety: forwarded retire contract; the block came from alloc_block
    // with NODE_LAYOUT.
    unsafe { lfc_alloc::free_block(p, NODE_LAYOUT) };
}

/// One round of the scenario. Three concurrent roles:
///
/// * the *root* forces an unrelated epoch advance (the "just before the
///   unlink" advance of the bug report — unordered to both workers),
/// * a *reader* pins an operation epoch, loads the shared word and
///   dereferences the node it still points to,
/// * an *unlinker* swings the word to null, retires the node and runs two
///   reclamation scans (the first tags, the second frees).
///
/// Under the buggy tagging rule some interleaving + stale-read choice
/// frees the node while the reader holds it; the facade detects the
/// reader's access to the quarantined block.
fn scenario() {
    // A fresh "node" allocation holding a MAGIC word, published through a
    // shared location (the structure's "head").
    let node = lfc_alloc::alloc_block(NODE_LAYOUT).as_ptr() as *mut AtomicUsize;
    // Safety: fresh, correctly sized block.
    unsafe { node.write(AtomicUsize::new(MAGIC)) };
    let loc = Arc::new(AtomicUsize::new(node as usize));

    let reader = {
        let loc = loc.clone();
        lfc_model::thread::spawn(move || {
            let _g = lfc_hazard::pin_op();
            // Traversal-grade acquire hop (what `DAtomic::read_acquire`
            // does on the fast path).
            let p = loc.load(Ordering::Acquire);
            if p != 0 {
                // Safety: the operation epoch entered above must keep a
                // node reachable at entry alive for the whole walk — the
                // property under test. A use-after-free here is caught by
                // the facade (the block is quarantined, never unmapped).
                let v = unsafe { &*(p as *const AtomicUsize) }.load(Ordering::Acquire);
                assert_eq!(v, MAGIC, "node content changed under the epoch");
            }
        })
    };
    let unlinker = {
        let loc = loc.clone();
        lfc_model::thread::spawn(move || {
            let p = loc.load(Ordering::Acquire);
            if p != 0
                && loc
                    .compare_exchange(p, 0, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                // Safety: unlinked by the CAS per the retire contract.
                unsafe { lfc_hazard::retire(p as *mut u8, reclaim_node) };
                // First scan tags the record, second can free it.
                lfc_hazard::flush();
                lfc_hazard::flush();
            }
        })
    };
    // The unrelated advance, concurrent with both workers.
    lfc_hazard::advance_epoch();
    reader.join();
    unlinker.join();
}

fn opts() -> lfc_model::ExploreOpts {
    lfc_model::ExploreOpts {
        // One preemption reaches the bug: park the reader between its
        // pointer load and its dereference while the unlinker runs both
        // scans.
        preemption_bound: 1,
        step_budget: 50_000,
        max_executions: 60_000,
        memory: lfc_model::MemoryMode::Weak,
    }
}

/// Both phases live in ONE test: the toggle is process-global state, and
/// two `#[test]`s flipping it would race under cargo's default parallel
/// test threads (the stores happen outside the exploration lock).
#[test]
fn stale_tag_acceptance_buggy_caught_then_fixed_clean() {
    // Phase 1 — fix reverted: the bounded explorer must find the UAF.
    lfc_hazard::model_toggles::STALE_TAG_BUG.store(true, std::sync::atomic::Ordering::SeqCst);
    let report = lfc_model::explore(opts(), scenario);
    lfc_hazard::model_toggles::STALE_TAG_BUG.store(false, std::sync::atomic::Ordering::SeqCst);
    let failure = report
        .failure
        .expect("bounded explorer must rediscover the PR 3 stale-tag use-after-free");
    assert!(
        matches!(failure.kind, lfc_model::FailureKind::Uaf { .. }),
        "expected a use-after-free, got: {failure}"
    );
    // The report is replayable and human-readable.
    assert!(!failure.schedule.is_empty());
    assert!(failure.timeline.contains("T"), "timeline rendered");
    eprintln!(
        "rediscovered the stale-tag UAF after {} executions:\n{failure}",
        report.executions
    );

    // Phase 2 — fix in place: the same bound must pass clean.
    let report = lfc_model::explore(opts(), scenario);
    if let Some(f) = &report.failure {
        panic!("fixed tagging rule must survive the same bound, but:\n{f}");
    }
    assert!(
        report.complete,
        "the acceptance claim is a COMPLETE bounded search, not a truncated one \
         ({} executions hit max_executions)",
        report.executions
    );
    eprintln!(
        "fixed tagging clean over {} executions (complete: {}, pruned: {})",
        report.executions, report.complete, report.pruned
    );
}
