//! Bounded-exhaustive model checking of the real structures: small
//! scenarios explored over *every* schedule within the preemption bound,
//! driving the full production stack (composition engine, DCAS helping,
//! epoch reclamation, solo fast path) through the virtual-atomics facade.
//!
//! Requires `RUSTFLAGS="--cfg lfc_model"`; compiles to nothing otherwise.
#![cfg(lfc_model)]

use lfc_core::{move_one, MoveOutcome};
use lfc_linear::{check_linearizable, render_history, Cont, PairOp, PairSpec, Recorder};
use lfc_model::{explore, ExploreOpts, MemoryMode};
use lfc_structures::{MsQueue, OneSlot, TreiberStack};
use std::sync::Arc;

fn opts(bound: u32) -> ExploreOpts {
    ExploreOpts {
        preemption_bound: bound,
        step_budget: 100_000,
        max_executions: 40_000,
        memory: MemoryMode::Interleaving,
    }
}

#[test]
fn dfs_queue_enqueue_dequeue_conserves() {
    // One producer, one consumer, every interleaving within two
    // preemptions: the element is consumed exactly once (by the consumer
    // or by the root's drain), never duplicated, never lost.
    let report = explore(opts(2), || {
        let q = Arc::new(MsQueue::<u32>::new());
        let q1 = q.clone();
        let producer = lfc_model::thread::spawn(move || {
            q1.enqueue(7);
        });
        let q2 = q.clone();
        let consumer = lfc_model::thread::spawn(move || {
            let _ = q2.dequeue();
        });
        producer.join();
        consumer.join();
        let leftover = q.dequeue();
        assert!(leftover == Some(7) || leftover.is_none());
        assert_eq!(q.dequeue(), None, "element must not duplicate");
    });
    report.assert_ok();
    assert!(report.executions > 1, "scenario must actually branch");
}

#[test]
fn dfs_one_slot_admits_exactly_one_winner() {
    let report = explore(opts(2), || {
        let s = Arc::new(OneSlot::<u32>::new());
        let (s1, s2) = (s.clone(), s.clone());
        let a = lfc_model::thread::spawn(move || {
            let _ = s1.put(1);
        });
        let b = lfc_model::thread::spawn(move || {
            let _ = s2.put(2);
        });
        a.join();
        b.join();
        let v = s.take().expect("exactly one put wins");
        assert!(v == 1 || v == 2);
        assert_eq!(s.take(), None, "the loser must not have landed");
    });
    report.assert_ok();
}

#[test]
fn dfs_move_one_has_a_unified_linearization_point() {
    // The paper's core claim under exhaustive interleaving: while a
    // composed move is in flight, a concurrent observer never catches the
    // element absent from both containers (or present in both). The
    // recorded histories of every explored schedule must satisfy the
    // composed pair spec in which the move is ONE action.
    let spec = PairSpec {
        a: Cont::Fifo,
        b: Cont::Lifo,
    };
    let report = explore(opts(1), move || {
        let q = Arc::new(MsQueue::<u32>::new());
        let s = Arc::new(TreiberStack::<u32>::new());
        let rec = Arc::new(Recorder::<PairOp>::new());
        rec.record(|| {
            q.enqueue(42);
            PairOp::InsA(42)
        });
        let (q1, s1, r1) = (q.clone(), s.clone(), rec.clone());
        let mover = lfc_model::thread::spawn(move || {
            r1.record(|| PairOp::MoveAB(move_one(&*q1, &*s1) == MoveOutcome::Moved));
        });
        let (q2, s2, r2) = (q.clone(), s.clone(), rec.clone());
        let observer = lfc_model::thread::spawn(move || {
            r2.record(|| PairOp::RemB(s2.pop()));
            r2.record(|| PairOp::RemA(q2.dequeue()));
        });
        mover.join();
        observer.join();
        let rec = Arc::try_unwrap(rec).unwrap_or_else(|_| panic!("sole recorder owner"));
        let h = rec.finish();
        assert!(
            check_linearizable(&spec, &h).is_linearizable(),
            "torn move observed:\n{}",
            render_history(&h)
        );
    });
    report.assert_ok();
    assert!(report.executions > 10, "move machinery must branch");
}

#[test]
fn dfs_solo_fast_path_vs_concurrent_registration_weak() {
    // The uncontended fast path runs two raw CASes inside a solo section
    // guarded by an asymmetric SeqCst Dekker (`lfc-runtime::solo`). Under
    // the weak memory mode the model explores stale-read SC placements:
    // the handshake must still never let a freshly registering thread
    // observe the torn two-word state — observable here as the moved
    // element being in neither or both containers.
    let report = explore(
        ExploreOpts {
            preemption_bound: 1,
            step_budget: 100_000,
            max_executions: 40_000,
            memory: MemoryMode::Weak,
        },
        || {
            let q = Arc::new(MsQueue::<u32>::new());
            let s = Arc::new(TreiberStack::<u32>::new());
            q.enqueue(9);
            let (q1, s1) = (q.clone(), s.clone());
            let registrant = lfc_model::thread::spawn(move || {
                // Registration is the only lfc activity: it must either
                // wait out the solo section or force the mover onto the
                // descriptor path — in both cases the post-state is moved.
                lfc_runtime::current_tid();
                let popped = s1.pop();
                if let Some(v) = popped {
                    assert_eq!(v, 9);
                    assert_eq!(q1.dequeue(), None, "duplicated by solo window");
                    s1.push(v);
                }
            });
            let outcome = move_one(&*q, &*s);
            assert_eq!(outcome, MoveOutcome::Moved);
            registrant.join();
            assert_eq!(s.pop(), Some(9), "element landed exactly once");
            assert_eq!(q.dequeue(), None);
        },
    );
    report.assert_ok();
}
