//! Bounded-exploration acceptance for the PR 6 ejection ladder:
//!
//! * **ejection-vs-free** — a reader parks mid-traversal holding a pointer;
//!   the writer unlinks, retires with a divert route, and drives the eras
//!   until the reader is ejected, zombified, and the block *diverted out
//!   from under it*. On resume the reader runs the structure-idiom
//!   detection (`repin_if_ejected` at the retry head): with the detection
//!   honest the restart path must pass the bound clean; with the restart
//!   suppressed (`SKIP_EJECT_RESTART` toggle — the library behaviour a
//!   structure would get if it skipped the retry-head check) the explorer
//!   must catch the dereference of the diverted block as a use-after-free.
//! * **ejection-vs-capture** — same stall, but the reader promoted the
//!   block into an ENTRY hazard slot first (what the composition engine
//!   does at capture time). Zombie partitioning must never override a
//!   named hazard: the post-resume dereference has to survive the bound.
//!
//! Requires `RUSTFLAGS="--cfg lfc_model"`; compiles to nothing otherwise.
//! Run with `--test-threads=1`: the stall policy and the toggle are
//! process-global.
#![cfg(lfc_model)]

use lfc_runtime::sync::{spin_loop, AtomicUsize, Ordering};
use std::alloc::Layout;
use std::sync::Arc;

const MAGIC: usize = 0xE7EC_7ED0;
const NODE_LAYOUT: Layout = Layout::new::<[usize; 4]>();

/// Zero budgets, one-era stall and grace: the first lagging scan ejects,
/// the next zombifies, the one after diverts.
const AGGRESSIVE: lfc_hazard::StallPolicy = lfc_hazard::StallPolicy {
    stall_eras: 1,
    grace_eras: 1,
    max_retired_bytes: 0,
    max_retired_count: 0,
};

unsafe fn reclaim_node(p: *mut u8) {
    // Safety: forwarded retire contract (NODE_LAYOUT block).
    unsafe { lfc_alloc::free_block(p, NODE_LAYOUT) };
}

/// Retire `p` with full PR 6 metadata: sized, born now, divertable (the
/// block holds no drop glue, so the divert route is the reclaimer itself).
unsafe fn retire_divertable(p: *mut u8) {
    unsafe {
        lfc_hazard::retire_with(
            p,
            reclaim_node,
            lfc_hazard::RetireInfo {
                bytes: NODE_LAYOUT.size(),
                birth: lfc_hazard::birth_era(),
                divert: Some(reclaim_node),
            },
        )
    };
}

/// Writer role shared by both scenarios: unlink, retire, then drive the
/// era clock far enough that a reader parked since before the retire has
/// been ejected, zombified, and its pinned garbage partitioned.
fn unlink_and_stall_out(loc: &AtomicUsize) {
    let p = loc.swap(0, Ordering::AcqRel);
    if p != 0 {
        // Safety: unlinked by the swap.
        unsafe { retire_divertable(p as *mut u8) };
    }
    // Exactly three rungs: first lagging scan EJ-marks, second zombifies,
    // third partitions and diverts.
    for _ in 0..3 {
        lfc_hazard::advance_epoch();
        lfc_hazard::flush();
    }
}

/// Ejection-vs-free. The reader's park is a facade-visible latch spin, so
/// the explorer can interleave the writer's whole stall-out inside it.
fn scenario_eject_free() {
    lfc_hazard::configure_stall_policy(AGGRESSIVE);
    let node = lfc_alloc::alloc_block(NODE_LAYOUT).as_ptr() as *mut AtomicUsize;
    // Safety: fresh, correctly sized block.
    unsafe { node.write(AtomicUsize::new(MAGIC)) };
    let loc = Arc::new(AtomicUsize::new(node as usize));
    let latch = Arc::new(AtomicUsize::new(0));

    let reader = {
        let loc = loc.clone();
        let latch = latch.clone();
        lfc_model::thread::spawn(move || {
            let mut g = lfc_hazard::pin_op();
            let p = loc.load(Ordering::Acquire);
            // Park mid-traversal (no deref yet): the stall under test.
            while latch.load(Ordering::Acquire) == 0 {
                spin_loop();
            }
            // Structure retry-head idiom. `true` means every pointer from
            // the old era is invalid and the op restarts from the root;
            // `false` (not ejected, or the suppressed-restart toggle)
            // means the op continues with what it holds.
            if g.repin_if_ejected() {
                let p2 = loc.load(Ordering::Acquire);
                assert_eq!(p2, 0, "restart re-reads the root after the unlink");
            } else if p != 0 {
                // Safety claim under test: an un-ejected epoch keeps
                // entry-reachable blocks alive. With the toggle on this
                // thread *was* ejected, the block was diverted, and the
                // facade catches this dereference.
                let v = unsafe { &*(p as *const AtomicUsize) }.load(Ordering::Acquire);
                assert_eq!(v, MAGIC, "node content changed under the epoch");
            }
        })
    };
    let writer = {
        let loc = loc.clone();
        let latch = latch.clone();
        lfc_model::thread::spawn(move || {
            unlink_and_stall_out(&loc);
            latch.store(1, Ordering::Release);
        })
    };
    reader.join();
    writer.join();
    lfc_hazard::configure_stall_policy(lfc_hazard::StallPolicy::DEFAULT);
}

/// Ejection-vs-capture: the ENTRY promotion must survive the full ladder.
///
/// The reader spawns the writer *after* promoting: the spawn edge orders
/// the promotion before every scan, which is faithful to the engine —
/// capture-time promotion always completes under the still-validated
/// epoch before the operation can stall (the promote is part of the
/// capture step itself), so "promotion races the dangerous scans" is not
/// a reachable ordering. Modelling that unreachable race anyway explodes
/// the bounded search (every scan's hazard-slot read conflicts with the
/// promote/clear pair — 400k executions did not exhaust it); with the
/// spawn edge the explored concurrency is the ladder itself against the
/// parked reader, the same shape `scenario_eject_free` completes.
fn scenario_eject_capture() {
    lfc_hazard::configure_stall_policy(AGGRESSIVE);
    let node = lfc_alloc::alloc_block(NODE_LAYOUT).as_ptr() as *mut AtomicUsize;
    // Safety: fresh, correctly sized block.
    unsafe { node.write(AtomicUsize::new(MAGIC)) };
    let loc = Arc::new(AtomicUsize::new(node as usize));
    let latch = Arc::new(AtomicUsize::new(0));

    let reader = {
        let loc = loc.clone();
        let latch = latch.clone();
        lfc_model::thread::spawn(move || {
            let mut g = lfc_hazard::pin_op();
            // The writer does not exist yet, so the load always sees the
            // live node: the deref below runs in *every* execution.
            let p = loc.load(Ordering::Acquire);
            assert_ne!(p, 0, "unlink cannot precede the spawn");
            // Capture-time promotion (what the engine does): the block is
            // now hazard-named, independent of the epoch's fate.
            g.promote(lfc_hazard::slot::ENTRY0, p);
            let writer = {
                let loc = loc.clone();
                let latch = latch.clone();
                lfc_model::thread::spawn(move || {
                    unlink_and_stall_out(&loc);
                    latch.store(1, Ordering::Release);
                })
            };
            while latch.load(Ordering::Acquire) == 0 {
                spin_loop();
            }
            let _ = g.repin_if_ejected();
            // Safety claim under test: zombie partitioning never overrides
            // a named hazard, even though this thread was ejected and
            // zombified while parked.
            let v = unsafe { &*(p as *const AtomicUsize) }.load(Ordering::Acquire);
            assert_eq!(v, MAGIC, "ENTRY-promoted block freed under zombie");
            g.clear(lfc_hazard::slot::ENTRY0);
            writer.join();
        })
    };
    reader.join();
    lfc_hazard::configure_stall_policy(lfc_hazard::StallPolicy::DEFAULT);
}

fn opts() -> lfc_model::ExploreOpts {
    lfc_model::ExploreOpts {
        // One preemption suffices: park the reader at the latch while the
        // writer runs the whole unlink→retire→stall-out sequence.
        preemption_bound: 1,
        step_budget: 50_000,
        max_executions: 60_000,
        memory: lfc_model::MemoryMode::Weak,
    }
}

/// Both toggle phases in ONE test (the toggle is process-global; see
/// `stale_tag.rs` for the rationale).
#[test]
fn eject_free_skipped_restart_caught_then_honest_clean() {
    // Phase 1 — restart suppressed: the explorer must catch the UAF on
    // the diverted block.
    lfc_hazard::model_toggles::SKIP_EJECT_RESTART.store(true, std::sync::atomic::Ordering::SeqCst);
    let report = lfc_model::explore(opts(), scenario_eject_free);
    lfc_hazard::model_toggles::SKIP_EJECT_RESTART.store(false, std::sync::atomic::Ordering::SeqCst);
    let failure = report
        .failure
        .expect("suppressed ejection restart must surface as a use-after-free");
    assert!(
        matches!(failure.kind, lfc_model::FailureKind::Uaf { .. }),
        "expected a use-after-free, got: {failure}"
    );
    assert!(!failure.schedule.is_empty());
    eprintln!(
        "caught the suppressed-restart UAF after {} executions:\n{failure}",
        report.executions
    );

    // Phase 2 — honest detection: the same bound must pass clean.
    let report = lfc_model::explore(opts(), scenario_eject_free);
    if let Some(f) = &report.failure {
        panic!("honest ejection restart must survive the same bound, but:\n{f}");
    }
    assert!(
        report.complete,
        "acceptance is a COMPLETE bounded search ({} executions hit max_executions)",
        report.executions
    );
    eprintln!(
        "honest restart clean over {} executions (complete: {}, pruned: {})",
        report.executions, report.complete, report.pruned
    );
}

#[test]
fn eject_capture_entry_hazard_survives_zombie() {
    // The promotion adds hazard-slot scheduling points, so this scenario
    // still branches wider than eject-free even with the writer gated on
    // the promoted latch; budget headroom sized like `model_resize`.
    let report = lfc_model::explore(
        lfc_model::ExploreOpts {
            max_executions: 400_000,
            ..opts()
        },
        scenario_eject_capture,
    );
    if let Some(f) = &report.failure {
        panic!("ENTRY promotion must survive ejection + zombie, but:\n{f}");
    }
    assert!(
        report.complete,
        "acceptance is a COMPLETE bounded search ({} executions hit max_executions)",
        report.executions
    );
    eprintln!(
        "capture-under-ejection clean over {} executions (complete: {}, pruned: {})",
        report.executions, report.complete, report.pruned
    );
}
