//! The linearizability fuzzer: seeded random mixed workloads
//! (push/pop/insert/remove/move/swap/move_to_all across structure pairs)
//! executed under the model scheduler, with every recorded history fed to
//! the `lfc-linear` Wing–Gong checker. A non-linearizable history (or any
//! model-detected failure: use-after-free, deadlock, panic) is shrunk to a
//! minimal schedule and reported with its seed, replayable tape and
//! per-thread timelines.
//!
//! Budget knobs (for the nightly CI job):
//! * `LFC_FUZZ_SEEDS`  — workload plans per family (default 4)
//! * `LFC_FUZZ_EXECS`  — random schedules per plan (default 20)
//! * `LFC_FUZZ_SEED`   — base seed (default 0xF0CC; nightly passes a fresh one)
//!
//! Requires `RUSTFLAGS="--cfg lfc_model"`; compiles to nothing otherwise.
#![cfg(lfc_model)]

use lfc_core::{move_keyed, move_one, move_to_all, swap, try_move_keyed, MoveOutcome, SwapOutcome};
use lfc_linear::{
    check_linearizable, render_history, Cont, KeyedMoveResult, KeyedPairOp, KeyedPairSpec, PairOp,
    PairSpec, Recorder, SwapResult, TrioOp, TrioSpec,
};
use lfc_model::{explore_random, FuzzOpts, MemoryMode};
use lfc_runtime::SmallRng;
use lfc_structures::{LfHashMap, MsQueue, OneSlot, StampedStack, TreiberStack};
use std::sync::Arc;

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => {
            let t = v.trim();
            let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => t.parse().ok(),
            };
            // Never fall back silently: a typo'd seed would "reproduce"
            // nothing while looking like it ran.
            parsed.unwrap_or_else(|| panic!("{name} must be a u64 (decimal or 0x-hex), got {v:?}"))
        }
        Err(_) => default,
    }
}

fn budget() -> (u64, u64, u64) {
    (
        env_u64("LFC_FUZZ_SEEDS", 4),
        env_u64("LFC_FUZZ_EXECS", 20),
        env_u64("LFC_FUZZ_SEED", 0xF0CC),
    )
}

/// One planned operation on a pair of unkeyed containers.
#[derive(Clone, Copy, Debug)]
enum PlanOp {
    InsA(u32),
    InsB(u32),
    RemA,
    RemB,
    MoveAB,
    MoveBA,
    Swap,
}

/// Deterministic per-thread operation plans derived from a seed. Values
/// are statically unique per (thread, index) so histories never alias.
fn make_plan(seed: u64, threads: usize, ops: usize, with_swap: bool) -> Vec<Vec<PlanOp>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..threads)
        .map(|t| {
            (0..ops)
                .map(|i| {
                    let v = (t as u32 + 1) * 100 + i as u32;
                    match rng.below(if with_swap { 7 } else { 6 }) {
                        0 => PlanOp::InsA(v),
                        1 => PlanOp::InsB(v),
                        2 => PlanOp::RemA,
                        3 => PlanOp::RemB,
                        4 => PlanOp::MoveAB,
                        5 => PlanOp::MoveBA,
                        _ => PlanOp::Swap,
                    }
                })
                .collect()
        })
        .collect()
}

fn swap_result(o: SwapOutcome) -> SwapResult {
    match o {
        SwapOutcome::Swapped => SwapResult::Swapped,
        SwapOutcome::FirstEmpty => SwapResult::FirstEmpty,
        SwapOutcome::SecondEmpty | SwapOutcome::Rejected => SwapResult::SecondEmpty,
        SwapOutcome::WouldAlias => unreachable!("distinct containers"),
    }
}

/// Drive one family of container pairs: `mk` builds the pair and the
/// per-op adapter for every execution.
#[allow(clippy::too_many_arguments)]
fn fuzz_pair_family<A, B>(
    name: &str,
    spec: PairSpec,
    mk: impl Fn() -> (Arc<A>, Arc<B>) + Copy,
    ins_a: impl Fn(&A, u32) -> bool + Copy + Send + Sync + 'static,
    rem_a: impl Fn(&A) -> Option<u32> + Copy + Send + Sync + 'static,
    ins_b: impl Fn(&B, u32) -> bool + Copy + Send + Sync + 'static,
    rem_b: impl Fn(&B) -> Option<u32> + Copy + Send + Sync + 'static,
    mv_ab: impl Fn(&A, &B) -> PairOp + Copy + Send + Sync + 'static,
    mv_ba: impl Fn(&A, &B) -> PairOp + Copy + Send + Sync + 'static,
    swap_op: Option<impl Fn(&A, &B) -> PairOp + Copy + Send + Sync + 'static>,
) where
    A: Send + Sync + 'static,
    B: Send + Sync + 'static,
{
    let (seeds, execs, base) = budget();
    for w in 0..seeds {
        let plan = make_plan(
            base.wrapping_add(w).wrapping_mul(0x9E37),
            2,
            4,
            swap_op.is_some(),
        );
        let plan = Arc::new(plan);
        let report = explore_random(
            FuzzOpts {
                seed: base ^ (w << 8),
                executions: execs,
                step_budget: 200_000,
                memory: MemoryMode::Interleaving,
            },
            {
                let plan = plan.clone();
                move || {
                    let (a, b) = mk();
                    let rec = Arc::new(Recorder::<PairOp>::new());
                    let handles: Vec<_> = plan
                        .iter()
                        .cloned()
                        .map(|ops| {
                            let (a, b, rec) = (a.clone(), b.clone(), rec.clone());
                            lfc_model::thread::spawn(move || {
                                for op in ops {
                                    match op {
                                        PlanOp::InsA(v) => {
                                            rec.record(|| {
                                                ins_a(&a, v);
                                                PairOp::InsA(v)
                                            });
                                        }
                                        PlanOp::InsB(v) => {
                                            rec.record(|| {
                                                ins_b(&b, v);
                                                PairOp::InsB(v)
                                            });
                                        }
                                        PlanOp::RemA => {
                                            rec.record(|| PairOp::RemA(rem_a(&a)));
                                        }
                                        PlanOp::RemB => {
                                            rec.record(|| PairOp::RemB(rem_b(&b)));
                                        }
                                        PlanOp::MoveAB => {
                                            rec.record(|| mv_ab(&a, &b));
                                        }
                                        PlanOp::MoveBA => {
                                            rec.record(|| mv_ba(&a, &b));
                                        }
                                        PlanOp::Swap => {
                                            if let Some(sw) = swap_op {
                                                rec.record(|| sw(&a, &b));
                                            }
                                        }
                                    }
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join();
                    }
                    let rec =
                        Arc::try_unwrap(rec).unwrap_or_else(|_| panic!("sole recorder owner"));
                    let h = rec.finish();
                    let verdict = check_linearizable(&spec, &h);
                    assert!(
                        verdict.is_linearizable(),
                        "non-linearizable history:\n{}",
                        render_history(&h)
                    );
                }
            },
        );
        if let Some(f) = &report.failure {
            panic!("fuzz family {name}, workload {w} (re-run with LFC_FUZZ_SEED={base}): {f}");
        }
    }
}

#[test]
fn fuzz_queue_stack_moves_and_swaps() {
    fuzz_pair_family(
        "queue/stack",
        PairSpec {
            a: Cont::Fifo,
            b: Cont::Lifo,
        },
        || {
            (
                Arc::new(MsQueue::<u32>::new()),
                Arc::new(TreiberStack::<u32>::new()),
            )
        },
        |a, v| {
            a.enqueue(v);
            true
        },
        |a| a.dequeue(),
        |b, v| {
            b.push(v);
            true
        },
        |b| b.pop(),
        |a, b| PairOp::MoveAB(move_one(a, b) == MoveOutcome::Moved),
        |a, b| PairOp::MoveBA(move_one(b, a) == MoveOutcome::Moved),
        // No swaps: a swap touching a stack puts both its linearization
        // points on the same `top` word and reports WouldAlias by design.
        None::<fn(&MsQueue<u32>, &TreiberStack<u32>) -> PairOp>,
    );
}

#[test]
fn fuzz_queue_queue_swaps() {
    fuzz_pair_family(
        "queue/queue",
        PairSpec {
            a: Cont::Fifo,
            b: Cont::Fifo,
        },
        || {
            (
                Arc::new(MsQueue::<u32>::new()),
                Arc::new(MsQueue::<u32>::new()),
            )
        },
        |a, v| {
            a.enqueue(v);
            true
        },
        |a| a.dequeue(),
        |b, v| {
            b.enqueue(v);
            true
        },
        |b| b.dequeue(),
        |a, b| PairOp::MoveAB(move_one(a, b) == MoveOutcome::Moved),
        |a, b| PairOp::MoveBA(move_one(b, a) == MoveOutcome::Moved),
        Some(|a: &MsQueue<u32>, b: &MsQueue<u32>| PairOp::Swap(swap_result(swap(a, b)))),
    );
}

#[test]
fn fuzz_stamped_one_slot_moves() {
    // StampedStack source, OneSlot target: the bounded slot exercises the
    // move abort path (TargetRejected) under the scheduler. PairSpec
    // cannot express a bounded target, so this family checks against a
    // local spec with an explicit capacity-1 container B.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum SlotPairOp {
        PushA(u32),
        PopA(Option<u32>),
        PutB(u32, bool),
        TakeB(Option<u32>),
        /// move stack -> slot with the full observed outcome.
        MoveAB(MoveOutcome),
        /// move slot -> stack; true iff an element moved.
        MoveBA(bool),
    }
    #[derive(Clone, Copy, Debug, Default)]
    struct SlotPairSpec;
    impl lfc_linear::Spec for SlotPairSpec {
        type State = (u64, Option<u32>); // stack packed 8x8-bit values, slot
        type Op = SlotPairOp;
        fn init(&self) -> Self::State {
            (0, None)
        }
        fn apply(&self, state: &Self::State, op: &Self::Op) -> Option<Self::State> {
            // Stack encoding: little 8-bit frames, low frame = top; values
            // in this fuzz family are < 255 and stacks stay shallow.
            let (stack, slot) = *state;
            let push = |st: u64, v: u32| (st << 8) | (v as u64 & 0xFF);
            let pop = |st: u64| -> (u64, Option<u32>) {
                if st == 0 {
                    (0, None)
                } else {
                    (st >> 8, Some((st & 0xFF) as u32))
                }
            };
            match *op {
                SlotPairOp::PushA(v) => Some((push(stack, v), slot)),
                SlotPairOp::PopA(expected) => {
                    let (rest, got) = pop(stack);
                    (got == expected).then_some((rest, slot))
                }
                SlotPairOp::PutB(v, accepted) => match (slot, accepted) {
                    (None, true) => Some((stack, Some(v))),
                    (Some(_), false) => Some((stack, slot)),
                    _ => None,
                },
                SlotPairOp::TakeB(expected) => (slot == expected).then_some((stack, None)),
                SlotPairOp::MoveAB(outcome) => match outcome {
                    MoveOutcome::Moved => {
                        let (rest, got) = pop(stack);
                        match (got, slot) {
                            (Some(v), None) => Some((rest, Some(v))),
                            _ => None,
                        }
                    }
                    MoveOutcome::SourceEmpty => (stack == 0).then_some((stack, slot)),
                    MoveOutcome::TargetRejected => {
                        (stack != 0 && slot.is_some()).then_some((stack, slot))
                    }
                    MoveOutcome::WouldAlias => None,
                },
                SlotPairOp::MoveBA(moved) => match (slot, moved) {
                    (Some(v), true) => Some((push(stack, v), None)),
                    (None, false) => Some((stack, slot)),
                    _ => None,
                },
            }
        }
    }

    let (seeds, execs, base) = budget();
    for w in 0..seeds {
        let plan = make_plan(base.wrapping_add(w).wrapping_mul(0xA5A5), 2, 4, false);
        let plan = Arc::new(plan);
        let report = explore_random(
            FuzzOpts {
                seed: base ^ (0xB00 + w),
                executions: execs,
                step_budget: 200_000,
                memory: MemoryMode::Interleaving,
            },
            {
                let plan = plan.clone();
                move || {
                    let s = Arc::new(StampedStack::<u32>::new());
                    let slot = Arc::new(OneSlot::<u32>::new());
                    let rec = Arc::new(Recorder::<SlotPairOp>::new());
                    let handles: Vec<_> = plan
                        .iter()
                        .cloned()
                        .map(|ops| {
                            let (s, slot, rec) = (s.clone(), slot.clone(), rec.clone());
                            lfc_model::thread::spawn(move || {
                                for op in ops {
                                    match op {
                                        PlanOp::InsA(v) => {
                                            rec.record(|| {
                                                s.push(v);
                                                SlotPairOp::PushA(v)
                                            });
                                        }
                                        PlanOp::InsB(v) => {
                                            rec.record(|| SlotPairOp::PutB(v, slot.put(v)));
                                        }
                                        PlanOp::RemA => {
                                            rec.record(|| SlotPairOp::PopA(s.pop()));
                                        }
                                        PlanOp::RemB => {
                                            rec.record(|| SlotPairOp::TakeB(slot.take()));
                                        }
                                        PlanOp::MoveAB => {
                                            rec.record(|| {
                                                SlotPairOp::MoveAB(move_one(&*s, &*slot))
                                            });
                                        }
                                        PlanOp::MoveBA | PlanOp::Swap => {
                                            rec.record(|| {
                                                SlotPairOp::MoveBA(
                                                    move_one(&*slot, &*s) == MoveOutcome::Moved,
                                                )
                                            });
                                        }
                                    }
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join();
                    }
                    let rec =
                        Arc::try_unwrap(rec).unwrap_or_else(|_| panic!("sole recorder owner"));
                    let h = rec.finish();
                    let verdict = check_linearizable(&SlotPairSpec, &h);
                    assert!(
                        verdict.is_linearizable(),
                        "non-linearizable history:\n{}",
                        render_history(&h)
                    );
                }
            },
        );
        if let Some(f) = &report.failure {
            panic!("fuzz family stamped/one-slot, workload {w} (re-run with LFC_FUZZ_SEED={base}): {f}");
        }
    }
}

#[test]
fn fuzz_keyed_map_resize() {
    // The PR 5 resize fuzz plan: keyed insert/remove/move_keyed between
    // two split-ordered hash maps that start at ONE bucket, with forced
    // directory doublings mixed into the plans. Growth threads bucket
    // dummies into the very chains the keyed operations (and composed
    // captures) are traversing; every recorded history must still satisfy
    // the keyed pair spec — resize is semantically invisible.
    #[derive(Clone, Copy, Debug)]
    enum ResizeOp {
        InsA(u32),
        InsB(u32),
        RemA(u32),
        RemB(u32),
        MoveAB(u32),
        MoveBA(u32),
        /// Forced doubling (unrecorded: no observable map state changes).
        GrowA,
        GrowB,
    }

    fn mv_result(o: MoveOutcome) -> KeyedMoveResult {
        match o {
            MoveOutcome::Moved => KeyedMoveResult::Moved,
            MoveOutcome::SourceEmpty => KeyedMoveResult::Absent,
            MoveOutcome::TargetRejected => KeyedMoveResult::Duplicate,
            MoveOutcome::WouldAlias => unreachable!("distinct containers"),
        }
    }

    let (seeds, execs, base) = budget();
    for w in 0..seeds {
        let mut rng = SmallRng::seed_from_u64(base.wrapping_add(w).wrapping_mul(0x5EED5));
        // Tiny key space so operations genuinely conflict inside one chain
        // before growth and across split chains after it.
        let plans: Vec<Vec<ResizeOp>> = (0..2)
            .map(|_| {
                (0..5)
                    .map(|_| {
                        let k = rng.below(4) as u32;
                        match rng.below(8) {
                            0 => ResizeOp::InsA(k),
                            1 => ResizeOp::InsB(k),
                            2 => ResizeOp::RemA(k),
                            3 => ResizeOp::RemB(k),
                            4 => ResizeOp::MoveAB(k),
                            5 => ResizeOp::MoveBA(k),
                            6 => ResizeOp::GrowA,
                            _ => ResizeOp::GrowB,
                        }
                    })
                    .collect()
            })
            .collect();
        let plans = Arc::new(plans);
        let report = explore_random(
            FuzzOpts {
                seed: base ^ (0xD00 + w),
                executions: execs,
                step_budget: 200_000,
                memory: MemoryMode::Interleaving,
            },
            {
                let plans = plans.clone();
                move || {
                    let a = Arc::new(LfHashMap::<u32, u32>::with_buckets(1));
                    let b = Arc::new(LfHashMap::<u32, u32>::with_buckets(1));
                    let rec = Arc::new(Recorder::<KeyedPairOp>::new());
                    let handles: Vec<_> = plans
                        .iter()
                        .cloned()
                        .map(|ops| {
                            let (a, b, rec) = (a.clone(), b.clone(), rec.clone());
                            lfc_model::thread::spawn(move || {
                                for op in ops {
                                    match op {
                                        ResizeOp::InsA(k) => {
                                            rec.record(|| KeyedPairOp::InsA(k, a.insert(k, k)));
                                        }
                                        ResizeOp::InsB(k) => {
                                            rec.record(|| KeyedPairOp::InsB(k, b.insert(k, k)));
                                        }
                                        ResizeOp::RemA(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::RemA(k, a.remove(&k).is_some())
                                            });
                                        }
                                        ResizeOp::RemB(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::RemB(k, b.remove(&k).is_some())
                                            });
                                        }
                                        ResizeOp::MoveAB(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::MoveAB(
                                                    k,
                                                    mv_result(move_keyed(&*a, &k, &*b)),
                                                )
                                            });
                                        }
                                        ResizeOp::MoveBA(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::MoveBA(
                                                    k,
                                                    mv_result(move_keyed(&*b, &k, &*a)),
                                                )
                                            });
                                        }
                                        ResizeOp::GrowA => {
                                            a.force_grow();
                                        }
                                        ResizeOp::GrowB => {
                                            b.force_grow();
                                        }
                                    }
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join();
                    }
                    let rec =
                        Arc::try_unwrap(rec).unwrap_or_else(|_| panic!("sole recorder owner"));
                    let h = rec.finish();
                    let verdict = check_linearizable(&KeyedPairSpec, &h);
                    assert!(
                        verdict.is_linearizable(),
                        "non-linearizable keyed history under resize:\n{}",
                        render_history(&h)
                    );
                }
            },
        );
        if let Some(f) = &report.failure {
            panic!(
                "fuzz family keyed map resize, workload {w} (re-run with LFC_FUZZ_SEED={base}): {f}"
            );
        }
    }
}

#[test]
fn fuzz_broadcast_trio() {
    // move_to_all with two targets under the trio spec: an observer must
    // never catch the element in a strict subset of the targets.
    let (seeds, execs, base) = budget();
    for w in 0..seeds {
        let mut rng = SmallRng::seed_from_u64(base.wrapping_add(w).wrapping_mul(0xBCA57));
        let plans: Vec<Vec<u32>> = (0..2)
            .map(|_| (0..4).map(|_| rng.below(5) as u32).collect())
            .collect();
        let plans = Arc::new(plans);
        let spec = TrioSpec {
            a: Cont::Fifo,
            b: Cont::Fifo,
            c: Cont::Fifo,
        };
        let report = explore_random(
            FuzzOpts {
                seed: base ^ (0xC00 + w),
                executions: execs,
                step_budget: 200_000,
                memory: MemoryMode::Interleaving,
            },
            {
                let plans = plans.clone();
                move || {
                    let src = Arc::new(MsQueue::<u32>::new());
                    let d1 = Arc::new(MsQueue::<u32>::new());
                    let d2 = Arc::new(MsQueue::<u32>::new());
                    let rec = Arc::new(Recorder::<TrioOp>::new());
                    let handles: Vec<_> = plans
                        .iter()
                        .enumerate()
                        .map(|(t, ops)| {
                            let ops = ops.clone();
                            let (src, d1, d2, rec) =
                                (src.clone(), d1.clone(), d2.clone(), rec.clone());
                            lfc_model::thread::spawn(move || {
                                for (i, op) in ops.into_iter().enumerate() {
                                    let v = (t as u32 + 1) * 100 + i as u32;
                                    match op {
                                        0 => {
                                            rec.record(|| {
                                                src.enqueue(v);
                                                TrioOp::InsA(v)
                                            });
                                        }
                                        1 => {
                                            rec.record(|| TrioOp::RemA(src.dequeue()));
                                        }
                                        2 => {
                                            rec.record(|| TrioOp::RemB(d1.dequeue()));
                                        }
                                        3 => {
                                            rec.record(|| TrioOp::RemC(d2.dequeue()));
                                        }
                                        _ => {
                                            rec.record(|| {
                                                TrioOp::Broadcast(
                                                    move_to_all(&*src, &[&*d1, &*d2])
                                                        == MoveOutcome::Moved,
                                                )
                                            });
                                        }
                                    }
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join();
                    }
                    let rec =
                        Arc::try_unwrap(rec).unwrap_or_else(|_| panic!("sole recorder owner"));
                    let h = rec.finish();
                    let verdict = check_linearizable(&spec, &h);
                    assert!(
                        verdict.is_linearizable(),
                        "non-linearizable broadcast history:\n{}",
                        render_history(&h)
                    );
                }
            },
        );
        if let Some(f) = &report.failure {
            panic!(
                "fuzz family broadcast trio, workload {w} (re-run with LFC_FUZZ_SEED={base}): {f}"
            );
        }
    }
}

#[test]
fn fuzz_batched_keyed_moves() {
    // The PR 7 batched front-end under random schedules: keyed moves
    // between two hash maps are routed through one `always_batched`
    // claim-list gate (every submit takes the claim/drain path — combiner
    // handoffs, helping and self-execution all mix into the schedules),
    // while plain inserts/removes hit the maps directly. Every recorded
    // history must still satisfy the keyed pair spec: a batched move
    // remains one atomic action.
    use lfc_core::batch::decode_move;
    use lfc_core::{BatchGate, MoveKeyedOp};

    #[derive(Clone, Copy, Debug)]
    enum BatchedOp {
        InsA(u32),
        InsB(u32),
        RemA(u32),
        RemB(u32),
        MoveAB(u32),
        MoveBA(u32),
    }

    fn mv_result(o: MoveOutcome) -> KeyedMoveResult {
        match o {
            MoveOutcome::Moved => KeyedMoveResult::Moved,
            MoveOutcome::SourceEmpty => KeyedMoveResult::Absent,
            MoveOutcome::TargetRejected => KeyedMoveResult::Duplicate,
            MoveOutcome::WouldAlias => unreachable!("distinct containers"),
        }
    }

    type Gate = BatchGate<MoveKeyedOp<'static, u32, u32, LfHashMap<u32, u32>, LfHashMap<u32, u32>>>;

    let (seeds, execs, base) = budget();
    for w in 0..seeds {
        let mut rng = SmallRng::seed_from_u64(base.wrapping_add(w).wrapping_mul(0xBA7C4));
        // Tiny key space so batched moves collide with direct operations
        // on the same chains.
        let plans: Vec<Vec<BatchedOp>> = (0..2)
            .map(|_| {
                (0..4)
                    .map(|_| {
                        let k = rng.below(4) as u32;
                        match rng.below(6) {
                            0 => BatchedOp::InsA(k),
                            1 => BatchedOp::InsB(k),
                            2 => BatchedOp::RemA(k),
                            3 => BatchedOp::RemB(k),
                            4 => BatchedOp::MoveAB(k),
                            _ => BatchedOp::MoveBA(k),
                        }
                    })
                    .collect()
            })
            .collect();
        let plans = Arc::new(plans);
        let report = explore_random(
            FuzzOpts {
                seed: base ^ (0xE00 + w),
                executions: execs,
                step_budget: 200_000,
                memory: MemoryMode::Interleaving,
            },
            {
                let plans = plans.clone();
                move || {
                    let a = Arc::new(LfHashMap::<u32, u32>::new());
                    let b = Arc::new(LfHashMap::<u32, u32>::new());
                    // The request type borrows the maps; the Arcs outlive
                    // every worker join below, so promoting is sound.
                    let (ar, br): (&'static LfHashMap<u32, u32>, &'static LfHashMap<u32, u32>) =
                        unsafe { (&*Arc::as_ptr(&a), &*Arc::as_ptr(&b)) };
                    let gate: Arc<Gate> = Arc::new(BatchGate::always_batched());
                    let rec = Arc::new(Recorder::<KeyedPairOp>::new());
                    let handles: Vec<_> = plans
                        .iter()
                        .cloned()
                        .map(|ops| {
                            let (a, b, gate, rec) =
                                (a.clone(), b.clone(), gate.clone(), rec.clone());
                            lfc_model::thread::spawn(move || {
                                for op in ops {
                                    match op {
                                        BatchedOp::InsA(k) => {
                                            rec.record(|| KeyedPairOp::InsA(k, a.insert(k, k)));
                                        }
                                        BatchedOp::InsB(k) => {
                                            rec.record(|| KeyedPairOp::InsB(k, b.insert(k, k)));
                                        }
                                        BatchedOp::RemA(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::RemA(k, a.remove(&k).is_some())
                                            });
                                        }
                                        BatchedOp::RemB(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::RemB(k, b.remove(&k).is_some())
                                            });
                                        }
                                        BatchedOp::MoveAB(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::MoveAB(
                                                    k,
                                                    mv_result(decode_move(
                                                        gate.submit(MoveKeyedOp::new(ar, k, br)),
                                                    )),
                                                )
                                            });
                                        }
                                        BatchedOp::MoveBA(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::MoveBA(
                                                    k,
                                                    mv_result(decode_move(
                                                        gate.submit(MoveKeyedOp::new(br, k, ar)),
                                                    )),
                                                )
                                            });
                                        }
                                    }
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join();
                    }
                    let rec =
                        Arc::try_unwrap(rec).unwrap_or_else(|_| panic!("sole recorder owner"));
                    let h = rec.finish();
                    let verdict = check_linearizable(&KeyedPairSpec, &h);
                    assert!(
                        verdict.is_linearizable(),
                        "non-linearizable batched keyed history:\n{}",
                        render_history(&h)
                    );
                }
            },
        );
        if let Some(f) = &report.failure {
            panic!(
                "fuzz family batched keyed moves, workload {w} (re-run with LFC_FUZZ_SEED={base}): {f}"
            );
        }
    }
}

#[test]
fn fuzz_eliminating_stack_pairs() {
    // The queue/stack family re-run with the elimination exchanger forced
    // in front of the stack's `top` CAS: plain pushes and pops may cancel
    // through a side slot in any schedule the scheduler finds, and every
    // history must still linearize. Composed moves in the same plans keep
    // using `top` (composed contexts are never eliminable).
    struct ForceElim;
    impl Drop for ForceElim {
        fn drop(&mut self) {
            lfc_structures::model_toggles::FORCE_ELIM
                .store(false, std::sync::atomic::Ordering::SeqCst);
        }
    }
    let _guard = ForceElim;
    lfc_structures::model_toggles::FORCE_ELIM.store(true, std::sync::atomic::Ordering::SeqCst);
    fuzz_pair_family(
        "queue/eliminating-stack",
        PairSpec {
            a: Cont::Fifo,
            b: Cont::Lifo,
        },
        || {
            (
                Arc::new(MsQueue::<u32>::new()),
                Arc::new(TreiberStack::<u32>::new()),
            )
        },
        |a, v| {
            a.enqueue(v);
            true
        },
        |a| a.dequeue(),
        |b, v| {
            b.push(v);
            true
        },
        |b| b.pop(),
        |a, b| PairOp::MoveAB(move_one(a, b) == MoveOutcome::Moved),
        |a, b| PairOp::MoveBA(move_one(b, a) == MoveOutcome::Moved),
        None::<fn(&MsQueue<u32>, &TreiberStack<u32>) -> PairOp>,
    );
}

#[test]
fn fuzz_keyed_skip_map_moves() {
    // Composed keyed moves routed through a pair of skip maps under the
    // model scheduler: every insert/remove lands on the level-0 chain
    // (the only linearization subject) while tower builds, tower freezes
    // and express-lane unlinks race in the same interleavings. The keyed
    // pair spec must hold on every schedule — a tower CAS that decided an
    // outcome, resurrected a removed key or tore a composed capture would
    // surface as a non-linearizable history.
    #[derive(Clone, Copy, Debug)]
    enum SkipOp {
        InsA(u32),
        InsB(u32),
        RemA(u32),
        RemB(u32),
        MoveAB(u32),
        MoveBA(u32),
    }

    fn mv_result(o: MoveOutcome) -> KeyedMoveResult {
        match o {
            MoveOutcome::Moved => KeyedMoveResult::Moved,
            MoveOutcome::SourceEmpty => KeyedMoveResult::Absent,
            MoveOutcome::TargetRejected => KeyedMoveResult::Duplicate,
            MoveOutcome::WouldAlias => unreachable!("distinct containers"),
        }
    }

    use lfc_structures::LfSkipMap;

    let (seeds, execs, base) = budget();
    for w in 0..seeds {
        let mut rng = SmallRng::seed_from_u64(base.wrapping_add(w).wrapping_mul(0x5C1F5));
        // Tiny key space so the same level-0 nodes are inserted, removed,
        // tower-linked and re-inserted across interleavings.
        let plans: Vec<Vec<SkipOp>> = (0..2)
            .map(|_| {
                (0..5)
                    .map(|_| {
                        let k = rng.below(3) as u32;
                        match rng.below(6) {
                            0 => SkipOp::InsA(k),
                            1 => SkipOp::InsB(k),
                            2 => SkipOp::RemA(k),
                            3 => SkipOp::RemB(k),
                            4 => SkipOp::MoveAB(k),
                            _ => SkipOp::MoveBA(k),
                        }
                    })
                    .collect()
            })
            .collect();
        let plans = Arc::new(plans);
        let report = explore_random(
            FuzzOpts {
                seed: base ^ (0x5C0 + w),
                executions: execs,
                step_budget: 200_000,
                memory: MemoryMode::Interleaving,
            },
            {
                let plans = plans.clone();
                move || {
                    let a = Arc::new(LfSkipMap::<u32, u32>::new());
                    let b = Arc::new(LfSkipMap::<u32, u32>::new());
                    let rec = Arc::new(Recorder::<KeyedPairOp>::new());
                    let handles: Vec<_> = plans
                        .iter()
                        .cloned()
                        .map(|ops| {
                            let (a, b, rec) = (a.clone(), b.clone(), rec.clone());
                            lfc_model::thread::spawn(move || {
                                for op in ops {
                                    match op {
                                        SkipOp::InsA(k) => {
                                            rec.record(|| KeyedPairOp::InsA(k, a.insert(k, k)));
                                        }
                                        SkipOp::InsB(k) => {
                                            rec.record(|| KeyedPairOp::InsB(k, b.insert(k, k)));
                                        }
                                        SkipOp::RemA(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::RemA(k, a.remove(&k).is_some())
                                            });
                                        }
                                        SkipOp::RemB(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::RemB(k, b.remove(&k).is_some())
                                            });
                                        }
                                        SkipOp::MoveAB(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::MoveAB(
                                                    k,
                                                    mv_result(move_keyed(&*a, &k, &*b)),
                                                )
                                            });
                                        }
                                        SkipOp::MoveBA(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::MoveBA(
                                                    k,
                                                    mv_result(move_keyed(&*b, &k, &*a)),
                                                )
                                            });
                                        }
                                    }
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join();
                    }
                    let rec =
                        Arc::try_unwrap(rec).unwrap_or_else(|_| panic!("sole recorder owner"));
                    let h = rec.finish();
                    let verdict = check_linearizable(&KeyedPairSpec, &h);
                    assert!(
                        verdict.is_linearizable(),
                        "non-linearizable keyed skip-map history:\n{}",
                        render_history(&h)
                    );
                }
            },
        );
        if let Some(f) = &report.failure {
            panic!(
                "fuzz family keyed skip-map moves, workload {w} (re-run with LFC_FUZZ_SEED={base}): {f}"
            );
        }
    }
}

#[test]
fn fuzz_keyed_moves_with_faults_armed() {
    // The PR 10 chaos plan family, phase A — the OOM adversary under the
    // Wing–Gong checker: keyed plans over two hash maps with the
    // commit-descriptor allocation site armed, every composed move routed
    // through the fallible `try_move_keyed`. An `Err` is the try-surface
    // contract ("nothing happened, both maps untouched") and is left
    // unrecorded — if a refused attempt ever DID mutate a map, some later
    // recorded operation observes the phantom change and the history
    // stops linearizing.
    use lfc_runtime::fault;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Clone, Copy, Debug)]
    enum FaultOp {
        InsA(u32),
        InsB(u32),
        RemA(u32),
        RemB(u32),
        TryMoveAB(u32),
        TryMoveBA(u32),
    }

    fn mv_result(o: MoveOutcome) -> KeyedMoveResult {
        match o {
            MoveOutcome::Moved => KeyedMoveResult::Moved,
            MoveOutcome::SourceEmpty => KeyedMoveResult::Absent,
            MoveOutcome::TargetRejected => KeyedMoveResult::Duplicate,
            MoveOutcome::WouldAlias => unreachable!("distinct containers"),
        }
    }

    let (seeds, execs, base) = budget();
    // Counted across every execution of every workload: the family must
    // prove the adversary engaged, not that the schedule dodged it.
    let refusals = Arc::new(AtomicU64::new(0));
    for w in 0..seeds {
        let mut rng = SmallRng::seed_from_u64(base.wrapping_add(w).wrapping_mul(0xFA017));
        let plans: Vec<Vec<FaultOp>> = (0..2)
            .map(|_| {
                (0..5)
                    .map(|_| {
                        let k = rng.below(4) as u32;
                        // Move-heavy mix: the armed site sits on the
                        // composed path only.
                        match rng.below(8) {
                            0 => FaultOp::InsA(k),
                            1 => FaultOp::InsB(k),
                            2 => FaultOp::RemA(k),
                            3 => FaultOp::RemB(k),
                            4 | 5 => FaultOp::TryMoveAB(k),
                            _ => FaultOp::TryMoveBA(k),
                        }
                    })
                    .collect()
            })
            .collect();
        let plans = Arc::new(plans);
        let report = explore_random(
            FuzzOpts {
                seed: base ^ (0xFA0 + w),
                executions: execs,
                step_budget: 200_000,
                memory: MemoryMode::Interleaving,
            },
            {
                let plans = plans.clone();
                let refusals = refusals.clone();
                move || {
                    // Every second descriptor allocation fails.
                    fault::arm_site("dcas.desc", fault::Schedule::EveryNth(2));
                    let a = Arc::new(LfHashMap::<u32, u32>::with_buckets(1));
                    let b = Arc::new(LfHashMap::<u32, u32>::with_buckets(1));
                    let rec = Arc::new(Recorder::<KeyedPairOp>::new());
                    // Seed the source map as a recorded sequential prefix:
                    // a move of an absent key returns `SourceEmpty` before
                    // it ever allocates, so an empty start would let most
                    // executions dodge the armed site entirely.
                    for k in 0..4u32 {
                        rec.record(|| KeyedPairOp::InsA(k, a.insert(k, k)));
                    }
                    // Root pin: keeps the plan threads out of the
                    // solo-regime fast path, which commits without a
                    // descriptor and would never reach the armed site.
                    let _g = lfc_hazard::pin();
                    let handles: Vec<_> = plans
                        .iter()
                        .cloned()
                        .map(|ops| {
                            let (a, b, rec) = (a.clone(), b.clone(), rec.clone());
                            let refusals = refusals.clone();
                            lfc_model::thread::spawn(move || {
                                for op in ops {
                                    match op {
                                        FaultOp::InsA(k) => {
                                            rec.record(|| KeyedPairOp::InsA(k, a.insert(k, k)));
                                        }
                                        FaultOp::InsB(k) => {
                                            rec.record(|| KeyedPairOp::InsB(k, b.insert(k, k)));
                                        }
                                        FaultOp::RemA(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::RemA(k, a.remove(&k).is_some())
                                            });
                                        }
                                        FaultOp::RemB(k) => {
                                            rec.record(|| {
                                                KeyedPairOp::RemB(k, b.remove(&k).is_some())
                                            });
                                        }
                                        FaultOp::TryMoveAB(k) => {
                                            let invoke = rec.now();
                                            match try_move_keyed(&*a, &k, &*b) {
                                                Ok(o) => {
                                                    let ret = rec.now();
                                                    rec.push(
                                                        KeyedPairOp::MoveAB(k, mv_result(o)),
                                                        invoke,
                                                        ret,
                                                    );
                                                }
                                                Err(_) => {
                                                    refusals.fetch_add(1, Ordering::Relaxed);
                                                }
                                            }
                                        }
                                        FaultOp::TryMoveBA(k) => {
                                            let invoke = rec.now();
                                            match try_move_keyed(&*b, &k, &*a) {
                                                Ok(o) => {
                                                    let ret = rec.now();
                                                    rec.push(
                                                        KeyedPairOp::MoveBA(k, mv_result(o)),
                                                        invoke,
                                                        ret,
                                                    );
                                                }
                                                Err(_) => {
                                                    refusals.fetch_add(1, Ordering::Relaxed);
                                                }
                                            }
                                        }
                                    }
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join();
                    }
                    fault::disarm();
                    let rec =
                        Arc::try_unwrap(rec).unwrap_or_else(|_| panic!("sole recorder owner"));
                    let h = rec.finish();
                    let verdict = check_linearizable(&KeyedPairSpec, &h);
                    assert!(
                        verdict.is_linearizable(),
                        "non-linearizable keyed history under injected OOM:\n{}",
                        render_history(&h)
                    );
                }
            },
        );
        fault::disarm();
        if let Some(f) = &report.failure {
            panic!(
                "fuzz family keyed moves + OOM, workload {w} (re-run with LFC_FUZZ_SEED={base}): {f}"
            );
        }
    }
    assert!(
        refusals.load(Ordering::Relaxed) > 0,
        "the armed allocation site never refused an attempt — the OOM adversary did not engage"
    );

    // Phase B — kill + OOM armed TOGETHER, checked by conservation: the
    // recorder cannot express an operation whose owner died mid-flight
    // (it is completed later by an adopter, outside any inv/ret window),
    // so this phase asserts the ledger-grade invariant instead — every
    // token ends in exactly one map with its value intact, every corpse
    // is adopted. `Nth(1)` on the publish site guarantees exactly one
    // death per execution: the first operation whose descriptor
    // allocation survives `EveryNth(2)` reaches publication and dies
    // there.
    use lfc_dcas::adopt_dead_threads;

    let report = explore_random(
        FuzzOpts {
            seed: base ^ 0x411ED,
            executions: execs,
            step_budget: 200_000,
            memory: MemoryMode::Interleaving,
        },
        move || {
            fault::arm_site("dcas.published", fault::Schedule::Nth(1));
            fault::arm_site("dcas.desc", fault::Schedule::EveryNth(2));
            let a = Arc::new(LfHashMap::<u32, u32>::with_buckets(1));
            let b = Arc::new(LfHashMap::<u32, u32>::with_buckets(1));
            for k in 0..3u32 {
                a.insert(k, 100 + k);
            }
            let before = fault::abandoned_total();
            // Root pin defeats the solo regime (see phase A) AND outlives
            // both children, so the backstop adoption below runs under a
            // registered guard.
            let g = lfc_hazard::pin();
            let victim = {
                let (a, b) = (a.clone(), b.clone());
                lfc_model::thread::spawn(move || {
                    let _g = lfc_hazard::pin();
                    let _ = try_move_keyed(&*a, &0u32, &*b);
                })
            };
            let worker = {
                let (a, b) = (a.clone(), b.clone());
                lfc_model::thread::spawn(move || {
                    let g = lfc_hazard::pin();
                    for k in [1u32, 2] {
                        let _ = try_move_keyed(&*a, &k, &*b);
                    }
                    // Bounded: depending on the interleaving the death may
                    // not have happened yet; the root backstop is certain.
                    for _ in 0..4 {
                        if fault::corpse_count() > 0 && adopt_dead_threads(&g) > 0 {
                            break;
                        }
                    }
                })
            };
            victim.join();
            worker.join();
            for _ in 0..4 {
                if fault::corpse_count() == 0 {
                    break;
                }
                adopt_dead_threads(&g);
            }
            fault::disarm();
            assert_eq!(fault::corpse_count(), 0, "corpse left unadopted");
            assert!(
                fault::abandoned_total() > before,
                "the kill site never fired — the crash adversary did not engage"
            );
            // Conservation: keys are disjoint per thread and present at
            // the start, so each token must end in exactly one map.
            for k in 0..3u32 {
                let (va, vb) = (a.get(&k), b.get(&k));
                assert!(
                    va.is_some() != vb.is_some(),
                    "token {k} lost or duplicated after adoption (a={va:?}, b={vb:?})"
                );
                assert_eq!(va.or(vb), Some(100 + k), "token {k} value torn");
            }
        },
    );
    fault::disarm();
    if let Some(f) = &report.failure {
        panic!("fuzz family keyed moves + kill, (re-run with LFC_FUZZ_SEED={base}): {f}");
    }
}
