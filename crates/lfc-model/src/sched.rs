//! The deterministic cooperative scheduler.
//!
//! Model threads are real OS threads serialized by a baton: exactly one
//! thread is *active* at any instant. Every instrumented operation is a
//! *scheduling point*: the thread announces the operation it is about to
//! perform (location, read/write, fence, yield), the scheduler consults the
//! choice tape to pick the next thread to run, and the granted thread then
//! performs its operation against the shadow memory while holding the
//! execution lock. Announcing before blocking gives the scheduler full
//! lookahead over every thread's pending operation, which is what makes the
//! sleep-set cut and conflict-based wakeups precise.
//!
//! A choice tape (`Tape`) drives all nondeterminism: scheduling decisions
//! and, under [`crate::mem::MemoryMode::Weak`], which admissible store a
//! load returns. Replaying a tape replays the execution exactly; the DFS
//! driver in [`crate::explore`] enumerates tapes.

use crate::clock::{VClock, MAX_MODEL_THREADS};
use crate::mem::{view_join, Mem, MemoryMode, RelState, StoreRec, View};
use crate::sc::{ScGraph, ScNode};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Why an execution stopped before completing normally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// An instrumented atomic access touched a freed (quarantined) block —
    /// a use-after-free the reclamation layer should have prevented.
    Uaf {
        /// Address of the accessed word.
        addr: usize,
    },
    /// No thread can make progress (join cycle or lost wakeup).
    Deadlock,
    /// The same block was handed to the allocator twice during one
    /// execution (two scans claiming one retire record, say) — caught at
    /// the quarantine instead of corrupting the real heap at teardown.
    DoubleFree {
        /// Base address of the block.
        addr: usize,
    },
    /// A model thread panicked (assertion failure in the test body or an
    /// invariant violation inside the code under test).
    Panic(String),
    /// The execution exceeded the per-run step budget (livelock, or the
    /// scenario is too big for the configured bound).
    StepBudget,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Uaf { addr } => write!(
                f,
                "use-after-free: atomic access to freed block at {addr:#x}"
            ),
            FailureKind::DoubleFree { addr } => {
                write!(f, "double free: block at {addr:#x} quarantined twice")
            }
            FailureKind::Deadlock => write!(f, "deadlock: no runnable thread"),
            FailureKind::Panic(m) => write!(f, "panic: {m}"),
            FailureKind::StepBudget => {
                write!(f, "step budget exceeded (livelock or bound too small)")
            }
        }
    }
}

#[derive(Clone, Debug)]
pub(crate) enum Stop {
    Failure(FailureKind),
    /// Sleep-set blocked: every runnable thread is asleep, i.e. this branch
    /// is provably redundant with an already-explored sibling. Not a bug.
    Pruned,
}

/// How the tape fills choices past the forced prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Policy {
    /// Deterministic leftmost (DFS order).
    Dfs,
    /// Seeded pseudo-random.
    Random,
}

/// One recorded choice point (only points with more than one option are
/// recorded, so tapes stay dense and replayable).
#[derive(Clone, Copy, Debug)]
pub struct Choice {
    /// Number of options that were available.
    pub arity: u32,
    /// Option taken.
    pub chosen: u32,
}

#[derive(Debug)]
pub(crate) struct Tape {
    forced: Vec<u32>,
    pos: usize,
    pub(crate) record: Vec<Choice>,
    policy: Policy,
    rng: SplitMix,
}

impl Tape {
    fn new(forced: Vec<u32>, policy: Policy, seed: u64) -> Self {
        Tape {
            forced,
            pos: 0,
            record: Vec::new(),
            policy,
            rng: SplitMix(seed),
        }
    }

    /// Choose among `arity` options. `bias_zero` (random mode only) is the
    /// per-mille probability of taking option 0 outright — used to favour
    /// staying on the current thread so random schedules are not pure
    /// thrash.
    fn choose(&mut self, arity: u32, bias_zero: u32) -> u32 {
        debug_assert!(arity >= 1);
        if arity == 1 {
            return 0;
        }
        let c = if self.pos < self.forced.len() {
            self.forced[self.pos]
        } else {
            match self.policy {
                Policy::Dfs => 0,
                Policy::Random => {
                    if bias_zero > 0 && (self.rng.next() % 1000) < bias_zero as u64 {
                        0
                    } else {
                        (self.rng.next() % arity as u64) as u32
                    }
                }
            }
        }
        .min(arity - 1);
        self.pos += 1;
        self.record.push(Choice { arity, chosen: c });
        c
    }
}

/// Minimal splitmix64 (lfc-model cannot depend on lfc-runtime's PRNG: it
/// sits below it in the crate graph).
#[derive(Debug)]
pub(crate) struct SplitMix(pub u64);

impl SplitMix {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Announced pending operation (the scheduler's lookahead).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Pending {
    addr: Option<usize>,
    write: bool,
    fence: bool,
    yields: bool,
}

impl Pending {
    fn op(addr: usize, write: bool) -> Self {
        Pending {
            addr: Some(addr),
            write,
            fence: false,
            yields: false,
        }
    }
    fn fence() -> Self {
        Pending {
            addr: None,
            write: false,
            fence: true,
            yields: false,
        }
    }
    fn yields() -> Self {
        Pending {
            addr: None,
            write: false,
            fence: false,
            yields: true,
        }
    }
    fn neutral() -> Self {
        Pending {
            addr: None,
            write: false,
            fence: false,
            yields: false,
        }
    }

    fn conflicts(&self, other: &Pending) -> bool {
        // Fences constrain every location. A yield conflicts with
        // everything too: the yielding thread is explicitly waiting for
        // *someone else's* progress, so a sleeping thread must be eligible
        // again or a spin loop starves the only thread that could satisfy
        // it (sleep sets assume finite runs; spin loops break that).
        if self.fence || other.fence || self.yields || other.yields {
            return true;
        }
        match (self.addr, other.addr) {
            (Some(a), Some(b)) => a == b && (self.write || other.write),
            _ => false,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Announced an operation; waiting for the baton.
    Runnable,
    /// Holds the baton and is executing user code.
    Running,
    /// Blocked joining another model thread.
    JoinWait(usize),
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    pending: Option<Pending>,
    sleeping: bool,
    clock: VClock,
    /// SC fences this thread has executed: (own timestamp, graph node),
    /// strictly increasing in timestamp.
    fences: Vec<(u32, ScNode)>,
    /// Last SC event (op or fence) for program-order chaining.
    last_sc: Option<ScNode>,
    /// Last SC fence node (for the reader-side fence rules).
    last_fence: Option<ScNode>,
    /// Stores made since this thread's last SC fence: `(addr, idx)` — at
    /// the next fence they pick up retroactive writer-side constraints.
    recent_stores: Vec<(usize, u32)>,
    /// Per-location CoRR floor, propagated with the clock (see
    /// [`crate::mem::View`]).
    view: View,
    /// Cached `Arc` snapshot of `view` for Release stores, valid while
    /// `view_dirty` is false.
    view_snapshot: Option<std::sync::Arc<View>>,
    /// Whether `view` changed since `view_snapshot` was taken.
    view_dirty: bool,
    /// Set by a spin/yield hint: the next load reads the *newest* store
    /// unconditionally. Models the fairness assumption that a spin-wait
    /// eventually observes fresh values — without it, weak mode could
    /// re-read a stale flag forever and every spin loop would spawn an
    /// unbounded family of livelocked branches.
    fresh_next: bool,
}

impl ThreadState {
    fn new(status: Status, pending: Option<Pending>) -> Self {
        ThreadState {
            status,
            pending,
            sleeping: false,
            clock: VClock::ZERO,
            fences: Vec::new(),
            last_sc: None,
            last_fence: None,
            recent_stores: Vec::new(),
            view: View::new(),
            view_snapshot: None,
            view_dirty: true,
            fresh_next: false,
        }
    }
}

/// One line of the execution trace (recorded only when tracing is on).
#[derive(Clone, Debug)]
pub struct TraceEv {
    /// Model thread id.
    pub tid: usize,
    /// Human-readable description of the performed operation.
    pub text: String,
}

/// Per-execution configuration (built by the explorers).
#[derive(Clone, Debug)]
pub(crate) struct RunCfg {
    pub policy: Policy,
    pub seed: u64,
    pub mem: MemoryMode,
    pub preemption_bound: u32,
    pub step_budget: u64,
    pub trace: bool,
}

/// Per-location SC bookkeeping that lives outside `Mem` (last SC store per
/// address, to keep same-location SC stores ordered consistently with
/// modification order).
#[derive(Debug, Default)]
struct ScPerLoc {
    last_sc_store: HashMap<usize, ScNode>,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    active: Option<usize>,
    /// The previously running thread (for preemption accounting and the
    /// stay-on-thread candidate ordering).
    prev: Option<usize>,
    preemptions: u32,
    pub(crate) steps: u64,
    pub(crate) tape: Tape,
    pub(crate) mem: Mem,
    sc: ScGraph,
    sc_fence_clock: VClock,
    /// Last SC fence of the whole execution (fences are totally ordered by
    /// execution order; chaining them lets retroactive constraints reuse
    /// the chain).
    last_global_fence: Option<ScNode>,
    sc_loc: ScPerLoc,
    pub(crate) stop: Option<Stop>,
    pub(crate) trace: Vec<TraceEv>,
    cfg: RunCfg,
}

impl ExecState {
    fn stopped(&self) -> bool {
        self.stop.is_some()
    }

    pub(crate) fn thread_count(&self) -> usize {
        self.threads.len()
    }

    fn set_stop(&mut self, s: Stop) {
        if self.stop.is_none() {
            self.stop = Some(s);
        }
    }

    fn trace_ev(&mut self, tid: usize, text: impl FnOnce() -> String) {
        if self.cfg.trace {
            let text = text();
            self.trace.push(TraceEv { tid, text });
        }
    }
}

pub(crate) struct Exec {
    pub(crate) m: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn current() -> Option<(Arc<Exec>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(exec: Arc<Exec>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Whether the calling thread is inside a live (non-poisoned) model
/// execution. Used by the allocator hook: frees are quarantined for the
/// whole execution, including the post-failure free-for-all.
pub(crate) fn execution_active() -> bool {
    current().is_some()
}

impl Exec {
    pub(crate) fn new(cfg: RunCfg, forced: Vec<u32>) -> Arc<Exec> {
        let tape = Tape::new(forced, cfg.policy, cfg.seed);
        Arc::new(Exec {
            m: Mutex::new(ExecState {
                threads: Vec::new(),
                active: None,
                prev: None,
                preemptions: 0,
                steps: 0,
                tape,
                mem: Mem::default(),
                sc: ScGraph::new(),
                sc_fence_clock: VClock::ZERO,
                last_global_fence: None,
                sc_loc: ScPerLoc::default(),
                stop: None,
                trace: Vec::new(),
                cfg,
            }),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Take a freed block into the quarantine. A base address quarantined
    /// twice is a double free in the code under test: report it instead of
    /// letting teardown double-`dealloc` real heap memory.
    pub(crate) fn quarantine(&self, addr: usize, size: usize, align: usize) {
        let mut st = self.lock();
        if st.mem.quarantine.insert(addr, (size, align)).is_some() {
            st.set_stop(Stop::Failure(FailureKind::DoubleFree { addr }));
        }
        self.cv.notify_all();
    }

    /// Register the root thread (always model tid 0, born running).
    pub(crate) fn register_root(&self) {
        let mut st = self.lock();
        debug_assert!(st.threads.is_empty());
        st.threads.push(ThreadState::new(Status::Running, None));
        st.active = Some(0);
        st.prev = Some(0);
    }

    /// Register a spawned thread; runnable from birth so the scheduler can
    /// pick it before its OS thread even starts. Thread creation
    /// synchronizes-with thread start: the child inherits the parent's
    /// clock.
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = self.lock();
        let tid = st.threads.len();
        assert!(
            tid < MAX_MODEL_THREADS,
            "model execution spawned more than {MAX_MODEL_THREADS} threads"
        );
        let mut t = ThreadState::new(Status::Runnable, Some(Pending::neutral()));
        t.clock = st.threads[parent].clock;
        t.view = st.threads[parent].view.clone();
        t.view_snapshot = None;
        t.view_dirty = true;
        st.threads.push(t);
        tid
    }

    /// Record a failure from outside a scheduling point (thread wrapper
    /// catching a user panic).
    pub(crate) fn stop_failure(&self, kind: FailureKind) {
        let mut st = self.lock();
        st.set_stop(Stop::Failure(kind));
        self.cv.notify_all();
    }

    /// Pick the next thread to hold the baton. Caller has set
    /// `st.active = None`.
    fn pick(&self, st: &mut ExecState) {
        debug_assert!(st.active.is_none());
        let prev = st.prev;
        // Candidate order: previous thread first (option 0 = "continue"),
        // then the rest by ascending id — deterministic and replayable.
        let mut cands: Vec<usize> = Vec::new();
        if let Some(p) = prev {
            if st.threads[p].status == Status::Runnable && !st.threads[p].sleeping {
                cands.push(p);
            }
        }
        for t in 0..st.threads.len() {
            if Some(t) != prev
                && st.threads[t].status == Status::Runnable
                && !st.threads[t].sleeping
            {
                cands.push(t);
            }
        }
        // A yielding thread must hand over whenever anyone else can run
        // (loom-style spin/yield semantics; prevents livelocked branches).
        if cands.len() > 1 {
            if let Some(p) = prev {
                if cands[0] == p && st.threads[p].pending.as_ref().is_some_and(|o| o.yields) {
                    cands.remove(0);
                }
            }
        }
        if cands.is_empty() {
            let any_sleeping = st
                .threads
                .iter()
                .any(|t| t.status == Status::Runnable && t.sleeping);
            let any_unfinished = st.threads.iter().any(|t| t.status != Status::Finished);
            if any_sleeping {
                st.set_stop(Stop::Pruned);
            } else if any_unfinished {
                st.set_stop(Stop::Failure(FailureKind::Deadlock));
            }
            self.cv.notify_all();
            return;
        }
        // Preemption bound: once exhausted, the previous thread keeps the
        // baton for as long as it stays runnable.
        let prev_runnable = prev.is_some_and(|p| cands.contains(&p));
        if prev_runnable && st.preemptions >= st.cfg.preemption_bound && cands.len() > 1 {
            cands.truncate(1); // cands[0] is prev by construction
        }
        let c = st.tape.choose(cands.len() as u32, 500) as usize;
        let chosen = cands[c];
        if prev_runnable && Some(chosen) != prev {
            st.preemptions += 1;
        }
        // Sleep-set cut (DFS only): siblings to the left of the chosen
        // branch were fully explored from this state; they sleep until a
        // dependent operation wakes them.
        if st.cfg.policy == Policy::Dfs {
            for &s in &cands[..c] {
                st.threads[s].sleeping = true;
            }
        }
        st.active = Some(chosen);
        st.prev = Some(chosen);
        self.cv.notify_all();
    }

    fn wake_sleepers(&self, st: &mut ExecState, op: &Pending) {
        for t in st.threads.iter_mut() {
            if t.sleeping {
                if let Some(p) = &t.pending {
                    if op.conflicts(p) {
                        t.sleeping = false;
                    }
                }
            }
        }
    }

    /// Announce `op`, wait for the baton, then run `perform` under the
    /// execution lock. Returns `None` when the execution is poisoned (the
    /// caller falls through to the raw operation).
    fn scheduled<R>(
        self: &Arc<Self>,
        tid: usize,
        op: Pending,
        perform: impl FnOnce(&mut ExecState, usize) -> Result<R, Stop>,
    ) -> Option<R> {
        let mut st = self.lock();
        if st.stopped() {
            return None;
        }
        st.steps += 1;
        if st.steps > st.cfg.step_budget {
            // Never unwind on a model-detected stop: unwinding mid-protocol
            // would leave the *real* process-global lfc state (solo flag,
            // claimed thread ids, epoch slots) torn and poison every later
            // execution. Record the failure and let every thread run to
            // natural completion in passthrough mode instead.
            st.set_stop(Stop::Failure(FailureKind::StepBudget));
            self.cv.notify_all();
            return None;
        }
        st.threads[tid].status = Status::Runnable;
        st.threads[tid].pending = Some(op);
        if st.active == Some(tid) {
            st.active = None;
            self.pick(&mut st);
        }
        if st.stopped() {
            // pick() may have stopped the execution (deadlock/prune).
            st.threads[tid].status = Status::Running;
            st.threads[tid].pending = None;
            return None;
        }
        loop {
            if st.stopped() {
                st.threads[tid].status = Status::Running;
                st.threads[tid].pending = None;
                return None;
            }
            if st.active == Some(tid) {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[tid].status = Status::Running;
        let op = st.threads[tid]
            .pending
            .take()
            .expect("granted thread has a pending op");
        self.wake_sleepers(&mut st, &op);
        match perform(&mut st, tid) {
            Ok(r) => Some(r),
            Err(stop) => {
                // See the step-budget comment: record and fall through to
                // the raw operation (for a UAF the memory is quarantined —
                // still mapped — so the raw access is defined behaviour).
                st.set_stop(stop);
                self.cv.notify_all();
                None
            }
        }
    }

    /// A model thread is done (its wrapper already ran the lfc teardown
    /// epilogue). Wakes joiners and passes the baton on.
    pub(crate) fn thread_finished(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].status = Status::Finished;
        st.threads[tid].pending = None;
        st.threads[tid].sleeping = false;
        for t in st.threads.iter_mut() {
            if t.status == Status::JoinWait(tid) {
                t.status = Status::Runnable;
                t.pending = Some(Pending::neutral());
            }
        }
        if st.active == Some(tid) {
            st.active = None;
            if !st.stopped() {
                self.pick(&mut st);
            }
        }
        self.cv.notify_all();
    }

    /// Block until `target` finishes (a scheduling point).
    pub(crate) fn join_point(self: &Arc<Self>, tid: usize, target: usize) {
        let mut st = self.lock();
        if st.stopped() {
            return;
        }
        if st.threads[target].status == Status::Finished {
            // Thread completion synchronizes-with join.
            let tc = st.threads[target].clock;
            let tv = st.threads[target].view.clone();
            st.threads[tid].clock.join(&tc);
            if view_join(&mut st.threads[tid].view, &tv) {
                st.threads[tid].view_dirty = true;
            }
            return;
        }
        st.threads[tid].status = Status::JoinWait(target);
        st.threads[tid].pending = None;
        if st.active == Some(tid) {
            st.active = None;
            self.pick(&mut st);
        }
        loop {
            if st.stopped() {
                st.threads[tid].status = Status::Running;
                st.threads[tid].pending = None;
                return;
            }
            if st.active == Some(tid) && st.threads[tid].status == Status::Runnable {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[tid].status = Status::Running;
        st.threads[tid].pending = None;
        // Thread completion synchronizes-with join.
        let tc = st.threads[target].clock;
        let tv = st.threads[target].view.clone();
        st.threads[tid].clock.join(&tc);
        if view_join(&mut st.threads[tid].view, &tv) {
            st.threads[tid].view_dirty = true;
        }
    }

    /// First scheduling point of a spawned thread (its registration made it
    /// runnable before the OS thread existed).
    pub(crate) fn start_point(self: &Arc<Self>, tid: usize) {
        let mut st = self.lock();
        loop {
            if st.stopped() {
                st.threads[tid].status = Status::Running;
                st.threads[tid].pending = None;
                return;
            }
            if st.active == Some(tid) {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[tid].status = Status::Running;
        st.threads[tid].pending = None;
    }

    /// Wait until every registered thread has finished (run by the root
    /// after its closure returns; stray threads are scheduled to completion
    /// even if the closure forgot to join them).
    pub(crate) fn wait_all_finished(&self) {
        let mut st = self.lock();
        loop {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_sc(o: Ordering) -> bool {
    matches!(o, Ordering::SeqCst)
}

/// First SC fence of `writer` sequenced after timestamp `ts` (for the
/// write-fence SC rules).
fn fence_after(t: &ThreadState, ts: u32) -> Option<ScNode> {
    let i = t.fences.partition_point(|&(fts, _)| fts <= ts);
    t.fences.get(i).map(|&(_, n)| n)
}

/// Make a new SC node for thread `tid`, chained in program order.
fn new_sc_node(st: &mut ExecState, tid: usize) -> ScNode {
    let n = st.sc.new_node();
    if let Some(p) = st.threads[tid].last_sc {
        st.sc.add_edge(p, n);
    }
    st.threads[tid].last_sc = Some(n);
    n
}

/// Edges required to let a load (SC node `ln`, reader fence `fr`) skip the
/// stores after index `idx` — the contrapositives of C11 p4/p5/p6/p7.
fn stale_edges(
    st: &ExecState,
    addr: usize,
    idx: usize,
    ln: Option<ScNode>,
    fr: Option<ScNode>,
) -> Vec<(ScNode, ScNode)> {
    let loc = match st.mem.peek(addr) {
        Some(l) => l,
        None => return Vec::new(),
    };
    let mut es = Vec::new();
    for s in &loc.stores[idx + 1..] {
        if let Some(sn) = s.sc_node {
            if let Some(ln) = ln {
                es.push((ln, sn));
            }
            if let Some(fr) = fr {
                es.push((fr, sn));
            }
        }
        if let Some(w) = s.writer {
            if let Some(fw) = fence_after(&st.threads[w], s.ts) {
                if let Some(ln) = ln {
                    es.push((ln, fw));
                }
                if let Some(fr) = fr {
                    es.push((fr, fw));
                }
            }
        }
    }
    es
}

/// Raise thread `tid`'s CoRR floor for `addr` to at least `idx`.
fn view_raise(t: &mut ThreadState, addr: usize, idx: u32) {
    let e = t.view.entry(addr).or_insert(0);
    if *e < idx {
        *e = idx;
        t.view_dirty = true;
    }
}

/// The thread's current view as a shared snapshot (reused until the view
/// next changes).
fn view_snapshot(t: &mut ThreadState) -> std::sync::Arc<View> {
    if t.view_dirty || t.view_snapshot.is_none() {
        let a = std::sync::Arc::new(t.view.clone());
        t.view_snapshot = Some(a.clone());
        t.view_dirty = false;
        a
    } else {
        t.view_snapshot.clone().expect("checked above")
    }
}

fn check_uaf(st: &ExecState, addr: usize) -> Result<(), Stop> {
    if st.mem.is_freed(addr) {
        Err(Stop::Failure(FailureKind::Uaf { addr }))
    } else {
        Ok(())
    }
}

/// Instrumented load.
pub(crate) fn load(addr: usize, ord: Ordering, seed: &dyn Fn() -> usize) -> Option<usize> {
    let (exec, tid) = current()?;
    exec.scheduled(tid, Pending::op(addr, false), |st, tid| {
        check_uaf(st, addr)?;
        st.threads[tid].clock.tick(tid);
        let ln = if is_sc(ord) {
            Some(new_sc_node(st, tid))
        } else {
            None
        };
        let fr = st.threads[tid].last_fence;
        let clock = st.threads[tid].clock;
        let own = st.threads[tid].view.get(&addr).copied().unwrap_or(0) as usize;
        let loc = st.mem.loc(addr, seed);
        let display = loc.display_id;
        let floor = loc.visibility_floor(own, &clock);
        let latest = loc.latest();
        let fresh = std::mem::take(&mut st.threads[tid].fresh_next);
        let idx = if st.cfg.mem == MemoryMode::Interleaving || floor == latest || fresh {
            latest
        } else {
            // Enumerate newest-first; the newest store is always
            // admissible, older ones only if the SC graph stays acyclic.
            let mut allowed = vec![latest];
            for i in (floor..latest).rev() {
                let es = stale_edges(st, addr, i, ln, fr);
                if let Some(added) = st.sc.add_edges_checked(&es) {
                    // Edges were only a satisfiability probe; withdraw and
                    // re-commit for the branch actually taken.
                    st.sc.remove_exact(&added);
                    allowed.push(i);
                }
            }
            let c = st.tape.choose(allowed.len() as u32, 0) as usize;
            let idx = allowed[c];
            if idx != latest {
                let es = stale_edges(st, addr, idx, ln, fr);
                let ok = st.sc.add_edges_checked(&es);
                debug_assert!(ok.is_some(), "probed-admissible candidate must commit");
            }
            idx
        };
        let loc = st.mem.loc(addr, seed);
        let rec = loc.stores[idx].clone();
        // Record reader anchors so SC stores (or writer-side fences) that
        // appear later in execution order pick up their retroactive
        // "must be SC-after this read" constraints.
        if let Some(ln) = ln {
            loc.readers.push((ln, idx as u32));
        }
        if let Some(fr) = fr {
            loc.readers.push((fr, idx as u32));
        }
        if let (Some(ln), Some(sn)) = (ln, rec.sc_node) {
            st.sc.add_edge(sn, ln);
        }
        view_raise(&mut st.threads[tid], addr, idx as u32);
        if is_acquire(ord) {
            if let Some(rel) = &rec.rel {
                st.threads[tid].clock.join(&rel.clock);
                let rv = rel.view.clone();
                if view_join(&mut st.threads[tid].view, &rv) {
                    st.threads[tid].view_dirty = true;
                }
            }
        }
        st.trace_ev(tid, || {
            format!(
                "load[{ord:?}] a{display} -> {:#x}{}",
                rec.val,
                if idx != latest { " (stale)" } else { "" }
            )
        });
        Ok(rec.val)
    })
}

/// Append a store record (shared by store/RMW paths); the caller commits
/// the value to the real atomic. Fails with `Stop::Pruned` when an SC
/// store's retroactive constraints contradict an earlier stale-read grant:
/// the execution prefix is not C11-consistent, so the branch is abandoned.
#[allow(clippy::too_many_arguments)]
fn push_store(
    st: &mut ExecState,
    tid: usize,
    addr: usize,
    val: usize,
    ord: Ordering,
    rel_extra: Option<RelState>,
    seed: &dyn Fn() -> usize,
) -> Result<u32, Stop> {
    let ts = st.threads[tid].clock.0[tid];
    let node = if is_sc(ord) {
        let n = new_sc_node(st, tid);
        // Same-location SC stores must appear in the SC order in
        // modification order.
        if let Some(&p) = st.sc_loc.last_sc_store.get(&addr) {
            st.sc.add_edge(p, n);
        }
        st.sc_loc.last_sc_store.insert(addr, n);
        Some(n)
    } else {
        None
    };
    if let Some(n) = node {
        // Retroactive p4/p5: every anchor that read an older store of this
        // location must precede this SC store in the SC order.
        let retro: Vec<(ScNode, ScNode)> = st
            .mem
            .loc(addr, seed)
            .readers
            .iter()
            .map(|&(a, _)| (a, n))
            .collect();
        if st.sc.add_edges_checked(&retro).is_none() {
            return Err(Stop::Pruned);
        }
    }
    let rel = if is_release(ord) {
        let mut clock = st.threads[tid].clock;
        let snap = view_snapshot(&mut st.threads[tid]);
        let view = match &rel_extra {
            // Release-sequence continuation that actually adds coverage:
            // fall back to a one-off combined map.
            Some(extra) => {
                clock.join(&extra.clock);
                let mut combined = (*snap).clone();
                if view_join(&mut combined, &extra.view) {
                    std::sync::Arc::new(combined)
                } else {
                    snap
                }
            }
            None => snap,
        };
        Some(RelState { clock, view })
    } else {
        // A non-release RMW continues the release sequence of the store it
        // replaced.
        rel_extra
    };
    let loc = st.mem.loc(addr, seed);
    loc.stores.push(StoreRec {
        val,
        writer: Some(tid),
        ts,
        rel,
        sc_node: node,
    });
    let latest = loc.latest() as u32;
    let display = loc.display_id;
    view_raise(&mut st.threads[tid], addr, latest);
    st.threads[tid].recent_stores.push((addr, latest));
    st.trace_ev(tid, || format!("store[{ord:?}] a{display} = {val:#x}"));
    Ok(latest)
}

/// Instrumented store. `commit` writes the real atomic (under the lock).
pub(crate) fn store(
    addr: usize,
    val: usize,
    ord: Ordering,
    seed: &dyn Fn() -> usize,
    commit: &dyn Fn(usize),
) -> Option<()> {
    let (exec, tid) = current()?;
    exec.scheduled(tid, Pending::op(addr, true), |st, tid| {
        check_uaf(st, addr)?;
        st.threads[tid].clock.tick(tid);
        push_store(st, tid, addr, val, ord, None, seed)?;
        commit(val);
        Ok(())
    })
}

/// Instrumented read-modify-write; returns the previous value.
pub(crate) fn rmw(
    addr: usize,
    ord: Ordering,
    f: &dyn Fn(usize) -> usize,
    seed: &dyn Fn() -> usize,
    commit: &dyn Fn(usize),
) -> Option<usize> {
    let (exec, tid) = current()?;
    exec.scheduled(tid, Pending::op(addr, true), |st, tid| {
        check_uaf(st, addr)?;
        st.threads[tid].clock.tick(tid);
        let prev = {
            let loc = st.mem.loc(addr, seed);
            loc.stores[loc.latest()].clone()
        };
        if is_acquire(ord) {
            if let Some(rel) = &prev.rel {
                st.threads[tid].clock.join(&rel.clock);
                let rv = rel.view.clone();
                if view_join(&mut st.threads[tid].view, &rv) {
                    st.threads[tid].view_dirty = true;
                }
            }
        }
        let new = f(prev.val);
        push_store(st, tid, addr, new, ord, prev.rel, seed)?;
        commit(new);
        Ok(prev.val)
    })
}

/// Instrumented compare-exchange. RMW semantics on success; a plain load of
/// the latest value on failure (spurious weak failures are not modelled).
pub(crate) fn cas(
    addr: usize,
    old: usize,
    new: usize,
    success: Ordering,
    failure: Ordering,
    seed: &dyn Fn() -> usize,
    commit: &dyn Fn(usize),
) -> Option<Result<usize, usize>> {
    let (exec, tid) = current()?;
    exec.scheduled(tid, Pending::op(addr, true), |st, tid| {
        check_uaf(st, addr)?;
        st.threads[tid].clock.tick(tid);
        let (latest, prev) = {
            let loc = st.mem.loc(addr, seed);
            let latest = loc.latest();
            (latest, loc.stores[latest].clone())
        };
        if prev.val == old {
            if is_acquire(success) {
                if let Some(rel) = &prev.rel {
                    st.threads[tid].clock.join(&rel.clock);
                    let rv = rel.view.clone();
                    if view_join(&mut st.threads[tid].view, &rv) {
                        st.threads[tid].view_dirty = true;
                    }
                }
            }
            push_store(st, tid, addr, new, success, prev.rel, seed)?;
            commit(new);
            Ok(Ok(prev.val))
        } else {
            let display = st.mem.loc(addr, seed).display_id;
            // A failed CAS is a load of the newest store. A SeqCst failed
            // CAS is an SC *read event*: it needs a graph node (program
            // order + rf) and a reader anchor, so later SC stores to this
            // location pick up the retroactive p4 constraint exactly as
            // they would for an SC load.
            if is_sc(failure) {
                let ln = new_sc_node(st, tid);
                if let Some(sn) = prev.sc_node {
                    st.sc.add_edge(sn, ln);
                }
                let loc = st.mem.loc(addr, seed);
                loc.readers.push((ln, latest as u32));
            }
            view_raise(&mut st.threads[tid], addr, latest as u32);
            if is_acquire(failure) {
                if let Some(rel) = &prev.rel {
                    st.threads[tid].clock.join(&rel.clock);
                    let rv = rel.view.clone();
                    if view_join(&mut st.threads[tid].view, &rv) {
                        st.threads[tid].view_dirty = true;
                    }
                }
            }
            st.trace_ev(tid, || format!("cas-fail a{display} -> {:#x}", prev.val));
            Ok(Err(prev.val))
        }
    })
}

/// Instrumented fence: returns `true` when the caller must fall through to
/// the real `std` fence (no live execution). Only SeqCst fences exist in
/// the instrumented crates; inside an execution the fence joins the global
/// SC-fence clock both ways (SC fences are totally ordered by execution
/// order) and becomes an SC node for the graph-side fence rules.
pub(crate) fn fence_or_passthrough(ord: Ordering) -> bool {
    if current().is_none() {
        return true;
    }
    assert!(
        is_sc(ord),
        "lfc-model supports SeqCst fences only (got {ord:?})"
    );
    fence_model(ord).is_none()
}

fn fence_model(_ord: Ordering) -> Option<()> {
    let (exec, tid) = current()?;
    exec.scheduled(tid, Pending::fence(), |st, tid| {
        let ts = st.threads[tid].clock.tick(tid);
        let n = new_sc_node(st, tid);
        st.threads[tid].fences.push((ts, n));
        st.threads[tid].last_fence = Some(n);
        // Fences are totally ordered by execution order (matching the
        // bidirectional clock join below); chain them in the graph so
        // fence-fence constraints are explicit.
        if let Some(p) = st.last_global_fence {
            st.sc.add_edge(p, n);
        }
        st.last_global_fence = Some(n);
        // Retroactive p6: a write sequenced before this fence constrains
        // every anchor that read an older store of the written location to
        // be SC-before this fence.
        let mine = std::mem::take(&mut st.threads[tid].recent_stores);
        let mut retro: Vec<(ScNode, ScNode)> = Vec::new();
        for (addr, idx) in mine {
            if let Some(loc) = st.mem.peek(addr) {
                for &(a, k) in &loc.readers {
                    if k < idx {
                        retro.push((a, n));
                    }
                }
            }
        }
        if st.sc.add_edges_checked(&retro).is_none() {
            return Err(Stop::Pruned);
        }
        // Clocks join through the fence pair (write visibility: C++17
        // [atomics.order] p6 — a write sequenced before an earlier SC
        // fence is seen by reads after a later one). Read-views
        // deliberately do NOT: read-read coherence through SC fences is
        // the C++20/P0668 strengthening, absent from the C11/C++17 model
        // this repo's ordering audit reasons in — and the stale-tag bug
        // class lives exactly in that gap.
        let fc = st.sc_fence_clock;
        st.threads[tid].clock.join(&fc);
        let tc = st.threads[tid].clock;
        st.sc_fence_clock.join(&tc);
        st.trace_ev(tid, || "fence[SeqCst]".to_string());
        Ok(())
    })
}

/// Instrumented spin hint / yield: a scheduling point that forces the
/// baton to another runnable thread whenever one exists.
pub(crate) fn yield_point() -> Option<()> {
    let (exec, tid) = current()?;
    exec.scheduled(tid, Pending::yields(), |st, tid| {
        st.threads[tid].fresh_next = true;
        st.trace_ev(tid, || "yield".to_string());
        Ok(())
    })
}

impl Mem {
    /// Read-only peek used while probing candidates.
    pub(crate) fn peek(&self, addr: usize) -> Option<&crate::mem::Loc> {
        self.peek_loc(addr)
    }
}
