//! The explorable SeqCst order, as a growing constraint graph.
//!
//! C11 gives every execution a single total order *S* over all `SeqCst`
//! operations and fences, consistent with each thread's program order, with
//! per-location coherence for SC reads (atomics.order p4: an SC load reads
//! the last SC store to its location that precedes it in *S*, or a later
//! non-SC store), and with the fence rules (p5–p7: a write sequenced before
//! an SC fence is seen by SC loads — and by plain loads fenced on the
//! reader's side — ordered after that fence in *S*).
//!
//! The crucial subtlety is that *S* is **not** the execution interleaving:
//! an SC load may legitimately return a *stale* value as long as placing it
//! *before* the skipped SC store in *S* is consistent — the behaviour real
//! non-multi-copy-atomic hardware exhibits, and exactly the shape of the
//! PR 3 stale-epoch-tag use-after-free. A model that pins *S* to the
//! interleaving (as loom does) can never reproduce that class of bug.
//!
//! So instead of fixing *S*, the model accumulates *ordering constraints*:
//! program-order edges between a thread's SC events, reads-from edges, and
//! — whenever a load is granted a stale candidate — the contrapositives of
//! p4/p5/p6/p7 ("if you did not see it, you precede it in *S*"). A
//! candidate value is admissible iff adding its edges keeps the graph
//! acyclic, i.e. iff at least one legal total order *S* remains.

/// An SC event (operation or fence) in the constraint graph.
pub type ScNode = u32;

/// Growing DAG of "must precede in the SC order" constraints.
#[derive(Debug, Default)]
pub struct ScGraph {
    adj: Vec<Vec<ScNode>>,
}

impl ScGraph {
    /// Fresh, empty graph.
    pub fn new() -> Self {
        ScGraph::default()
    }

    /// Allocate a node for a new SC event.
    pub fn new_node(&mut self) -> ScNode {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as ScNode
    }

    fn reaches(&self, from: ScNode, to: ScNode) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if std::mem::replace(&mut seen[n as usize], true) {
                continue;
            }
            stack.extend_from_slice(&self.adj[n as usize]);
        }
        false
    }

    /// Add one edge unconditionally (caller knows it cannot close a cycle,
    /// e.g. program order to a brand-new node).
    pub fn add_edge(&mut self, a: ScNode, b: ScNode) {
        if a != b && !self.adj[a as usize].contains(&b) {
            self.adj[a as usize].push(b);
        }
    }

    /// Try to add a batch of edges. On success returns the edges that were
    /// actually inserted (already-present ones are skipped), so a
    /// satisfiability probe can be withdrawn exactly with
    /// [`ScGraph::remove_exact`]. On any cycle the whole batch is rolled
    /// back and `None` is returned (the candidate behaviour is inconsistent
    /// with every SC total order).
    pub fn add_edges_checked(
        &mut self,
        edges: &[(ScNode, ScNode)],
    ) -> Option<Vec<(ScNode, ScNode)>> {
        let mut added = Vec::new();
        for &(a, b) in edges {
            if a == b {
                // A self-edge is an immediate contradiction.
                self.remove_exact(&added);
                return None;
            }
            if self.adj[a as usize].contains(&b) {
                continue;
            }
            if self.reaches(b, a) {
                self.remove_exact(&added);
                return None;
            }
            self.adj[a as usize].push(b);
            added.push((a, b));
        }
        Some(added)
    }

    /// Remove exactly the edges returned by a successful
    /// [`ScGraph::add_edges_checked`] (withdrawing a probe).
    pub fn remove_exact(&mut self, added: &[(ScNode, ScNode)]) {
        for &(a, b) in added.iter().rev() {
            let v = &mut self.adj[a as usize];
            if let Some(i) = v.iter().rposition(|&x| x == b) {
                v.remove(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_edges_accepted() {
        let mut g = ScGraph::new();
        let a = g.new_node();
        let b = g.new_node();
        let c = g.new_node();
        assert!(g.add_edges_checked(&[(a, b), (b, c)]).is_some());
        assert!(g.reaches(a, c));
    }

    #[test]
    fn cycle_rejected_and_rolled_back() {
        let mut g = ScGraph::new();
        let a = g.new_node();
        let b = g.new_node();
        let c = g.new_node();
        assert!(g.add_edges_checked(&[(a, b), (b, c)]).is_some());
        // Closing the cycle must fail and leave the graph unchanged.
        assert!(g.add_edges_checked(&[(c, b), (c, a)]).is_none());
        assert!(!g.reaches(c, a));
        assert!(!g.reaches(c, b));
        // The graph still accepts consistent extensions.
        assert!(g.add_edges_checked(&[(a, c)]).is_some());
    }

    #[test]
    fn dekker_shape_is_contradictory() {
        // s1 -> l1 (PO), s2 -> l2 (PO); both loads stale:
        // l1 -> s2, l2 -> s1 closes the classic Dekker cycle.
        let mut g = ScGraph::new();
        let s1 = g.new_node();
        let l1 = g.new_node();
        let s2 = g.new_node();
        let l2 = g.new_node();
        g.add_edge(s1, l1);
        g.add_edge(s2, l2);
        assert!(g.add_edges_checked(&[(l1, s2)]).is_some());
        assert!(
            g.add_edges_checked(&[(l2, s1)]).is_none(),
            "second stale read must be refused"
        );
    }
}
