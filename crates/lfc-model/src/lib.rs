//! `lfc-model` — a deterministic-interleaving model checker and
//! linearizability fuzzer for the lock-free composition stack (a hand-rolled
//! mini-loom: the container image has no crates.io, and loom in any case
//! pins the SeqCst order to the execution interleaving, which cannot
//! reproduce the class of bug this crate exists to catch).
//!
//! # How it plugs in
//!
//! `lfc-runtime`, `lfc-dcas`, `lfc-hazard` and `lfc-structures` route every
//! protocol atomic through a crate-local `sync` facade. In normal builds the
//! facade re-exports `std::sync::atomic` — zero cost, nothing of this crate
//! is reachable. Under `RUSTFLAGS="--cfg lfc_model"` the facade re-exports
//! [`atomic`], whose types fall through to `std` until a model execution is
//! live on the calling thread and become fully instrumented inside one.
//!
//! # What an execution is
//!
//! [`explore`] runs a closure repeatedly. Model threads (spawned with
//! [`thread::spawn`]) are real OS threads serialized by a baton; every
//! instrumented operation is a scheduling point. The scheduler owns all
//! nondeterminism as an explicit choice tape, so any execution replays
//! exactly from its tape ([`replay`]).
//!
//! * **Bounded-exhaustive mode** ([`explore`]): DFS over all choices, cut
//!   by a preemption bound and a DPOR-style sleep-set rule (a sibling
//!   branch already explored sleeps until a conflicting operation wakes
//!   it).
//! * **Random mode** ([`explore_random`]): seeded schedules for state
//!   spaces too large to enumerate; failures are shrunk
//!   ([`shrink_schedule`]) and reported with seed + tape + timeline.
//!
//! # Memory model
//!
//! Two strengths ([`MemoryMode`]):
//!
//! * `Interleaving` — every load sees the newest store: plain sequential
//!   consistency. Right for linearizability fuzzing and cheapest.
//! * `Weak` — loads may return stale stores when coherence, happens-before
//!   (vector clocks) and the SC constraint graph ([`sc`]) all allow it.
//!   This models non-multi-copy-atomic behaviour precisely enough to
//!   rediscover the PR 3 stale-epoch-tag use-after-free while proving the
//!   fixed tagging rule clean under the same bound — see
//!   `tests/stale_tag.rs`.
//!
//! Reclamation bugs surface as real detections, not crashes: under a model
//! execution `lfc-alloc` quarantines freed blocks (kept mapped until the
//! execution ends), and any instrumented access to a quarantined address
//! reports a use-after-free with a replayable schedule.
//!
//! # Scope and simplifications
//!
//! * Modification order equals execution order; RMWs always read the
//!   newest store; failed weak CASes are not spuriously failed.
//!   Non-atomic data is not instrumented (keep model workloads on `Copy`
//!   payloads).
//! * Only `SeqCst` fences are modelled (the instrumented crates use no
//!   weaker fences).
//! * SC fences are totally ordered by execution order; SC *operations* keep
//!   an explorable order via the constraint graph. A fence executed after a
//!   load cannot retroactively constrain it — a documented
//!   over-approximation on an edge no audited protocol relies on.
//! * Fences propagate *write* visibility (C++17 \[atomics.order\] p6) but
//!   not read-read coherence: CoRR holds through happens-before
//!   (release/acquire, spawn/join, program order) as C++17 requires, while
//!   the C++20/P0668 read-before-fence strengthening is deliberately not
//!   modelled — the repo's ordering audit reasons in the C11/C++17 model,
//!   and the stale-tag bug class lives exactly in that gap.
//! * Descriptor-pool recycling (lfc-dcas) is per-thread reuse, not a
//!   free: descriptor UAFs are out of the quarantine's reach (they are
//!   covered by the protocol tests instead).

#![warn(missing_docs)]

pub mod atomic;
mod clock;
mod explore;
mod mem;
pub mod rt;
pub mod sc;
mod sched;
pub mod thread;

pub use clock::MAX_MODEL_THREADS;
pub use explore::{
    explore, explore_random, render_timeline, replay, shrink_schedule, ExploreOpts, ExploreReport,
    FailureReport, FuzzOpts,
};
pub use mem::MemoryMode;
pub use sched::{Choice, FailureKind, TraceEv};

#[cfg(test)]
mod tests {
    use super::atomic::{fence, AtomicUsize, Ordering};
    use super::*;
    use std::sync::Arc;

    fn fails(report: &ExploreReport) -> bool {
        report.failure.is_some()
    }

    #[test]
    fn passthrough_outside_executions() {
        let a = AtomicUsize::new(1);
        a.store(5, Ordering::Release);
        assert_eq!(a.load(Ordering::Acquire), 5);
        assert_eq!(a.fetch_add(2, Ordering::AcqRel), 5);
        assert_eq!(a.swap(9, Ordering::SeqCst), 7);
        assert_eq!(
            a.compare_exchange(9, 11, Ordering::SeqCst, Ordering::SeqCst),
            Ok(9)
        );
        fence(Ordering::SeqCst);
        super::atomic::spin_loop();
        super::atomic::yield_now();
    }

    #[test]
    fn lost_update_found_and_atomic_rmw_clean() {
        // Two threads doing load;store increments race; fetch_add does not.
        let racy = explore(ExploreOpts::default(), || {
            let a = Arc::new(AtomicUsize::new(0));
            let t: Vec<_> = (0..2)
                .map(|_| {
                    let a = a.clone();
                    thread::spawn(move || {
                        let v = a.load(Ordering::SeqCst);
                        a.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in t {
                h.join();
            }
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(fails(&racy), "the lost-update interleaving must be found");
        assert!(
            matches!(racy.failure.as_ref().unwrap().kind, FailureKind::Panic(_)),
            "surfaced as the assertion panic"
        );

        let atomic = explore(ExploreOpts::default(), || {
            let a = Arc::new(AtomicUsize::new(0));
            let t: Vec<_> = (0..2)
                .map(|_| {
                    let a = a.clone();
                    thread::spawn(move || {
                        a.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in t {
                h.join();
            }
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
        assert!(!fails(&atomic), "fetch_add increments never lose updates");
        assert!(atomic.complete, "tiny DFS should exhaust");
    }

    /// Store-buffering litmus (the Dekker core): with SeqCst accesses both
    /// threads cannot read 0 — the SC constraint graph must refuse the
    /// second stale read. With Release/Acquire the weak outcome is real and
    /// must be found.
    #[test]
    fn store_buffer_litmus_respects_seq_cst() {
        let run = |store_ord: Ordering, load_ord: Ordering| {
            explore(
                ExploreOpts {
                    memory: MemoryMode::Weak,
                    ..ExploreOpts::default()
                },
                move || {
                    let x = Arc::new(AtomicUsize::new(0));
                    let y = Arc::new(AtomicUsize::new(0));
                    let (x1, y1) = (x.clone(), y.clone());
                    let r1 = Arc::new(AtomicUsize::new(9));
                    let r2 = Arc::new(AtomicUsize::new(9));
                    let (r1c, r2c) = (r1.clone(), r2.clone());
                    let a = thread::spawn(move || {
                        x1.store(1, store_ord);
                        r1c.store(y1.load(load_ord), Ordering::Relaxed);
                    });
                    let (x2, y2) = (x.clone(), y.clone());
                    let b = thread::spawn(move || {
                        y2.store(1, store_ord);
                        r2c.store(x2.load(load_ord), Ordering::Relaxed);
                    });
                    a.join();
                    b.join();
                    let (v1, v2) = (r1.load(Ordering::Relaxed), r2.load(Ordering::Relaxed));
                    assert!(
                        !(v1 == 0 && v2 == 0),
                        "store-buffering outcome r1=r2=0 observed"
                    );
                },
            )
        };
        let sc = run(Ordering::SeqCst, Ordering::SeqCst);
        assert!(!fails(&sc), "SeqCst forbids r1=r2=0: {:?}", sc.failure);
        let weak = run(Ordering::Release, Ordering::Acquire);
        assert!(fails(&weak), "release/acquire permits r1=r2=0");
    }

    /// Message passing: the data write must be visible once the
    /// release-stored flag is acquire-loaded; with Relaxed the stale data
    /// read must be found.
    #[test]
    fn message_passing_litmus() {
        let run = |store_ord: Ordering, load_ord: Ordering| {
            explore(
                ExploreOpts {
                    memory: MemoryMode::Weak,
                    ..ExploreOpts::default()
                },
                move || {
                    let data = Arc::new(AtomicUsize::new(0));
                    let flag = Arc::new(AtomicUsize::new(0));
                    let (d1, f1) = (data.clone(), flag.clone());
                    let w = thread::spawn(move || {
                        d1.store(42, Ordering::Relaxed);
                        f1.store(1, store_ord);
                    });
                    let (d2, f2) = (data.clone(), flag.clone());
                    let r = thread::spawn(move || {
                        if f2.load(load_ord) == 1 {
                            assert_eq!(d2.load(Ordering::Relaxed), 42, "stale data after flag");
                        }
                    });
                    w.join();
                    r.join();
                },
            )
        };
        let ra = run(Ordering::Release, Ordering::Acquire);
        assert!(
            !fails(&ra),
            "release/acquire forbids stale data: {:?}",
            ra.failure
        );
        let rl = run(Ordering::Relaxed, Ordering::Relaxed);
        assert!(fails(&rl), "relaxed flag permits stale data");
    }

    /// The SC-fence Dekker (the shape `lfc-hazard`'s scan protocol uses):
    /// plain stores ordered by SeqCst fences on both sides must still
    /// forbid the both-miss outcome.
    #[test]
    fn fence_dekker_litmus() {
        let report = explore(
            ExploreOpts {
                memory: MemoryMode::Weak,
                ..ExploreOpts::default()
            },
            || {
                let x = Arc::new(AtomicUsize::new(0));
                let y = Arc::new(AtomicUsize::new(0));
                let r1 = Arc::new(AtomicUsize::new(9));
                let r2 = Arc::new(AtomicUsize::new(9));
                let (x1, y1, r1c) = (x.clone(), y.clone(), r1.clone());
                let a = thread::spawn(move || {
                    x1.store(1, Ordering::Relaxed);
                    fence(Ordering::SeqCst);
                    r1c.store(y1.load(Ordering::Relaxed), Ordering::Relaxed);
                });
                let (x2, y2, r2c) = (x.clone(), y.clone(), r2.clone());
                let b = thread::spawn(move || {
                    y2.store(1, Ordering::Relaxed);
                    fence(Ordering::SeqCst);
                    r2c.store(x2.load(Ordering::Relaxed), Ordering::Relaxed);
                });
                a.join();
                b.join();
                assert!(
                    !(r1.load(Ordering::Relaxed) == 0 && r2.load(Ordering::Relaxed) == 0),
                    "fence Dekker violated"
                );
            },
        );
        assert!(
            !fails(&report),
            "SC fences forbid both-miss: {:?}",
            report.failure
        );
    }

    /// Read-read coherence across threads (CoRR + happens-before): once a
    /// read of the new value happens-before you (here via release/acquire
    /// on a side channel), you may not read the older value — for ANY
    /// orderings on the data location. The read-view propagation enforces
    /// this; without it weak mode would admit C11-impossible schedules.
    #[test]
    fn corr_litmus_no_time_travel_after_observed_read() {
        let report = explore(
            ExploreOpts {
                memory: MemoryMode::Weak,
                ..ExploreOpts::default()
            },
            || {
                let x = Arc::new(AtomicUsize::new(0));
                let rr = Arc::new(AtomicUsize::new(0));
                let f = Arc::new(AtomicUsize::new(0));
                let x0 = x.clone();
                let w = thread::spawn(move || {
                    x0.store(1, Ordering::Relaxed);
                });
                let (x1, rr1, f1) = (x.clone(), rr.clone(), f.clone());
                let t1 = thread::spawn(move || {
                    rr1.store(x1.load(Ordering::Relaxed), Ordering::Relaxed);
                    f1.store(1, Ordering::Release);
                });
                let (x2, rr2, f2) = (x.clone(), rr.clone(), f.clone());
                let t2 = thread::spawn(move || {
                    if f2.load(Ordering::Acquire) == 1 && rr2.load(Ordering::Relaxed) == 1 {
                        assert_eq!(
                            x2.load(Ordering::Relaxed),
                            1,
                            "CoRR violated: x read 0 after an observed read of 1"
                        );
                    }
                });
                w.join();
                t1.join();
                t2.join();
            },
        );
        assert!(
            report.failure.is_none(),
            "read-read coherence must hold: {:?}",
            report.failure
        );
    }

    #[test]
    fn weak_mode_finds_stale_sc_read_when_consistent() {
        // A single writer bumps a SeqCst counter; a reader (no fences, no
        // other constraints) may legally observe the old value in weak mode
        // — the staleness the epoch layer's scan must tolerate. The DFS
        // must therefore find the branch where it does.
        let report = explore(
            ExploreOpts {
                memory: MemoryMode::Weak,
                ..ExploreOpts::default()
            },
            || {
                let c = Arc::new(AtomicUsize::new(0));
                let c1 = c.clone();
                let w = thread::spawn(move || {
                    c1.fetch_add(1, Ordering::SeqCst);
                });
                let c2 = c.clone();
                let r = thread::spawn(move || {
                    // In some explored execution the RMW precedes this load
                    // in wall-clock order yet the load still returns 0.
                    assert_eq!(c2.load(Ordering::SeqCst), 1, "stale read found");
                });
                w.join();
                r.join();
            },
        );
        assert!(
            fails(&report),
            "a schedule with the stale/early read exists"
        );
    }

    #[test]
    fn replay_reproduces_failure() {
        let body = || {
            let a = Arc::new(AtomicUsize::new(0));
            let a1 = a.clone();
            let t = thread::spawn(move || {
                let v = a1.load(Ordering::SeqCst);
                a1.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            t.join();
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        };
        let report = explore(ExploreOpts::default(), body);
        let failure = report.failure.expect("lost update must be found");
        let replayed = replay(
            &failure.schedule,
            MemoryMode::Interleaving,
            failure.preemption_bound,
            body,
        )
        .expect("replaying the schedule reproduces the failure");
        assert_eq!(
            std::mem::discriminant(&replayed.kind),
            std::mem::discriminant(&failure.kind)
        );
        assert!(!replayed.timeline.is_empty());
    }

    #[test]
    fn random_mode_finds_and_shrinks() {
        let body = || {
            let a = Arc::new(AtomicUsize::new(0));
            let a1 = a.clone();
            let t = thread::spawn(move || {
                let v = a1.load(Ordering::SeqCst);
                a1.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            t.join();
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        };
        let report = explore_random(
            FuzzOpts {
                seed: 7,
                executions: 500,
                ..FuzzOpts::default()
            },
            body,
        );
        let failure = report.failure.expect("random mode finds the lost update");
        assert!(failure.seed.is_some());
        // The shrunk schedule still replays to the same failure.
        assert!(replay(
            &failure.schedule,
            MemoryMode::Interleaving,
            failure.preemption_bound,
            body
        )
        .is_some());
    }

    #[test]
    fn spin_yield_terminates_handshake() {
        // A spin-wait on a flag set by the other thread must terminate
        // under DFS thanks to the yield rule (no livelocked branches).
        let report = explore(ExploreOpts::default(), || {
            let f = Arc::new(AtomicUsize::new(0));
            let f1 = f.clone();
            let t = thread::spawn(move || {
                f1.store(1, Ordering::Release);
            });
            while f.load(Ordering::Acquire) == 0 {
                atomic::spin_loop();
            }
            t.join();
        });
        assert!(!fails(&report), "{:?}", report.failure);
        assert!(report.complete);
    }

    #[test]
    fn timeline_renders_aligned_columns() {
        let trace = vec![
            TraceEv {
                tid: 0,
                text: "store[SeqCst] a0 = 0x1".into(),
            },
            TraceEv {
                tid: 1,
                text: "load[SeqCst] a0 -> 0x1".into(),
            },
        ];
        let s = render_timeline(&trace, 2);
        assert!(s.contains("T0"));
        assert!(s.contains("T1"));
        assert!(s.lines().count() >= 3);
        let header_cols = s.lines().next().unwrap().matches('|').count();
        assert_eq!(header_cols, 2);
    }
}
