//! Fixed-size vector clocks tracking happens-before between model threads.

/// Maximum number of threads in one model execution (root + spawned).
pub const MAX_MODEL_THREADS: usize = 8;

/// A vector clock over the model-thread slots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VClock(pub [u32; MAX_MODEL_THREADS]);

impl VClock {
    /// The zero clock (happens-before everything).
    pub const ZERO: VClock = VClock([0; MAX_MODEL_THREADS]);

    /// Pointwise maximum (join) with `other`.
    #[inline]
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Advance this thread's own component, returning the new timestamp.
    #[inline]
    pub fn tick(&mut self, tid: usize) -> u32 {
        self.0[tid] += 1;
        self.0[tid]
    }

    /// Whether the event `(tid, ts)` happens-before the state this clock
    /// summarizes (the event's timestamp is covered by the clock).
    #[inline]
    pub fn covers(&self, tid: usize, ts: u32) -> bool {
        self.0[tid] >= ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock([1, 5, 0, 0, 0, 0, 0, 0]);
        let b = VClock([3, 2, 4, 0, 0, 0, 0, 0]);
        a.join(&b);
        assert_eq!(a.0[..3], [3, 5, 4]);
    }

    #[test]
    fn tick_and_covers() {
        let mut c = VClock::ZERO;
        let t = c.tick(2);
        assert_eq!(t, 1);
        assert!(c.covers(2, 1));
        assert!(!c.covers(2, 2));
        assert!(c.covers(0, 0), "zero timestamps are always covered");
    }
}
