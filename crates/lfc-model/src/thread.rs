//! Model threads: spawned inside a model execution, scheduled
//! cooperatively, torn down through the registered thread epilogue so the
//! instrumented crates' thread-local state is drained *while the thread is
//! still scheduled* (TLS destructors would otherwise perform instrumented
//! operations after the scheduler stopped tracking the thread).

use crate::rt;
use crate::sched::{self, FailureKind};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle to a spawned model thread.
pub struct JoinHandle {
    os: Option<std::thread::JoinHandle<()>>,
    tid: usize,
}

impl JoinHandle {
    /// Model thread id (for reading traces).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Wait for the thread. A panic inside the thread was already recorded
    /// as the execution's failure; join itself never panics for it.
    pub fn join(mut self) {
        let (exec, me) = sched::current().expect("JoinHandle::join outside a model execution");
        exec.join_point(me, self.tid);
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
    }
}

impl Drop for JoinHandle {
    fn drop(&mut self) {
        // A leaked handle is tolerated: the root waits for every registered
        // thread at execution end, and the OS thread is detached here.
        let _ = self.os.take();
    }
}

pub(crate) fn payload_to_string(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Spawn a model thread running `f` under the current execution's
/// scheduler. Must be called from inside a model execution.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let (exec, me) = sched::current().expect("lfc_model::thread::spawn outside a model execution");
    let tid = exec.register_thread(me);
    let exec2 = exec.clone();
    let os = std::thread::Builder::new()
        .name(format!("lfc-model-{tid}"))
        .spawn(move || {
            sched::set_current(exec2.clone(), tid);
            exec2.start_point(tid);
            let r = catch_unwind(AssertUnwindSafe(f));
            match r {
                // An injected kill (`lfc_runtime::fault::abandon`) is a
                // modelled fault, not an execution failure: finish the
                // abandonment while still scheduled (the thread's id and
                // hazard bank become a corpse for survivors to adopt) and
                // let the execution continue — the scenario asserts that
                // helpers complete the orphaned operation.
                Err(p)
                    if payload_to_string(p.as_ref()) == rt::ABANDON_PAYLOAD
                        && rt::run_abandon_epilogue() => {}
                Err(p) => {
                    exec2.stop_failure(FailureKind::Panic(payload_to_string(p.as_ref())));
                    // Drain lfc thread-local state in passthrough mode.
                    rt::run_thread_epilogue();
                }
                Ok(()) => {
                    // Drain lfc thread-local state (hazard retire lists,
                    // allocator magazines, the thread id) while still
                    // scheduled; TLS destructors would run too late.
                    rt::run_thread_epilogue();
                }
            }
            sched::clear_current();
            exec2.thread_finished(tid);
        })
        .expect("spawn model thread");
    JoinHandle { os: Some(os), tid }
}
