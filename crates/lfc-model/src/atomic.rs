//! Virtual atomics: drop-in replacements for `std::sync::atomic` that the
//! instrumented crates' `sync` facades re-export under `--cfg lfc_model`.
//!
//! Outside a model execution every operation falls straight through to the
//! wrapped `std` atomic with the caller's ordering — so code built with the
//! cfg but running normally (test harness setup, threads the model does not
//! manage) behaves identically to a plain build. Inside an execution every
//! operation is a scheduling point routed through the shadow memory in
//! [`crate::sched`].

use crate::sched;
pub use std::sync::atomic::Ordering;

/// Model-aware `AtomicUsize`.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct AtomicUsize {
    inner: std::sync::atomic::AtomicUsize,
}

impl AtomicUsize {
    /// New atomic holding `v`.
    pub const fn new(v: usize) -> Self {
        AtomicUsize {
            inner: std::sync::atomic::AtomicUsize::new(v),
        }
    }

    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    fn seed(&self) -> impl Fn() -> usize + '_ {
        || self.inner.load(Ordering::SeqCst)
    }

    /// As [`std::sync::atomic::AtomicUsize::load`].
    #[inline]
    pub fn load(&self, ord: Ordering) -> usize {
        match sched::load(self.addr(), ord, &self.seed()) {
            Some(v) => v,
            None => self.inner.load(ord),
        }
    }

    /// As [`std::sync::atomic::AtomicUsize::store`].
    #[inline]
    pub fn store(&self, v: usize, ord: Ordering) {
        match sched::store(self.addr(), v, ord, &self.seed(), &|x| {
            self.inner.store(x, Ordering::SeqCst)
        }) {
            Some(()) => {}
            None => self.inner.store(v, ord),
        }
    }

    /// As [`std::sync::atomic::AtomicUsize::swap`].
    #[inline]
    pub fn swap(&self, v: usize, ord: Ordering) -> usize {
        match sched::rmw(self.addr(), ord, &|_| v, &self.seed(), &|x| {
            self.inner.store(x, Ordering::SeqCst)
        }) {
            Some(prev) => prev,
            None => self.inner.swap(v, ord),
        }
    }

    /// As [`std::sync::atomic::AtomicUsize::fetch_add`].
    #[inline]
    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        match sched::rmw(
            self.addr(),
            ord,
            &|p| p.wrapping_add(v),
            &self.seed(),
            &|x| self.inner.store(x, Ordering::SeqCst),
        ) {
            Some(prev) => prev,
            None => self.inner.fetch_add(v, ord),
        }
    }

    /// As [`std::sync::atomic::AtomicUsize::fetch_sub`].
    #[inline]
    pub fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
        match sched::rmw(
            self.addr(),
            ord,
            &|p| p.wrapping_sub(v),
            &self.seed(),
            &|x| self.inner.store(x, Ordering::SeqCst),
        ) {
            Some(prev) => prev,
            None => self.inner.fetch_sub(v, ord),
        }
    }

    /// As [`std::sync::atomic::AtomicUsize::fetch_or`].
    #[inline]
    pub fn fetch_or(&self, v: usize, ord: Ordering) -> usize {
        match sched::rmw(self.addr(), ord, &|p| p | v, &self.seed(), &|x| {
            self.inner.store(x, Ordering::SeqCst)
        }) {
            Some(prev) => prev,
            None => self.inner.fetch_or(v, ord),
        }
    }

    /// As [`std::sync::atomic::AtomicUsize::fetch_max`].
    #[inline]
    pub fn fetch_max(&self, v: usize, ord: Ordering) -> usize {
        match sched::rmw(self.addr(), ord, &|p| p.max(v), &self.seed(), &|x| {
            self.inner.store(x, Ordering::SeqCst)
        }) {
            Some(prev) => prev,
            None => self.inner.fetch_max(v, ord),
        }
    }

    /// As [`std::sync::atomic::AtomicUsize::compare_exchange`].
    #[inline]
    pub fn compare_exchange(
        &self,
        old: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        match sched::cas(
            self.addr(),
            old,
            new,
            success,
            failure,
            &self.seed(),
            &|x| self.inner.store(x, Ordering::SeqCst),
        ) {
            Some(r) => r,
            None => self.inner.compare_exchange(old, new, success, failure),
        }
    }

    /// As [`std::sync::atomic::AtomicUsize::compare_exchange_weak`]. The
    /// model does not inject spurious failures.
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        old: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.compare_exchange(old, new, success, failure)
    }
}

/// Model-aware `AtomicBool`.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct AtomicBool {
    inner: AtomicUsize,
}

impl AtomicBool {
    /// New atomic holding `v`.
    pub const fn new(v: bool) -> Self {
        AtomicBool {
            inner: AtomicUsize::new(v as usize),
        }
    }

    /// As [`std::sync::atomic::AtomicBool::load`].
    #[inline]
    pub fn load(&self, ord: Ordering) -> bool {
        self.inner.load(ord) != 0
    }

    /// As [`std::sync::atomic::AtomicBool::store`].
    #[inline]
    pub fn store(&self, v: bool, ord: Ordering) {
        self.inner.store(v as usize, ord)
    }

    /// As [`std::sync::atomic::AtomicBool::swap`].
    #[inline]
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        self.inner.swap(v as usize, ord) != 0
    }

    /// As [`std::sync::atomic::AtomicBool::compare_exchange`].
    #[inline]
    pub fn compare_exchange(
        &self,
        old: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.inner
            .compare_exchange(old as usize, new as usize, success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }

    /// As [`std::sync::atomic::AtomicBool::compare_exchange_weak`].
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        old: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.compare_exchange(old, new, success, failure)
    }
}

/// Model-aware `AtomicPtr<T>`. Pointers are widened to `usize` in the
/// shadow memory; the real `std` pointer atomic stays authoritative.
#[derive(Debug)]
#[repr(transparent)]
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    /// New atomic holding `p`.
    pub const fn new(p: *mut T) -> Self {
        AtomicPtr {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    fn seed(&self) -> impl Fn() -> usize + '_ {
        || self.inner.load(Ordering::SeqCst) as usize
    }

    /// As [`std::sync::atomic::AtomicPtr::load`].
    #[inline]
    pub fn load(&self, ord: Ordering) -> *mut T {
        match sched::load(self.addr(), ord, &self.seed()) {
            Some(v) => v as *mut T,
            None => self.inner.load(ord),
        }
    }

    /// As [`std::sync::atomic::AtomicPtr::store`].
    #[inline]
    pub fn store(&self, p: *mut T, ord: Ordering) {
        match sched::store(self.addr(), p as usize, ord, &self.seed(), &|x| {
            self.inner.store(x as *mut T, Ordering::SeqCst)
        }) {
            Some(()) => {}
            None => self.inner.store(p, ord),
        }
    }

    /// As [`std::sync::atomic::AtomicPtr::swap`].
    #[inline]
    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        match sched::rmw(self.addr(), ord, &|_| p as usize, &self.seed(), &|x| {
            self.inner.store(x as *mut T, Ordering::SeqCst)
        }) {
            Some(prev) => prev as *mut T,
            None => self.inner.swap(p, ord),
        }
    }

    /// As [`std::sync::atomic::AtomicPtr::compare_exchange`].
    #[inline]
    pub fn compare_exchange(
        &self,
        old: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        match sched::cas(
            self.addr(),
            old as usize,
            new as usize,
            success,
            failure,
            &self.seed(),
            &|x| self.inner.store(x as *mut T, Ordering::SeqCst),
        ) {
            Some(r) => r.map(|v| v as *mut T).map_err(|v| v as *mut T),
            None => self.inner.compare_exchange(old, new, success, failure),
        }
    }

    /// As [`std::sync::atomic::AtomicPtr::compare_exchange_weak`].
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        old: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.compare_exchange(old, new, success, failure)
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        AtomicPtr::new(std::ptr::null_mut())
    }
}

/// Model-aware `fence`. Only `SeqCst` fences are supported inside a model
/// execution (the instrumented crates use no weaker fences).
#[inline]
pub fn fence(ord: Ordering) {
    if sched::fence_or_passthrough(ord) {
        std::sync::atomic::fence(ord);
    }
}

/// Model-aware `std::hint::spin_loop`: inside an execution this is a
/// yield-flavoured scheduling point (the scheduler hands the baton to
/// another runnable thread, which is what a spinning thread is waiting
/// for); outside, the plain hint.
#[inline]
pub fn spin_loop() {
    if sched::yield_point().is_none() {
        std::hint::spin_loop();
    }
}

/// Model-aware `std::thread::yield_now` (same semantics as
/// [`spin_loop`] under the model).
#[inline]
pub fn yield_now() {
    if sched::yield_point().is_none() {
        std::thread::yield_now();
    }
}
