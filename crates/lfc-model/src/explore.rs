//! Exploration drivers: bounded-exhaustive DFS (with preemption bound and
//! sleep-set cut), seeded-random fuzzing for large state spaces, exact
//! replay of a recorded schedule, and greedy schedule shrinking.

use crate::mem::MemoryMode;
use crate::rt;
use crate::sched::{self, Choice, Exec, FailureKind, Policy, RunCfg, Stop, TraceEv};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Serializes explorations process-wide: model executions manipulate the
/// real (process-global) lfc runtime state — thread-id registry, epochs,
/// orphan lists — so two concurrent explorations would corrupt each other's
/// determinism.
static EXPLORE_LOCK: Mutex<()> = Mutex::new(());

/// Options for [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreOpts {
    /// Maximum number of preemptive context switches per execution
    /// (switches away from a still-runnable thread). Bounds the search
    /// space; most real bugs need very few preemptions.
    pub preemption_bound: u32,
    /// Per-execution scheduling-point budget (livelock backstop).
    pub step_budget: u64,
    /// Cap on explored executions; the report says whether the bound was
    /// exhausted before the DFS completed.
    pub max_executions: u64,
    /// Memory-model strength.
    pub memory: MemoryMode,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            preemption_bound: 2,
            step_budget: 20_000,
            max_executions: 50_000,
            memory: MemoryMode::Interleaving,
        }
    }
}

/// Options for [`explore_random`].
#[derive(Clone, Debug)]
pub struct FuzzOpts {
    /// Base seed; execution `i` runs with `seed + i`.
    pub seed: u64,
    /// Number of random executions.
    pub executions: u64,
    /// Per-execution scheduling-point budget.
    pub step_budget: u64,
    /// Memory-model strength.
    pub memory: MemoryMode,
}

impl Default for FuzzOpts {
    fn default() -> Self {
        FuzzOpts {
            seed: 0,
            executions: 200,
            step_budget: 100_000,
            memory: MemoryMode::Interleaving,
        }
    }
}

/// A reproducible failing schedule plus its rendered timeline.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// What went wrong.
    pub kind: FailureKind,
    /// The replayable choice tape: feed to [`replay`] (with the same
    /// closure, memory mode and [`FailureReport::preemption_bound`]) to
    /// reproduce the failure exactly.
    pub schedule: Vec<u32>,
    /// The preemption bound the failing run was recorded under. Tapes only
    /// align when replayed under the same bound: the bound changes which
    /// scheduling points have more than one candidate, i.e. which points
    /// consume a tape entry.
    pub preemption_bound: u32,
    /// Seed of the random execution that found it (random mode only).
    pub seed: Option<u64>,
    /// Aligned per-thread timeline of the failing execution.
    pub timeline: String,
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model failure: {}", self.kind)?;
        if let Some(s) = self.seed {
            writeln!(f, "seed: {s:#x}")?;
        }
        writeln!(
            f,
            "schedule ({} choices): {:?}",
            self.schedule.len(),
            self.schedule
        )?;
        write!(f, "{}", self.timeline)
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct ExploreReport {
    /// Executions actually run.
    pub executions: u64,
    /// Executions cut by the sleep-set rule (counted inside `executions`).
    pub pruned: u64,
    /// Whether the bounded DFS ran to completion (false when
    /// `max_executions` stopped it first; meaningless in random mode).
    pub complete: bool,
    /// The first failure found, if any.
    pub failure: Option<FailureReport>,
}

impl ExploreReport {
    /// Panic with the failure report if one was found (test helper).
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!("{f}");
        }
    }
}

pub(crate) struct RunOutcome {
    pub stop: Option<Stop>,
    pub record: Vec<Choice>,
    pub trace: Vec<TraceEv>,
    pub threads: usize,
}

fn run_one(cfg: RunCfg, forced: Vec<u32>, f: &dyn Fn()) -> RunOutcome {
    let exec = Exec::new(cfg, forced);
    exec.register_root();
    sched::set_current(exec.clone(), 0);
    let r = catch_unwind(AssertUnwindSafe(f));
    if let Err(p) = &r {
        exec.stop_failure(FailureKind::Panic(crate::thread::payload_to_string(
            p.as_ref(),
        )));
    }
    // Drain this thread's lfc state (hazard lists, magazines, thread id)
    // while still scheduled; post-failure this runs in passthrough mode.
    rt::run_thread_epilogue();
    sched::clear_current();
    exec.thread_finished(0);
    exec.wait_all_finished();
    let mut st = exec.lock();
    let quarantined = std::mem::take(&mut st.mem.quarantine);
    let outcome = RunOutcome {
        stop: st.stop.clone(),
        record: std::mem::take(&mut st.tape.record),
        trace: std::mem::take(&mut st.trace),
        threads: st.thread_count(),
    };
    drop(st);
    drop(exec);
    // Release the quarantine: every block was logically freed during the
    // execution and only kept mapped for UAF detection. The map is keyed
    // by base address, so each block is released exactly once even if the
    // execution double-freed it (reported as a DoubleFree failure).
    for (ptr, (size, align)) in quarantined {
        // Safety: recorded by `rt::quarantine_block` from a live allocation
        // with exactly this layout; the model is the sole remaining owner.
        unsafe {
            std::alloc::dealloc(
                ptr as *mut u8,
                std::alloc::Layout::from_size_align(size, align).expect("valid layout"),
            )
        };
    }
    outcome
}

/// The choice tape (chosen values) of a recorded run.
fn chosen(record: &[Choice]) -> Vec<u32> {
    record.iter().map(|c| c.chosen).collect()
}

/// Next DFS tape after `record`, or `None` when the search is exhausted.
fn next_tape(record: &[Choice]) -> Option<Vec<u32>> {
    for i in (0..record.len()).rev() {
        if record[i].chosen + 1 < record[i].arity {
            let mut f: Vec<u32> = record[..i].iter().map(|c| c.chosen).collect();
            f.push(record[i].chosen + 1);
            return Some(f);
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn failure_report(
    kind: FailureKind,
    schedule: Vec<u32>,
    seed: Option<u64>,
    memory: MemoryMode,
    step_budget: u64,
    preemption_bound: u32,
    f: &dyn Fn(),
) -> FailureReport {
    // Re-run the exact schedule with tracing on to render the timeline.
    // The preemption bound must match the recording run: it decides which
    // scheduling points have arity > 1 and therefore consume tape entries.
    let cfg = RunCfg {
        policy: Policy::Dfs,
        seed: 0,
        mem: memory,
        preemption_bound,
        step_budget,
        trace: true,
    };
    let out = run_one(cfg, schedule.clone(), f);
    debug_assert!(
        out.stop.is_some(),
        "replaying a failing tape under its own bound must reproduce a stop"
    );
    FailureReport {
        kind,
        schedule,
        preemption_bound,
        seed,
        timeline: render_timeline(&out.trace, out.threads),
    }
}

/// Bounded-exhaustive exploration of `f` under the scheduler: DFS over
/// every scheduling (and, in weak mode, read-candidate) choice, cut by the
/// preemption bound and the sleep-set rule. `f` runs once per execution
/// and must be deterministic up to the controlled choices.
pub fn explore(opts: ExploreOpts, f: impl Fn()) -> ExploreReport {
    let _g = EXPLORE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    explore_inner(opts, &f)
}

fn explore_inner(opts: ExploreOpts, f: &dyn Fn()) -> ExploreReport {
    let mut forced = Vec::new();
    let mut executions = 0;
    let mut pruned = 0;
    loop {
        let cfg = RunCfg {
            policy: Policy::Dfs,
            seed: 0,
            mem: opts.memory,
            preemption_bound: opts.preemption_bound,
            step_budget: opts.step_budget,
            trace: false,
        };
        let out = run_one(cfg, forced, f);
        executions += 1;
        match &out.stop {
            Some(Stop::Failure(kind)) => {
                let schedule = chosen(&out.record);
                return ExploreReport {
                    executions,
                    pruned,
                    complete: false,
                    failure: Some(failure_report(
                        kind.clone(),
                        schedule,
                        None,
                        opts.memory,
                        opts.step_budget,
                        opts.preemption_bound,
                        f,
                    )),
                };
            }
            Some(Stop::Pruned) => pruned += 1,
            None => {}
        }
        match next_tape(&out.record) {
            Some(next) if executions < opts.max_executions => forced = next,
            Some(_) => {
                return ExploreReport {
                    executions,
                    pruned,
                    complete: false,
                    failure: None,
                }
            }
            None => {
                return ExploreReport {
                    executions,
                    pruned,
                    complete: true,
                    failure: None,
                }
            }
        }
    }
}

/// Seeded-random exploration for state spaces too large to enumerate.
/// Execution `i` uses seed `opts.seed + i`; a failure reports both the
/// replayable schedule and the seed, after greedy shrinking.
pub fn explore_random(opts: FuzzOpts, f: impl Fn()) -> ExploreReport {
    let _g = EXPLORE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut executions = 0;
    for i in 0..opts.executions {
        let seed = opts.seed.wrapping_add(i);
        let cfg = RunCfg {
            policy: Policy::Random,
            seed,
            mem: opts.memory,
            preemption_bound: u32::MAX,
            step_budget: opts.step_budget,
            trace: false,
        };
        let out = run_one(cfg, Vec::new(), &f);
        executions += 1;
        if let Some(Stop::Failure(kind)) = &out.stop {
            let schedule = shrink_inner(
                chosen(&out.record),
                kind,
                opts.memory,
                opts.step_budget,
                u32::MAX,
                400,
                &f,
            );
            return ExploreReport {
                executions,
                pruned: 0,
                complete: false,
                failure: Some(failure_report(
                    kind.clone(),
                    schedule,
                    Some(seed),
                    opts.memory,
                    opts.step_budget,
                    u32::MAX,
                    &f,
                )),
            };
        }
    }
    ExploreReport {
        executions,
        pruned: 0,
        complete: false,
        failure: None,
    }
}

/// Replay a schedule recorded by a previous exploration (from a
/// [`FailureReport`] or a CI artifact) and return the failure it
/// reproduces, if any. `preemption_bound` must be the bound the schedule
/// was recorded under ([`FailureReport::preemption_bound`]) — tapes only
/// align under the same bound.
pub fn replay(
    schedule: &[u32],
    memory: MemoryMode,
    preemption_bound: u32,
    f: impl Fn(),
) -> Option<FailureReport> {
    let _g = EXPLORE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = RunCfg {
        policy: Policy::Dfs,
        seed: 0,
        mem: memory,
        preemption_bound,
        step_budget: 1_000_000,
        trace: false,
    };
    let out = run_one(cfg, schedule.to_vec(), &f);
    match out.stop {
        Some(Stop::Failure(kind)) => Some(failure_report(
            kind,
            chosen(&out.record),
            None,
            memory,
            1_000_000,
            preemption_bound,
            &f,
        )),
        _ => None,
    }
}

/// Greedily shrink a failing schedule: repeatedly try zeroing a choice and
/// truncating the suffix (the default policy fills the rest); keep any
/// variant that still fails with the same kind of failure. The result is
/// typically a schedule with the minimal number of forced context
/// switches.
pub fn shrink_schedule(
    schedule: Vec<u32>,
    kind: &FailureKind,
    memory: MemoryMode,
    preemption_bound: u32,
    f: impl Fn(),
) -> Vec<u32> {
    let _g = EXPLORE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    shrink_inner(schedule, kind, memory, 1_000_000, preemption_bound, 400, &f)
}

#[allow(clippy::too_many_arguments)]
fn shrink_inner(
    mut best: Vec<u32>,
    kind: &FailureKind,
    memory: MemoryMode,
    step_budget: u64,
    preemption_bound: u32,
    mut budget: u32,
    f: &dyn Fn(),
) -> Vec<u32> {
    let same_kind = |a: &FailureKind| std::mem::discriminant(a) == std::mem::discriminant(kind);
    let try_tape = |tape: Vec<u32>, budget: &mut u32| -> Option<Vec<u32>> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let cfg = RunCfg {
            policy: Policy::Dfs,
            seed: 0,
            mem: memory,
            preemption_bound,
            step_budget,
            trace: false,
        };
        let out = run_one(cfg, tape, f);
        match out.stop {
            Some(Stop::Failure(k)) if same_kind(&k) => Some(chosen(&out.record)),
            _ => None,
        }
    };
    loop {
        let mut improved = false;
        for i in (0..best.len()).rev() {
            let cand: Vec<u32> = if best[i] == 0 {
                best[..i].to_vec()
            } else {
                let mut c = best[..=i].to_vec();
                c[i] = 0;
                c
            };
            if cand.len() >= best.len() && cand == best {
                continue;
            }
            if let Some(new) = try_tape(cand, &mut budget) {
                if new.len() < best.len()
                    || new.iter().filter(|&&x| x != 0).count()
                        < best.iter().filter(|&&x| x != 0).count()
                {
                    best = new;
                    improved = true;
                    break;
                }
            }
            if budget == 0 {
                return best;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Render a recorded trace as an aligned per-thread timeline: one column
/// per model thread, one row per performed operation.
///
/// Deliberately independent of `lfc_linear::render_history` (same visual
/// idea, different row model — trace events vs timed history entries):
/// lfc-model sits below every other crate so the facades can depend on it
/// without dragging further dependencies into each build, and keeping it
/// dependency-free outweighs sharing ~30 lines of column layout.
pub fn render_timeline(trace: &[TraceEv], threads: usize) -> String {
    let threads = threads.max(1);
    let mut width = vec![8usize; threads];
    for ev in trace {
        width[ev.tid] = width[ev.tid].max(ev.text.len() + 2);
    }
    let mut out = String::new();
    out.push_str("  step ");
    for (t, w) in width.iter().enumerate() {
        out.push_str(&format!("| {:<w$}", format!("T{t}"), w = w));
    }
    out.push('\n');
    const MAX_ROWS: usize = 400;
    let skip = trace.len().saturating_sub(MAX_ROWS);
    if skip > 0 {
        out.push_str(&format!("  … {skip} earlier events elided …\n"));
    }
    for (i, ev) in trace.iter().enumerate().skip(skip) {
        out.push_str(&format!("{:>6} ", i + 1));
        for (t, w) in width.iter().enumerate() {
            if t == ev.tid {
                out.push_str(&format!("| {:<w$}", ev.text, w = w));
            } else {
                out.push_str(&format!("| {:<w$}", "", w = w));
            }
        }
        out.push('\n');
    }
    out
}
