//! Runtime hooks for the instrumented crates (called under
//! `--cfg lfc_model` from `lfc-alloc` and `lfc-runtime`). These are the
//! only upward-facing entry points; they must not assume any lfc crate is
//! present.

use crate::sched;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Whether the calling thread belongs to a live model execution.
pub fn model_active() -> bool {
    sched::execution_active()
}

/// Allocator hook: called by `lfc_alloc::free_block` before releasing a
/// block. Returns `true` when the model takes ownership — the block is
/// *quarantined*: kept mapped until the execution ends so a stale access is
/// defined behaviour the shadow memory can detect (and report as a
/// use-after-free), instead of real UB. Returns `false` outside a model
/// execution (the caller frees normally).
///
/// # Safety
///
/// `ptr` must be a live allocation of `size` bytes obtained from
/// `std::alloc::alloc` with layout `(size, align)`, and the caller must not
/// touch it again after a `true` return.
pub unsafe fn quarantine_block(ptr: *mut u8, size: usize, align: usize) -> bool {
    let Some((exec, _)) = sched::current() else {
        return false;
    };
    exec.quarantine(ptr as usize, size, align);
    true
}

static EPILOGUE: AtomicUsize = AtomicUsize::new(0);

/// Register the per-thread teardown the model runs at the end of every
/// model thread (and of the root closure): `lfc-runtime` registers its
/// `detach_thread` here the first time any thread claims an id, so hazard
/// retire lists and allocator magazines are drained *while the thread is
/// still scheduled* rather than from TLS destructors the scheduler cannot
/// see. Idempotent; last registration wins.
pub fn register_thread_epilogue(f: fn()) {
    EPILOGUE.store(f as usize, Ordering::Release);
}

/// Run the registered epilogue, if any.
pub(crate) fn run_thread_epilogue() {
    let p = EPILOGUE.load(Ordering::Acquire);
    if p != 0 {
        // Safety: only ever stored from a `fn()` in register_thread_epilogue.
        let f: fn() = unsafe { std::mem::transmute::<usize, fn()>(p) };
        f();
    }
}

/// Panic payload `lfc_runtime::fault::abandon` unwinds with. Duplicated
/// from `lfc_runtime::fault::ABANDON_PAYLOAD` (this crate sits *below*
/// lfc-runtime in the dependency graph and cannot import it); the two
/// strings must stay identical — `lfc-runtime`'s fault tests assert the
/// round trip.
pub const ABANDON_PAYLOAD: &str = "lfc: operation abandoned (injected thread death)";

static ABANDON_EPILOGUE: AtomicUsize = AtomicUsize::new(0);

/// Register the abandonment finisher (`lfc_runtime::fault`'s
/// `complete_abandonment`): runs on a model thread that unwound with
/// [`ABANDON_PAYLOAD`], while the thread is still scheduled, parking its
/// id/bank as a corpse instead of releasing them. Registered whenever the
/// fault layer is armed under `--cfg lfc_model`.
pub fn register_abandon_epilogue(f: fn()) {
    ABANDON_EPILOGUE.store(f as usize, Ordering::Release);
}

/// Run the registered abandonment finisher. Returns `false` when none was
/// registered (the caller then treats the unwind as an ordinary panic).
pub(crate) fn run_abandon_epilogue() -> bool {
    let p = ABANDON_EPILOGUE.load(Ordering::Acquire);
    if p == 0 {
        return false;
    }
    // Safety: only ever stored from a `fn()` in register_abandon_epilogue.
    let f: fn() = unsafe { std::mem::transmute::<usize, fn()>(p) };
    f();
    true
}
