//! Shadow memory: per-location store histories, visibility candidates, and
//! the freed-block quarantine.
//!
//! Every instrumented atomic location gets a modification-order list of
//! stores, each stamped with its writer, the writer's timestamp, an
//! optional release clock (for acquire synchronization) and an optional
//! [`crate::sc::ScNode`]. A load's admissible values are the suffix of the
//! modification order starting at the newest store that already
//! happens-before the reader (older stores are hidden by coherence); under
//! [`MemoryMode::Weak`] the scheduler branches over that suffix, filtered
//! by the SC constraint graph.

use crate::clock::VClock;
use crate::sc::ScNode;
use std::collections::HashMap;

/// Per-location minimum-visible store indices, propagated along exactly
/// the edges vector clocks propagate on (program order, release→acquire,
/// SC fences, spawn/join). This is what enforces C11 read-read coherence
/// (CoRR): once a read of store `i` happens-before you, you may not read
/// anything older than `i`.
pub type View = HashMap<usize, u32>;

/// Join `other` into `view` (pointwise maximum); reports whether `view`
/// changed (used to invalidate release snapshots).
pub fn view_join(view: &mut View, other: &View) -> bool {
    let mut changed = false;
    for (&addr, &idx) in other {
        let e = view.entry(addr).or_insert(0);
        if *e < idx {
            *e = idx;
            changed = true;
        } else if *e == 0 && idx == 0 {
            // Entry was just created at 0: the map changed shape but not
            // any floor; irrelevant for snapshot reuse.
        }
    }
    changed
}

/// Release payload of a store: everything an acquire reader of this store
/// synchronizes with.
#[derive(Clone, Debug)]
pub struct RelState {
    /// The releasing thread's clock at the store.
    pub clock: VClock,
    /// The releasing thread's read-view at the store (CoRR propagation).
    /// Shared: the releaser snapshots its view once and reuses the `Arc`
    /// until the view next changes, so a Release store is O(1) unless the
    /// view moved.
    pub view: std::sync::Arc<View>,
}

/// Memory-model strength of one model run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MemoryMode {
    /// Every load returns the newest store: the model explores thread
    /// interleavings only (sequential consistency). This is the right mode
    /// for linearizability fuzzing — the repo's read-only results are
    /// anchored on SC loads, so SC-interleaving semantics match the
    /// structures' intended real-time behaviour — and it keeps the state
    /// space down.
    #[default]
    Interleaving,
    /// Loads may additionally return *stale* stores whenever coherence,
    /// happens-before and the SC constraint graph all permit it. Required
    /// to reproduce non-multi-copy-atomic behaviours such as the PR 3
    /// stale-epoch-tag bug.
    Weak,
}

/// One store in a location's modification order.
#[derive(Clone, Debug)]
pub struct StoreRec {
    /// Stored value (pointers and bools are widened to `usize`).
    pub val: usize,
    /// Writing model thread (`None` for the pre-execution seed value).
    pub writer: Option<usize>,
    /// The writer's own timestamp at the store (for happens-before tests).
    pub ts: u32,
    /// Release payload: present iff the store had Release semantics (or
    /// continues a release sequence through an RMW).
    pub rel: Option<RelState>,
    /// SC-graph node iff the store was SeqCst.
    pub sc_node: Option<ScNode>,
}

/// One instrumented atomic location.
#[derive(Debug)]
pub struct Loc {
    /// Modification order; never empty (seeded on first touch).
    pub stores: Vec<StoreRec>,
    /// Reader anchors for retroactive SC constraints: `(node, idx)` means
    /// the SC event `node` (an SC load, or an SC fence sequenced before a
    /// load) observed store `idx`. A *later* SC store (or writer-side
    /// fence) to this location must be SC-after every anchor that read an
    /// older store — C11 p4/p5 applied when the store appears after the
    /// read in execution order.
    pub readers: Vec<(ScNode, u32)>,
    /// Small dense id for readable traces.
    pub display_id: u32,
}

impl Loc {
    /// Index of the newest store visible-or-later for a reader — the
    /// largest index whose store happens-before the reader (per `clock`),
    /// maxed with the reader's CoRR floor `own` (its view entry for this
    /// location, which covers its own reads/writes *and* reads by other
    /// threads that happen-before it).
    pub fn visibility_floor(&self, own: usize, clock: &VClock) -> usize {
        let mut hb = 0;
        for (i, s) in self.stores.iter().enumerate().rev() {
            match s.writer {
                None => {
                    hb = i;
                    break;
                }
                Some(w) => {
                    if clock.covers(w, s.ts) {
                        hb = i;
                        break;
                    }
                }
            }
        }
        hb.max(own)
    }

    /// Latest store index.
    pub fn latest(&self) -> usize {
        self.stores.len() - 1
    }
}

/// A block handed to the quarantine instead of the allocator: kept mapped
/// (so stale accesses are defined behaviour and detectable) until the
/// execution ends, then released for real. `(size, align)` of the layout
/// to release it with, keyed by base address.
pub type Quarantine = std::collections::BTreeMap<usize, (usize, usize)>;

/// All shadow memory of one execution.
#[derive(Debug, Default)]
pub struct Mem {
    locs: HashMap<usize, Loc>,
    next_display_id: u32,
    /// Blocks freed during the execution; checked on every atomic access.
    pub quarantine: Quarantine,
}

impl Mem {
    /// The location at `addr`, seeded with `seed` (the real atomic's
    /// current value) on first touch.
    pub fn loc(&mut self, addr: usize, seed: impl FnOnce() -> usize) -> &mut Loc {
        let next_id = &mut self.next_display_id;
        self.locs.entry(addr).or_insert_with(|| {
            let id = *next_id;
            *next_id += 1;
            Loc {
                stores: vec![StoreRec {
                    val: seed(),
                    writer: None,
                    ts: 0,
                    rel: None,
                    sc_node: None,
                }],
                readers: Vec::new(),
                display_id: id,
            }
        })
    }

    /// Read-only lookup of an existing location.
    pub fn peek_loc(&self, addr: usize) -> Option<&Loc> {
        self.locs.get(&addr)
    }

    /// Whether `addr` falls inside a freed (quarantined) block
    /// (`O(log frees)` — this runs on every instrumented access).
    pub fn is_freed(&self, addr: usize) -> bool {
        self.quarantine
            .range(..=addr)
            .next_back()
            .is_some_and(|(&base, &(size, _))| addr < base + size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(val: usize, writer: usize, ts: u32) -> StoreRec {
        StoreRec {
            val,
            writer: Some(writer),
            ts,
            rel: None,
            sc_node: None,
        }
    }

    #[test]
    fn floor_respects_happens_before_and_coherence() {
        let mut m = Mem::default();
        let loc = m.loc(0x1000, || 7);
        loc.stores.push(store(8, 1, 1));
        loc.stores.push(store(9, 2, 1));
        // No view floor and no store happens-before the reader: floor is
        // the seed store, candidates are everything.
        let c0 = VClock::ZERO;
        assert_eq!(loc.visibility_floor(0, &c0), 0);
        // Once thread 1's first event is covered, its store hides the seed.
        let mut c = VClock::ZERO;
        c.0[1] = 1;
        assert_eq!(loc.visibility_floor(0, &c), 1);
        // A CoRR view floor (own or inherited through happens-before)
        // dominates.
        assert_eq!(loc.visibility_floor(2, &c), 2);
    }

    #[test]
    fn view_join_is_pointwise_max_and_reports_changes() {
        let mut a: View = [(1usize, 3u32), (2, 1)].into_iter().collect();
        let b: View = [(2usize, 5u32), (7, 2)].into_iter().collect();
        assert!(view_join(&mut a, &b));
        assert_eq!(a[&1], 3);
        assert_eq!(a[&2], 5);
        assert_eq!(a[&7], 2);
        let same = a.clone();
        assert!(!view_join(&mut a, &same), "self-join changes nothing");
    }

    #[test]
    fn quarantine_hit_detection() {
        let mut m = Mem::default();
        m.quarantine.insert(0x2000, (64, 8));
        m.quarantine.insert(0x3000, (16, 8));
        assert!(m.is_freed(0x2000));
        assert!(m.is_freed(0x203F));
        assert!(!m.is_freed(0x2040));
        assert!(!m.is_freed(0x1FFF));
        assert!(m.is_freed(0x300F));
        assert!(!m.is_freed(0x3010));
    }
}
