//! The unified composition engine: **one** state machine for every composed
//! operation.
//!
//! The seed reproduced the paper's §8 extension ("n operations on n
//! distinct objects") as three hand-duplicated `scas` state machines
//! (`move_one`, `move_keyed`, `move_to_all`) over two disjoint descriptor
//! engines. This module replaces all three with a single engine:
//!
//! * a composition is a nest of **stages**, each owning one entry index;
//!   stage *i* runs its operation (a remove or an insert, keyed or not),
//!   captures the operation's linearization-point CAS triple at its entry,
//!   and invokes stage *i*+1 from inside the capture;
//! * the innermost stage commits every captured entry through
//!   [`lfc_dcas::commit_entries`], where the paper's DCAS is the K=2
//!   specialization of CASN and both share pooled descriptors and the
//!   solo-regime fast path;
//! * a commit failure at entry *k* aborts the stages deeper than *k* and
//!   re-runs the init phase of exactly the operation owning entry *k* — the
//!   generalization of the paper's FIRSTFAILED/SECONDFAILED retry rule.
//!
//! Aliased entries (two linearization points on the **same** memory word —
//! e.g. a stack moved onto itself, or a swap involving a LIFO whose push
//! and pop linearize on one word) are detected generically at capture time
//! and surface as [`MoveOutcome::WouldAlias`] / [`SwapOutcome::WouldAlias`]:
//! a k-word CAS cannot express two CASes on one word.
//!
//! On top of the engine this module ships the compositions the three old
//! machines could not express — [`swap`], [`move_keyed_to_all`],
//! [`move_keyed_to_unkeyed`] — and the public [`Composition`] builder for
//! user-defined chains mixing keyed and unkeyed stages.
//!
//! # Hazard discipline: capture-time promotion (PR 3)
//!
//! Structure traversals are protected by an *operation epoch*
//! ([`lfc_hazard::pin_op`]) rather than per-node hazards, and each nested
//! stage's epoch ends when its operation returns — before the engine is
//! done with the captured entries (`finish` runs after the outermost
//! remove returns, and DCAS/CASN helpers validate their adopted
//! protections against *hazards*, not epochs). The engine therefore
//! **promotes** every captured entry's allocation from epoch protection to
//! a dedicated [`slot::ENTRY0`] hazard slot at capture time — while the
//! capturing operation's epoch still covers it, so the protection is
//! continuous — and releases the slots when the composition resolves.
//! This is also what keeps nested same-role stages from clobbering each
//! other: every entry owns its own slot, so the *n*-th insert of a fan-out
//! can never overwrite the (*n*−1)-th insert's protection.
//!
//! # Ejection and composition (PR 6)
//!
//! The stall-robustness tier ([`lfc_hazard`]'s era/ejection machinery) needs
//! no engine support, for three reasons:
//!
//! * **Nested ops never restart.** [`lfc_hazard::OpGuard::repin_if_ejected`]
//!   refuses at nesting depth > 1, so an ejection observed by a stage that
//!   runs *inside* another stage's capture is deferred: the structure's
//!   retry-head check returns `false` and the op proceeds under the still-
//!   valid old-era protection (an ejection mark does not revoke protection —
//!   the marked slot keeps gating reclamation until the owner acknowledges).
//! * **ACK happens at outermost exit.** The outermost guard's drop stores 0
//!   to the epoch slot, which doubles as the ejection acknowledgement; by
//!   then `finish` has already released the ENTRY promotions.
//! * **Captured words survive ejection.** Promotion moves each captured
//!   entry's allocation to an ENTRY *hazard* slot, and hazards are immune to
//!   ejection — zombie partitioning only bypasses the epoch side of the free
//!   rule, never a named hazard. A composition whose thread is ejected (or
//!   even zombified) mid-commit therefore still holds every captured word.

use crate::{
    InsertCtx, InsertOutcome, KeyedMoveSource, KeyedMoveTarget, LinPoint, MoveOutcome, MoveSource,
    MoveTarget, RemoveCtx, RemoveOutcome, ScasResult,
};
use lfc_alloc::AllocError;
use lfc_dcas::{commit_entries, try_commit_entries, CasnEntry, CasnResult, DAtomic};
use lfc_hazard::{pin, slot, Guard};

pub use lfc_dcas::MAX_ENTRIES;

/// Maximum number of insert targets of a fan-out (`MAX_ENTRIES` minus the
/// remove entry).
pub const MAX_TARGETS: usize = MAX_ENTRIES - 1;

/// The stage that permanently ended a composition, for outcome reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dead {
    /// The remove at this stage found its source empty (or the key absent).
    Empty(usize),
    /// The insert at this stage was permanently rejected (bounded target
    /// full, duplicate key).
    Rejected(usize),
}

/// Shared state of one composition invocation: the captured entries plus
/// the retry bookkeeping the paper keeps in `desc`, `insfailed`, `ltarget`.
///
/// Opaque outside the crate — it appears in [`Stages`]' hidden method
/// signature but can only be constructed and driven by the engine itself.
pub struct Engine {
    g: Guard,
    entries: [CasnEntry; MAX_ENTRIES],
    count: usize,
    /// Total number of stages in this composition's plan.
    plan: usize,
    /// True until some attempt reaches a commit (paper's `insfailed`).
    no_commit: bool,
    aliased: bool,
    /// Entry index whose owning stage must redo its init phase.
    retry_at: Option<usize>,
    dead: Option<Dead>,
    /// Commit failures this composition may still absorb before giving up
    /// (`None` = unbounded, the default). The batched front-end's *direct*
    /// attempts run with a small budget: a contended composition that
    /// burns through it aborts with [`Engine::starved`] set and falls back
    /// to the claim-list group commit instead of fighting the hot words.
    fail_budget: Option<u32>,
    /// Whether the composition aborted because `fail_budget` ran out
    /// (contention starvation), as opposed to a semantic rejection.
    starved: bool,
    /// Commit through [`try_commit_entries`], recording allocation failure
    /// in `oom` instead of panicking (the `try_*` composition entry
    /// points).
    fallible: bool,
    /// A fallible commit failed to allocate; the composition aborted with
    /// nothing changed and the entry point surfaces `Err(AllocError)`.
    oom: bool,
    /// Set by [`Engine::finish`]; an engine dropped without it is
    /// unwinding (panicking element `Clone`, injected abandonment) and
    /// cleans its ENTRY protections in `Drop`.
    finished: bool,
}

impl Engine {
    pub(crate) fn new(plan: usize) -> Engine {
        debug_assert!(
            (2..=MAX_ENTRIES).contains(&plan),
            "compositions span 2..={MAX_ENTRIES} stages"
        );
        debug_assert!(plan <= slot::ENTRY_COUNT);
        Engine {
            g: pin(),
            entries: [CasnEntry::default(); MAX_ENTRIES],
            count: 0,
            plan,
            no_commit: true,
            aliased: false,
            retry_at: None,
            dead: None,
            fail_budget: None,
            starved: false,
            fallible: false,
            oom: false,
            finished: false,
        }
    }

    /// An engine whose commits surface allocation failure through
    /// [`Engine::oom`] instead of panicking (the `try_*` entry points).
    pub(crate) fn new_fallible(plan: usize) -> Engine {
        let mut eng = Engine::new(plan);
        eng.fallible = true;
        eng
    }

    /// Whether a fallible commit aborted on allocation failure.
    pub(crate) fn oom(&self) -> bool {
        self.oom
    }

    /// A budgeted engine for the batched front-end's direct attempts (see
    /// [`Engine::fail_budget`]). Budgeted engines also commit *fallibly*:
    /// the gate's OOM fallback runs direct attempts under exactly the
    /// memory pressure that failed its node allocation, so a descriptor
    /// refill there must surface as [`Engine::oom`] (the caller retries or
    /// falls back) rather than reach the aborting allocator.
    pub(crate) fn new_budgeted(plan: usize, fail_budget: u32) -> Engine {
        let mut eng = Engine::new(plan);
        eng.fail_budget = Some(fail_budget);
        eng.fallible = true;
        eng
    }

    /// Whether the composition aborted on budget exhaustion rather than a
    /// semantic rejection.
    pub(crate) fn starved(&self) -> bool {
        self.starved
    }

    /// Whether the last abort was an aliasing rejection.
    pub(crate) fn was_aliased(&self) -> bool {
        self.aliased
    }

    /// Whether the composition died because the remove at stage `idx`
    /// found its source empty (swap verdict mapping).
    pub(crate) fn empty_at(&self, idx: usize) -> bool {
        self.dead == Some(Dead::Empty(idx))
    }

    /// Record stage `idx`'s linearization point; `false` means the word
    /// aliases an earlier entry and the stage must abort.
    pub(crate) fn capture(&mut self, idx: usize, lp: &LinPoint<'_>) -> bool {
        debug_assert!(idx < self.plan);
        if idx == 0 {
            // A fresh attempt from the outermost stage: nothing has
            // committed yet and no pending retry survives a full redo
            // (paper line M15 generalized).
            self.no_commit = true;
            self.retry_at = None;
        }
        let word = lp.word as *const DAtomic;
        if self.entries[..idx]
            .iter()
            .any(|e| std::ptr::eq(e.ptr, word))
        {
            self.aliased = true;
            return false;
        }
        self.entries[idx] = CasnEntry {
            ptr: word,
            old: lp.old,
            new: lp.new,
            hp: lp.hp,
        };
        self.count = idx + 1;
        // Capture-time promotion (module docs): the capturing operation's
        // epoch (or, for header words, its borrow) still covers `hp` here,
        // so publishing it in the engine-owned slot makes the protection
        // continuous — and the hazard then outlives the nested operations'
        // epochs, which end when they return, before the commit's
        // descriptor teardown and `finish` run. `promote` (Release) is
        // sufficient: scans sweep epochs before hazards, so a scan that
        // sees the covering epoch exited has acquired this store.
        self.g.promote(slot::ENTRY0 + idx, lp.hp);
        true
    }

    /// Commit every captured entry; returns the innermost stage's
    /// "deeper succeeded" verdict.
    pub(crate) fn commit(&mut self) -> bool {
        debug_assert_eq!(self.count, self.plan);
        self.no_commit = false;
        // Safety: every entry was captured by `capture` from a live
        // `&DAtomic` whose allocation the owning operation's borrows and
        // hazards (plus the ENTRY* handoff slots) keep alive through this
        // call, and `capture` rejects aliased words, so the entries are
        // pairwise distinct.
        let r = if self.fallible {
            match unsafe { try_commit_entries(&self.entries[..self.count], &self.g) } {
                Ok(r) => r,
                Err(_) => {
                    // Descriptor/RDCSS allocation failed with no word left
                    // changed. `retry_at` stays `None` and `no_commit` is
                    // false, so `resolve` aborts every stage and the entry
                    // point reports `Err(AllocError)`.
                    self.oom = true;
                    return false;
                }
            }
        } else {
            unsafe { commit_entries(&self.entries[..self.count], &self.g) }
        };
        match r {
            CasnResult::Success => true,
            CasnResult::FailedAt(k) => {
                self.retry_at = Some(k);
                false
            }
        }
    }

    /// Seeded-bug support (`model_toggles::SKIP_FLAG_ENTRY`): commit only
    /// the structure entries captured so far — *without* the result-flag
    /// entry the batched front-end relies on for exactly-once execution.
    /// This is the naive handoff protocol: the flag is then published by a
    /// separate CAS after the commit, leaving a window in which a second
    /// drainer re-executes the request and double-commits. Exists only so
    /// the model checker can demonstrate it catches that bug.
    #[cfg(lfc_model)]
    pub(crate) fn commit_without_flag(&mut self) -> bool {
        self.no_commit = false;
        // Safety: same as `commit` — entries `..count` were captured live.
        match unsafe { commit_entries(&self.entries[..self.count], &self.g) } {
            CasnResult::Success => true,
            CasnResult::FailedAt(k) => {
                self.retry_at = Some(k);
                false
            }
        }
    }

    /// Translate a stage's "deeper" verdict into the `scas` result for the
    /// operation owning entry `idx` — the single copy of the
    /// FIRSTFAILED/SECONDFAILED generalization.
    fn resolve(&mut self, idx: usize, deeper_ok: bool) -> ScasResult {
        if deeper_ok {
            return ScasResult::Success;
        }
        if self.no_commit || self.aliased {
            // A deeper stage failed before any commit ran (or the
            // composition would alias): permanently abort.
            return ScasResult::Abort;
        }
        match self.retry_at {
            // Our captured CAS failed: redo this stage's init phase.
            Some(k) if k == idx => {
                // Budgeted attempt (batched front-end): each commit failure
                // spends one unit; exhaustion converts the retry into a
                // starvation abort that the caller routes to the group
                // commit. `retry_at` stays set so the outer stages observe
                // a post-commit abort, not a fresh-attempt one.
                if let Some(b) = self.fail_budget.as_mut() {
                    if *b == 0 {
                        self.starved = true;
                        return ScasResult::Abort;
                    }
                    *b -= 1;
                }
                self.retry_at = None;
                ScasResult::Fail
            }
            // An outer stage's entry must retry (or the deeper stages hit a
            // permanent rejection after a commit ran): abort this stage.
            _ => ScasResult::Abort,
        }
    }

    /// Release the engine-owned entry protections. The whole plan range is
    /// cleared (not just `count`): a commit failure rewinds `count` while
    /// deeper entries' slots may still hold their last promotion.
    pub(crate) fn finish(&mut self) {
        self.finished = true;
        for i in 0..self.plan {
            self.g.clear(slot::ENTRY0 + i);
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Every entry point calls `finish` on the normal return path, so
        // reaching here without it means the composition is unwinding —
        // most likely out of a user element's panicking `Clone`, or an
        // injected abandonment (`lfc_runtime::fault`). Leaving ENTRY slots
        // published would silently pin their allocations forever.
        if self.finished {
            return;
        }
        if lfc_runtime::fault::thread_is_abandoning() {
            // A corpse's ENTRY protections must persist: helpers completing
            // its announced commit validate against the initiator's hazards
            // (Lemma 6). The whole bank is cleared when the corpse is
            // adopted (`lfc_hazard`'s tid finalizer).
            return;
        }
        for i in 0..self.plan {
            self.g.clear(slot::ENTRY0 + i);
        }
    }
}

/// The remove-side stage context: captures entry `idx`, then runs the rest
/// of the chain (deeper stages and the commit) via `cont`.
pub(crate) struct StageRemoveCtx<'a, F> {
    pub(crate) eng: &'a mut Engine,
    pub(crate) idx: usize,
    pub(crate) cont: F,
}

impl<T, F> RemoveCtx<T> for StageRemoveCtx<'_, F>
where
    F: FnMut(&mut Engine, &T) -> bool,
{
    fn scas(&mut self, lp: LinPoint<'_>, elem: &T) -> ScasResult {
        if !self.eng.capture(self.idx, &lp) {
            return ScasResult::Abort;
        }
        let deeper_ok = (self.cont)(self.eng, elem);
        self.eng.resolve(self.idx, deeper_ok)
    }
}

/// The insert-side stage context.
struct StageInsertCtx<'a, F> {
    eng: &'a mut Engine,
    idx: usize,
    cont: F,
}

impl<F> InsertCtx for StageInsertCtx<'_, F>
where
    F: FnMut(&mut Engine) -> bool,
{
    fn scas(&mut self, lp: LinPoint<'_>) -> ScasResult {
        if !self.eng.capture(self.idx, &lp) {
            return ScasResult::Abort;
        }
        let deeper_ok = (self.cont)(self.eng);
        self.eng.resolve(self.idx, deeper_ok)
    }
}

fn note_insert_outcome(eng: &mut Engine, idx: usize, r: InsertOutcome) -> bool {
    match r {
        InsertOutcome::Inserted => true,
        InsertOutcome::Rejected => {
            // A rejection with no commit run is a *permanent* rejection
            // (bounded target, duplicate key) at the deepest such stage;
            // anything else is retry propagation already tracked by the
            // engine flags.
            if eng.no_commit && !eng.aliased && eng.dead.is_none() {
                eng.dead = Some(Dead::Rejected(idx));
            }
            false
        }
    }
}

/// Drive an unkeyed insert as stage `idx`.
pub(crate) fn run_insert<T, D, F>(eng: &mut Engine, idx: usize, dst: &D, elem: T, cont: F) -> bool
where
    D: MoveTarget<T> + ?Sized,
    F: FnMut(&mut Engine) -> bool,
{
    let r = dst.insert_with(elem, &mut StageInsertCtx { eng, idx, cont });
    note_insert_outcome(eng, idx, r)
}

/// Drive a keyed insert as stage `idx`.
pub(crate) fn run_insert_keyed<K, T, D, F>(
    eng: &mut Engine,
    idx: usize,
    dst: &D,
    key: K,
    elem: T,
    cont: F,
) -> bool
where
    D: KeyedMoveTarget<K, T> + ?Sized,
    F: FnMut(&mut Engine) -> bool,
{
    let r = dst.insert_key_with(key, elem, &mut StageInsertCtx { eng, idx, cont });
    note_insert_outcome(eng, idx, r)
}

/// Drive an *inner* remove as stage `idx` (the outermost remove is driven
/// directly by the composition entry points, which need its
/// [`RemoveOutcome`] for the verdict).
pub(crate) fn run_remove<T, S, F>(eng: &mut Engine, idx: usize, src: &S, cont: F) -> bool
where
    S: MoveSource<T> + ?Sized,
    F: FnMut(&mut Engine, &T) -> bool,
{
    match src.remove_with(&mut StageRemoveCtx { eng, idx, cont }) {
        RemoveOutcome::Removed(_) => true,
        RemoveOutcome::Empty => {
            if eng.dead.is_none() {
                eng.dead = Some(Dead::Empty(idx));
            }
            false
        }
        RemoveOutcome::Aborted => false,
    }
}

/// Map the outermost remove's outcome to a [`MoveOutcome`].
pub(crate) fn move_verdict<T>(eng: &Engine, outcome: RemoveOutcome<T>) -> MoveOutcome {
    match outcome {
        RemoveOutcome::Removed(_) => MoveOutcome::Moved,
        RemoveOutcome::Empty => MoveOutcome::SourceEmpty,
        RemoveOutcome::Aborted => {
            if eng.aliased {
                MoveOutcome::WouldAlias
            } else {
                MoveOutcome::TargetRejected
            }
        }
    }
}

/// Shared epilogue of every composition entry point: release protections,
/// then surface either the allocation failure (fallible engines) or the
/// mapped verdict.
fn conclude<T>(eng: &mut Engine, outcome: RemoveOutcome<T>) -> Result<MoveOutcome, AllocError> {
    eng.finish();
    if eng.oom() {
        return Err(AllocError);
    }
    Ok(move_verdict(eng, outcome))
}

/// `move_one` over the engine: remove at stage 0, insert at stage 1.
pub(crate) fn move_one_impl<T, S, D>(
    src: &S,
    dst: &D,
    fallible: bool,
) -> Result<MoveOutcome, AllocError>
where
    T: Clone,
    S: MoveSource<T> + ?Sized,
    D: MoveTarget<T> + ?Sized,
{
    let mut eng = if fallible {
        Engine::new_fallible(2)
    } else {
        Engine::new(2)
    };
    let outcome = src.remove_with(&mut StageRemoveCtx {
        eng: &mut eng,
        idx: 0,
        cont: |eng: &mut Engine, elem: &T| run_insert(eng, 1, dst, elem.clone(), Engine::commit),
    });
    conclude(&mut eng, outcome)
}

/// `move_keyed` over the engine.
pub(crate) fn move_keyed_impl<K, T, S, D>(
    src: &S,
    key: &K,
    dst: &D,
    fallible: bool,
) -> Result<MoveOutcome, AllocError>
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    let mut eng = if fallible {
        Engine::new_fallible(2)
    } else {
        Engine::new(2)
    };
    let outcome = src.remove_key_with(
        key,
        &mut StageRemoveCtx {
            eng: &mut eng,
            idx: 0,
            cont: |eng: &mut Engine, elem: &T| {
                run_insert_keyed(eng, 1, dst, key.clone(), elem.clone(), Engine::commit)
            },
        },
    );
    conclude(&mut eng, outcome)
}

/// Fan `elem` into every target from stage `idx` on, committing innermost.
pub(crate) fn fan_out<T, D>(eng: &mut Engine, idx: usize, dsts: &[&D], elem: &T) -> bool
where
    T: Clone,
    D: MoveTarget<T> + ?Sized,
{
    match dsts.split_first() {
        None => eng.commit(),
        Some((first, rest)) => {
            run_insert(eng, idx, *first, elem.clone(), move |eng: &mut Engine| {
                fan_out(eng, idx + 1, rest, elem)
            })
        }
    }
}

/// `move_to_all` over the engine.
pub(crate) fn move_to_all_impl<T, S, D>(
    src: &S,
    dsts: &[&D],
    fallible: bool,
) -> Result<MoveOutcome, AllocError>
where
    T: Clone,
    S: MoveSource<T> + ?Sized,
    D: MoveTarget<T> + ?Sized,
{
    assert!(
        !dsts.is_empty() && dsts.len() <= MAX_TARGETS,
        "move_to_all supports 1..={MAX_TARGETS} targets"
    );
    let mut eng = if fallible {
        Engine::new_fallible(1 + dsts.len())
    } else {
        Engine::new(1 + dsts.len())
    };
    let outcome = src.remove_with(&mut StageRemoveCtx {
        eng: &mut eng,
        idx: 0,
        cont: |eng: &mut Engine, elem: &T| fan_out(eng, 1, dsts, elem),
    });
    conclude(&mut eng, outcome)
}

pub(crate) fn fan_out_keyed<K, T, D>(
    eng: &mut Engine,
    idx: usize,
    dsts: &[&D],
    key: &K,
    elem: &T,
) -> bool
where
    K: Clone,
    T: Clone,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    match dsts.split_first() {
        None => eng.commit(),
        Some((first, rest)) => run_insert_keyed(
            eng,
            idx,
            *first,
            key.clone(),
            elem.clone(),
            move |eng: &mut Engine| fan_out_keyed(eng, idx + 1, rest, key, elem),
        ),
    }
}

/// Atomically remove the element stored under `key` in `src` and insert a
/// clone of it — under the same key — into **each** target in `dsts`: the
/// keyed fan-out the old per-shape state machines could not express.
///
/// Returns [`MoveOutcome::SourceEmpty`] when the key is absent,
/// [`MoveOutcome::TargetRejected`] when any target already holds the key
/// (all-or-nothing: the other targets are left untouched).
///
/// # Panics
///
/// Panics if `dsts` is empty or holds more than [`MAX_TARGETS`] targets.
pub fn move_keyed_to_all<K, T, S, D>(src: &S, key: &K, dsts: &[&D]) -> MoveOutcome
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    match move_keyed_to_all_impl(src, key, dsts, false) {
        Ok(o) => o,
        Err(_) => unreachable!("infallible engine cannot report OOM"),
    }
}

/// Fallible [`move_keyed_to_all`]: descriptor allocation failure surfaces
/// as `Err` with nothing changed anywhere.
pub fn try_move_keyed_to_all<K, T, S, D>(
    src: &S,
    key: &K,
    dsts: &[&D],
) -> Result<MoveOutcome, AllocError>
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    move_keyed_to_all_impl(src, key, dsts, true)
}

fn move_keyed_to_all_impl<K, T, S, D>(
    src: &S,
    key: &K,
    dsts: &[&D],
    fallible: bool,
) -> Result<MoveOutcome, AllocError>
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    assert!(
        !dsts.is_empty() && dsts.len() <= MAX_TARGETS,
        "move_keyed_to_all supports 1..={MAX_TARGETS} targets"
    );
    let mut eng = if fallible {
        Engine::new_fallible(1 + dsts.len())
    } else {
        Engine::new(1 + dsts.len())
    };
    let outcome = src.remove_key_with(
        key,
        &mut StageRemoveCtx {
            eng: &mut eng,
            idx: 0,
            cont: |eng: &mut Engine, elem: &T| fan_out_keyed(eng, 1, dsts, key, elem),
        },
    );
    conclude(&mut eng, outcome)
}

/// Atomically move the element stored under `key` in a *keyed* source into
/// an *unkeyed* target (e.g. a hash map → a queue): the key is dropped and
/// the element crosses container shapes in one linearization point.
/// Equivalent to
/// `Composition::moving_key_from(src, key).into_target(dst).run()`.
pub fn move_keyed_to_unkeyed<K, T, S, D>(src: &S, key: &K, dst: &D) -> MoveOutcome
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: MoveTarget<T> + ?Sized,
{
    Composition::moving_key_from(src, key)
        .into_target(dst)
        .run()
}

/// Fallible [`move_keyed_to_unkeyed`].
pub fn try_move_keyed_to_unkeyed<K, T, S, D>(
    src: &S,
    key: &K,
    dst: &D,
) -> Result<MoveOutcome, AllocError>
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: MoveTarget<T> + ?Sized,
{
    Composition::moving_key_from(src, key)
        .into_target(dst)
        .try_run()
}

/// Outcome of a composed [`swap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwapOutcome {
    /// One element of each object changed places atomically: no concurrent
    /// observer could see a state with zero or two of either element.
    Swapped,
    /// The first object had nothing to remove.
    FirstEmpty,
    /// The second object had nothing to remove.
    SecondEmpty,
    /// One of the inserts was permanently rejected (bounded target full,
    /// duplicate key); nothing changed anywhere.
    Rejected,
    /// Two of the four linearization points landed on the same memory word
    /// — e.g. a LIFO stack, whose push and pop both linearize on `top`, or
    /// `swap(x, x)`. A k-word CAS cannot express that; use containers whose
    /// insert and remove linearize on distinct words (queues do).
    WouldAlias,
}

/// Atomically exchange one element between `a` and `b`: remove `x` from
/// `a`, remove `y` from `b`, insert `y` into `a` and `x` into `b`, all at a
/// single linearization point — a four-entry composition no pair of moves
/// can express (two sequential moves expose a state where both elements
/// sit in one object).
///
/// Works for containers whose insert and remove linearize on distinct
/// words (FIFO queues, the one-slot container when distinct); LIFO stacks
/// linearize push and pop on the same `top` word, which a k-word CAS
/// cannot express — those report [`SwapOutcome::WouldAlias`].
pub fn swap<T, A, B>(a: &A, b: &B) -> SwapOutcome
where
    T: Clone,
    A: MoveSource<T> + MoveTarget<T> + ?Sized,
    B: MoveSource<T> + MoveTarget<T> + ?Sized,
{
    match swap_impl(a, b, false) {
        Ok(o) => o,
        Err(_) => unreachable!("infallible engine cannot report OOM"),
    }
}

/// Fallible [`swap`]: descriptor allocation failure surfaces as `Err`
/// with both objects untouched.
pub fn try_swap<T, A, B>(a: &A, b: &B) -> Result<SwapOutcome, AllocError>
where
    T: Clone,
    A: MoveSource<T> + MoveTarget<T> + ?Sized,
    B: MoveSource<T> + MoveTarget<T> + ?Sized,
{
    swap_impl(a, b, true)
}

fn swap_impl<T, A, B>(a: &A, b: &B, fallible: bool) -> Result<SwapOutcome, AllocError>
where
    T: Clone,
    A: MoveSource<T> + MoveTarget<T> + ?Sized,
    B: MoveSource<T> + MoveTarget<T> + ?Sized,
{
    let mut eng = if fallible {
        Engine::new_fallible(4)
    } else {
        Engine::new(4)
    };
    let outcome = a.remove_with(&mut StageRemoveCtx {
        eng: &mut eng,
        idx: 0,
        cont: |eng: &mut Engine, x: &T| {
            run_remove(eng, 1, b, |eng: &mut Engine, y: &T| {
                run_insert(eng, 2, a, y.clone(), |eng: &mut Engine| {
                    run_insert(eng, 3, b, x.clone(), Engine::commit)
                })
            })
        },
    });
    eng.finish();
    if eng.oom() {
        return Err(AllocError);
    }
    Ok(match outcome {
        RemoveOutcome::Removed(_) => SwapOutcome::Swapped,
        RemoveOutcome::Empty => SwapOutcome::FirstEmpty,
        RemoveOutcome::Aborted => {
            if eng.aliased {
                SwapOutcome::WouldAlias
            } else if eng.dead == Some(Dead::Empty(1)) {
                SwapOutcome::SecondEmpty
            } else {
                SwapOutcome::Rejected
            }
        }
    })
}

mod sealed {
    /// Seals [`super::Stages`]: stage chains are built only through the
    /// [`super::Composition`] builder.
    pub trait Sealed {}
    impl Sealed for super::Commit {}
    impl<D: ?Sized, C> Sealed for super::InsertStage<'_, D, C> {}
    impl<K, D: ?Sized, C> Sealed for super::KeyedInsertStage<'_, K, D, C> {}
}

/// A compiled chain of insert stages (sealed; constructed by
/// [`Composition`]'s builder methods).
pub trait Stages<T>: sealed::Sealed {
    /// Number of insert stages in the chain.
    const LEN: usize;
    #[doc(hidden)]
    fn run_chain(&self, eng: &mut Engine, idx: usize, elem: &T) -> bool;
}

/// The terminal chain element: commits every captured entry.
pub struct Commit;

/// An unkeyed insert stage.
pub struct InsertStage<'a, D: ?Sized, C> {
    dst: &'a D,
    rest: C,
}

/// A keyed insert stage (inserts under its own key, which may differ from
/// the source's — an atomic *re-key* is a valid composition).
pub struct KeyedInsertStage<'a, K, D: ?Sized, C> {
    dst: &'a D,
    key: &'a K,
    rest: C,
}

impl<T> Stages<T> for Commit {
    const LEN: usize = 0;
    fn run_chain(&self, eng: &mut Engine, _idx: usize, _elem: &T) -> bool {
        eng.commit()
    }
}

impl<T, D, C> Stages<T> for InsertStage<'_, D, C>
where
    T: Clone,
    D: MoveTarget<T> + ?Sized,
    C: Stages<T>,
{
    const LEN: usize = 1 + C::LEN;
    fn run_chain(&self, eng: &mut Engine, idx: usize, elem: &T) -> bool {
        run_insert(eng, idx, self.dst, elem.clone(), |eng: &mut Engine| {
            self.rest.run_chain(eng, idx + 1, elem)
        })
    }
}

impl<K, T, D, C> Stages<T> for KeyedInsertStage<'_, K, D, C>
where
    K: Clone,
    T: Clone,
    D: KeyedMoveTarget<K, T> + ?Sized,
    C: Stages<T>,
{
    const LEN: usize = 1 + C::LEN;
    fn run_chain(&self, eng: &mut Engine, idx: usize, elem: &T) -> bool {
        run_insert_keyed(
            eng,
            idx,
            self.dst,
            self.key.clone(),
            elem.clone(),
            |eng: &mut Engine| self.rest.run_chain(eng, idx + 1, elem),
        )
    }
}

/// The unkeyed source of a [`Composition`].
pub struct Source<'a, T, S: ?Sized> {
    src: &'a S,
    _elem: std::marker::PhantomData<fn() -> T>,
}

/// The keyed source of a [`Composition`].
pub struct KeyedSource<'a, K, T, S: ?Sized> {
    src: &'a S,
    key: &'a K,
    _elem: std::marker::PhantomData<fn() -> T>,
}

/// A builder for composed operations over the unified engine.
///
/// A composition removes one element from its source and inserts clones of
/// it into every accumulated target — any mix of keyed and unkeyed stages,
/// up to [`MAX_ENTRIES`] linearization points in total — committing all of
/// them at a single linearization point.
///
/// ```
/// use lfc_core::compose::Composition;
/// use lfc_core::MoveOutcome;
/// use lfc_structures::{LfHashMap, MsQueue, TreiberStack};
///
/// let sessions: LfHashMap<u64, String> = LfHashMap::new();
/// let work: MsQueue<String> = MsQueue::new();
/// let audit: TreiberStack<String> = TreiberStack::new();
/// sessions.insert(7, "session-7".into());
///
/// // Atomically take key 7 out of the map and deliver the payload to BOTH
/// // unkeyed containers: no observer can ever see it in the map and a
/// // queue at once, or in one queue but not the other.
/// let outcome = Composition::moving_key_from(&sessions, &7)
///     .into_target(&work)
///     .into_target(&audit)
///     .run();
/// assert_eq!(outcome, MoveOutcome::Moved);
/// assert!(!sessions.contains(&7));
/// assert_eq!(work.dequeue().as_deref(), Some("session-7"));
/// assert_eq!(audit.pop().as_deref(), Some("session-7"));
/// ```
pub struct Composition<Src, C> {
    source: Src,
    chain: C,
}

impl<'a, T, S: ?Sized> Composition<Source<'a, T, S>, Commit> {
    /// Start a composition that removes its element from the unkeyed `src`.
    pub fn moving_from(src: &'a S) -> Self {
        Composition {
            source: Source {
                src,
                _elem: std::marker::PhantomData,
            },
            chain: Commit,
        }
    }
}

impl<'a, K, T, S: ?Sized> Composition<KeyedSource<'a, K, T, S>, Commit> {
    /// Start a composition that removes the element under `key` from the
    /// keyed `src`.
    pub fn moving_key_from(src: &'a S, key: &'a K) -> Self {
        Composition {
            source: KeyedSource {
                src,
                key,
                _elem: std::marker::PhantomData,
            },
            chain: Commit,
        }
    }
}

impl<Src, C> Composition<Src, C> {
    /// Add an unkeyed insert target.
    pub fn into_target<D: ?Sized>(self, dst: &D) -> Composition<Src, InsertStage<'_, D, C>> {
        Composition {
            source: self.source,
            chain: InsertStage {
                dst,
                rest: self.chain,
            },
        }
    }

    /// Add a keyed insert target, inserting under `key`.
    pub fn into_keyed_target<'b, K, D: ?Sized>(
        self,
        dst: &'b D,
        key: &'b K,
    ) -> Composition<Src, KeyedInsertStage<'b, K, D, C>> {
        Composition {
            source: self.source,
            chain: KeyedInsertStage {
                dst,
                key,
                rest: self.chain,
            },
        }
    }
}

impl<T, S, C> Composition<Source<'_, T, S>, C>
where
    T: Clone,
    S: MoveSource<T> + ?Sized,
    C: Stages<T>,
{
    /// Execute the composition. Lock-free and linearizable when every
    /// object involved is a lock-free move-ready object.
    pub fn run(&self) -> MoveOutcome {
        match self.run_impl(false) {
            Ok(o) => o,
            Err(_) => unreachable!("infallible engine cannot report OOM"),
        }
    }

    /// Fallible [`run`](Self::run): descriptor allocation failure surfaces
    /// as `Err` with nothing changed anywhere.
    pub fn try_run(&self) -> Result<MoveOutcome, AllocError> {
        self.run_impl(true)
    }

    fn run_impl(&self, fallible: bool) -> Result<MoveOutcome, AllocError> {
        assert!(
            (1..=MAX_TARGETS).contains(&C::LEN),
            "a composition takes 1..={MAX_TARGETS} insert stages"
        );
        let mut eng = if fallible {
            Engine::new_fallible(1 + C::LEN)
        } else {
            Engine::new(1 + C::LEN)
        };
        let outcome = self.source.src.remove_with(&mut StageRemoveCtx {
            eng: &mut eng,
            idx: 0,
            cont: |eng: &mut Engine, elem: &T| self.chain.run_chain(eng, 1, elem),
        });
        conclude(&mut eng, outcome)
    }
}

impl<K, T, S, C> Composition<KeyedSource<'_, K, T, S>, C>
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    C: Stages<T>,
{
    /// Execute the composition (keyed source).
    pub fn run(&self) -> MoveOutcome {
        match self.run_impl(false) {
            Ok(o) => o,
            Err(_) => unreachable!("infallible engine cannot report OOM"),
        }
    }

    /// Fallible [`run`](Self::run): descriptor allocation failure surfaces
    /// as `Err` with nothing changed anywhere.
    pub fn try_run(&self) -> Result<MoveOutcome, AllocError> {
        self.run_impl(true)
    }

    fn run_impl(&self, fallible: bool) -> Result<MoveOutcome, AllocError> {
        assert!(
            (1..=MAX_TARGETS).contains(&C::LEN),
            "a composition takes 1..={MAX_TARGETS} insert stages"
        );
        let mut eng = if fallible {
            Engine::new_fallible(1 + C::LEN)
        } else {
            Engine::new(1 + C::LEN)
        };
        let outcome = self.source.src.remove_key_with(
            self.source.key,
            &mut StageRemoveCtx {
                eng: &mut eng,
                idx: 0,
                cont: |eng: &mut Engine, elem: &T| self.chain.run_chain(eng, 1, elem),
            },
        );
        conclude(&mut eng, outcome)
    }
}
