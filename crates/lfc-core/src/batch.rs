//! Contention-adaptive front-end for composed operations (PR 7): the
//! **claim-pattern group commit**.
//!
//! A composed move pays one CASN publication per logical operation. Under
//! contention — many threads targeting the same hot structure words — the
//! engine's retry rule turns into a retry *storm*: every commit failure
//! re-runs init phases and re-publishes descriptors against the same words.
//! The standard cure (Cederman et al., "Lock-free Concurrent Data
//! Structures" survey; the claim pattern of atomic-try-update: *enqueue
//! concurrently, process sequentially, exactly once, without mutexes*) is
//! to **batch**: contending threads enqueue request records onto a shared
//! claim list with one CAS each, and a single drainer processes the batch
//! sequentially — turning k-way CAS contention on structure words into
//! k-way CAS contention on one *claim head*, which is cheap because a push
//! never retries against a committed descriptor.
//!
//! # Protocol
//!
//! A [`BatchGate`] owns a pooled two-word header:
//!
//! * `incoming` — a Treiber-style claim list of request nodes; submitters
//!   push with a plain CAS loop;
//! * `batch` — the list currently being drained, or 0.
//!
//! Submit: allocate a [`BatchOp`] request node, park its address in the
//! dedicated [`slot::CLAIM`] hazard (named hazards survive ejection *and*
//! zombie partitioning, so the node outlives any stall of its owner), push
//! it onto `incoming`, then spin on the node's **result flag** — helping
//! and eventually self-executing, see *Lock-freedom* below.
//!
//! Claim: any thread may atomically detach the whole incoming list and
//! install it as the batch with **one DCAS** `[incoming: h→0, batch: 0→h]`
//! — the same pooled descriptor machinery the compositions themselves use.
//! Because the claim is a single atomic step there is no window in which
//! the list is detached but not yet owned: a stalled claimer either hasn't
//! claimed (incoming intact, anyone can claim) or has (batch set, anyone
//! can drain).
//!
//! Drain: walk the batch; every node whose flag is still
//! [`FLAG_PENDING`] is executed through the engine with the flag folded
//! into the commit as an extra CASN entry `flag: PENDING → outcome`. That
//! entry is the **exactly-once** guarantee: two drainers racing on the
//! same request each include the same `PENDING → done` transition, and
//! k-CAS semantics let at most one of those commits succeed — the loser's
//! whole CASN fails atomically, structure words untouched. Outcomes that
//! don't commit anything (source empty, target rejected) are finalized by
//! a plain CAS on the flag, with the same exactly-once argument.
//!
//! After the walk, if every flag is resolved, the drainer clears `batch`
//! with a CAS `h → 0`; the unique winner of that CAS retires the chain.
//! Waiters still reading their flag are protected by their CLAIM hazard
//! (retired ≠ freed), helpers by the flag entries' `hp` adoption.
//!
//! # Lock-freedom
//!
//! No step blocks on another thread's progress:
//!
//! * a stalled **submitter** delays nobody — its node is drained by others
//!   and its CLAIM hazard merely defers the free;
//! * a stalled **claimer** holds nothing: claiming is one DCAS, and DCAS
//!   is lock-free (helpable);
//! * a stalled **drainer** mid-batch does not strand the batch — draining
//!   is idempotent (flags are exactly-once), so any other thread may walk
//!   the same batch and finish the remaining requests;
//! * a waiter's spin is not a lock wait: after a bounded spin it *helps*
//!   (claims/drains itself), and after a further bound it **self-executes**
//!   its own request directly — safe under the flag's exactly-once CAS —
//!   so a thread finishes its operation in a bounded number of its own
//!   steps once contention subsides, regardless of what every other thread
//!   does.
//!
//! # Adaptivity
//!
//! The gate keeps a racy *heat* counter (saturating relaxed RMWs). While
//! cool, submits run the plain composition directly with a small
//! commit-failure budget ([`compose::Engine`]'s `fail_budget`); an attempt
//! that burns the budget warms the gate and falls back to the batched
//! path. Cooling happens on **both** regimes — a direct success decays the
//! counter, and so does every fully drained batch (charged once, to the
//! drain's unique clear winner) — so a hot gate, whose submits never run
//! direct attempts, still cools back under the hot threshold once
//! contention subsides and returns to the solo fast path. The uncontended path
//! therefore never touches the claim list, preserving single-thread
//! latency.

use crate::compose::{
    fan_out_keyed, move_verdict, run_insert, run_insert_keyed, run_remove, Engine, StageRemoveCtx,
    SwapOutcome,
};
use crate::sync::{spin_loop, yield_now, AtomicUsize, Ordering};
use crate::{
    KeyedMoveSource, KeyedMoveTarget, LinPoint, MoveOutcome, MoveSource, MoveTarget, RemoveOutcome,
};
use lfc_dcas::{DAtomic, DcasResult, DescHandle, Word, MAX_ENTRIES};
use lfc_hazard::{pin, pin_op, slot, Guard, OpGuard, RetireInfo};
use lfc_runtime::CachePadded;
use std::alloc::Layout;
use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU32, Ordering as SOrd};

/// A request's result flag before it resolves. Must be 0: nodes are
/// zero-flag-initialized before publication, and the claim DCAS uses 0 as
/// the "no batch" sentinel.
pub const FLAG_PENDING: Word = 0;

/// Outcome codes are `code << 3`: word-encoding bits `[2:0]` (kind + user
/// mark) stay clear, so every done value is a valid *raw* protocol word —
/// the flag lives in a [`DAtomic`] that CASN helpers read and write.
const CODE_SHIFT: u32 = 3;

/// Encode a [`MoveOutcome`] as a flag word (nonzero, multiple of 8).
pub fn encode_move(o: MoveOutcome) -> Word {
    let code: Word = match o {
        MoveOutcome::Moved => 1,
        MoveOutcome::SourceEmpty => 2,
        MoveOutcome::TargetRejected => 3,
        MoveOutcome::WouldAlias => 4,
    };
    code << CODE_SHIFT
}

/// Decode a flag word produced by a move-shaped [`BatchOp`].
///
/// # Panics
///
/// Panics on a word that is not an encoded [`MoveOutcome`] (e.g. the
/// result of a swap-shaped request).
pub fn decode_move(w: Word) -> MoveOutcome {
    match w >> CODE_SHIFT {
        1 => MoveOutcome::Moved,
        2 => MoveOutcome::SourceEmpty,
        3 => MoveOutcome::TargetRejected,
        4 => MoveOutcome::WouldAlias,
        _ => panic!("not an encoded MoveOutcome: {w:#x}"),
    }
}

/// Encode a [`SwapOutcome`] as a flag word (codes disjoint from
/// [`encode_move`]'s so cross-decoding panics instead of lying).
pub fn encode_swap(o: SwapOutcome) -> Word {
    let code: Word = match o {
        SwapOutcome::Swapped => 5,
        SwapOutcome::FirstEmpty => 6,
        SwapOutcome::SecondEmpty => 7,
        SwapOutcome::Rejected => 8,
        SwapOutcome::WouldAlias => 9,
    };
    code << CODE_SHIFT
}

/// Decode a flag word produced by a swap-shaped [`BatchOp`].
///
/// # Panics
///
/// Panics on a word that is not an encoded [`SwapOutcome`].
pub fn decode_swap(w: Word) -> SwapOutcome {
    match w >> CODE_SHIFT {
        5 => SwapOutcome::Swapped,
        6 => SwapOutcome::FirstEmpty,
        7 => SwapOutcome::SecondEmpty,
        8 => SwapOutcome::Rejected,
        9 => SwapOutcome::WouldAlias,
        _ => panic!("not an encoded SwapOutcome: {w:#x}"),
    }
}

/// A request the gate can batch.
///
/// `Copy` is a *soundness* requirement, not a convenience: request nodes
/// are reclaimed through the deferred hazard/epoch machinery, possibly
/// after the borrows inside the request (`&'a LfHashMap`, …) have ended.
/// The deferred free never reads the request — but drop glue would, so
/// the type system forbids it ever existing.
pub trait BatchOp: Copy + Send + Sync {
    /// Run the operation directly (no flag, no batch) with a commit-failure
    /// budget. Returns the encoded outcome, or `None` if the attempt
    /// *starved* — burned the whole budget on commit failures — in which
    /// case the gate falls back to the batched path.
    fn try_direct(&self, fail_budget: u32) -> Option<Word>;

    /// Execute the request with `flag` folded into the commit as a
    /// `PENDING → outcome` CASN entry (exactly-once). `node_hp` is the
    /// base address of the allocation containing `flag`, passed as the
    /// entry's helper-adoption address. Returns the encoded outcome if
    /// *this call* resolved the flag, `None` if a racing executor won.
    ///
    /// The caller must keep the flag's allocation protected (CLAIM hazard
    /// or an operation epoch that read it from a live batch).
    fn run_flagged(&self, flag: &DAtomic, node_hp: usize) -> Option<Word>;
}

// ---------------------------------------------------------------------------
// Flagged drivers: compositions with the result flag as an extra CASN entry.
// ---------------------------------------------------------------------------

/// Capture `flag: PENDING → done` at entry `idx` and commit. Under the
/// model checker's `SKIP_FLAG_ENTRY` toggle this instead commits *without*
/// the flag entry and publishes the flag by a separate CAS afterwards —
/// the naive handoff protocol whose double-commit window the model
/// scenario exists to catch.
fn flagged_commit(
    eng: &mut Engine,
    idx: usize,
    flag: &DAtomic,
    done: Word,
    node_hp: usize,
) -> bool {
    #[cfg(lfc_model)]
    if crate::model_toggles::skip_flag_entry() {
        let ok = eng.commit_without_flag();
        if ok {
            let _ = flag.cas_word(FLAG_PENDING, done);
        }
        return ok;
    }
    eng.capture(
        idx,
        &LinPoint {
            word: flag,
            old: FLAG_PENDING,
            new: done,
            hp: node_hp,
        },
    ) && eng.commit()
}

/// Publish a no-commit outcome (source empty, rejection) by a plain flag
/// CAS. `None` means a racing executor resolved the request first — or is
/// mid-commit on it (its descriptor occupies the flag word), in which case
/// the drain pass re-checks before clearing the batch.
fn finalize(flag: &DAtomic, done: Word) -> Option<Word> {
    if flag.cas_word(FLAG_PENDING, done) {
        Some(done)
    } else {
        None
    }
}

/// Map a flagged move's outermost outcome to its flag resolution.
fn settle_move<T>(
    g: &Guard,
    eng: &Engine,
    outcome: RemoveOutcome<T>,
    flag: &DAtomic,
) -> Option<Word> {
    match outcome {
        // The CASN — flag entry included — succeeded: the flag already
        // holds our done word.
        RemoveOutcome::Removed(_) => Some(encode_move(MoveOutcome::Moved)),
        RemoveOutcome::Empty => finalize(flag, encode_move(MoveOutcome::SourceEmpty)),
        RemoveOutcome::Aborted => {
            if eng.was_aliased() {
                finalize(flag, encode_move(MoveOutcome::WouldAlias))
            } else if flag.read(g) != FLAG_PENDING {
                // The abort was the flag entry failing inside our CASN (or
                // a downstream consequence): somebody else resolved the
                // request. Exactly-once held; we lost.
                None
            } else {
                finalize(flag, encode_move(MoveOutcome::TargetRejected))
            }
        }
    }
}

/// `move_one` with the result flag folded into the commit (plan: remove,
/// insert, flag).
pub fn flagged_move_one<T, S, D>(src: &S, dst: &D, flag: &DAtomic, node_hp: usize) -> Option<Word>
where
    T: Clone,
    S: MoveSource<T> + ?Sized,
    D: MoveTarget<T> + ?Sized,
{
    let g = pin();
    if flag.read(&g) != FLAG_PENDING {
        return None;
    }
    let done = encode_move(MoveOutcome::Moved);
    let mut eng = Engine::new(3);
    let outcome = src.remove_with(&mut StageRemoveCtx {
        eng: &mut eng,
        idx: 0,
        cont: |eng: &mut Engine, elem: &T| {
            run_insert(eng, 1, dst, elem.clone(), |eng: &mut Engine| {
                flagged_commit(eng, 2, flag, done, node_hp)
            })
        },
    });
    eng.finish();
    settle_move(&g, &eng, outcome, flag)
}

/// `move_keyed` with the result flag folded into the commit.
pub fn flagged_move_keyed<K, T, S, D>(
    src: &S,
    key: &K,
    dst: &D,
    flag: &DAtomic,
    node_hp: usize,
) -> Option<Word>
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    let g = pin();
    if flag.read(&g) != FLAG_PENDING {
        return None;
    }
    let done = encode_move(MoveOutcome::Moved);
    let mut eng = Engine::new(3);
    let outcome = src.remove_key_with(
        key,
        &mut StageRemoveCtx {
            eng: &mut eng,
            idx: 0,
            cont: |eng: &mut Engine, elem: &T| {
                run_insert_keyed(
                    eng,
                    1,
                    dst,
                    key.clone(),
                    elem.clone(),
                    |eng: &mut Engine| flagged_commit(eng, 2, flag, done, node_hp),
                )
            },
        },
    );
    eng.finish();
    settle_move(&g, &eng, outcome, flag)
}

/// Keyed fan-out whose terminal stage is the flagged commit.
#[allow(clippy::too_many_arguments)] // recursive stage plumbing, all borrowed
fn fan_keyed_flagged<K, T, D>(
    eng: &mut Engine,
    idx: usize,
    dsts: &[&D],
    key: &K,
    elem: &T,
    flag: &DAtomic,
    done: Word,
    node_hp: usize,
) -> bool
where
    K: Clone,
    T: Clone,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    match dsts.split_first() {
        None => flagged_commit(eng, idx, flag, done, node_hp),
        Some((first, rest)) => run_insert_keyed(
            eng,
            idx,
            *first,
            key.clone(),
            elem.clone(),
            move |eng: &mut Engine| {
                fan_keyed_flagged(eng, idx + 1, rest, key, elem, flag, done, node_hp)
            },
        ),
    }
}

/// `move_keyed_to_all` with the result flag folded into the commit (the
/// flag spends one of the [`MAX_ENTRIES`] slots: up to `MAX_ENTRIES - 2`
/// targets).
pub fn flagged_move_keyed_to_all<K, T, S, D>(
    src: &S,
    key: &K,
    dsts: &[&D],
    flag: &DAtomic,
    node_hp: usize,
) -> Option<Word>
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    assert!(
        !dsts.is_empty() && dsts.len() <= MAX_ENTRIES - 2,
        "flagged fan-out supports 1..={} targets",
        MAX_ENTRIES - 2
    );
    let g = pin();
    if flag.read(&g) != FLAG_PENDING {
        return None;
    }
    let done = encode_move(MoveOutcome::Moved);
    let mut eng = Engine::new(2 + dsts.len());
    let outcome = src.remove_key_with(
        key,
        &mut StageRemoveCtx {
            eng: &mut eng,
            idx: 0,
            cont: |eng: &mut Engine, elem: &T| {
                fan_keyed_flagged(eng, 1, dsts, key, elem, flag, done, node_hp)
            },
        },
    );
    eng.finish();
    settle_move(&g, &eng, outcome, flag)
}

/// `swap` with the result flag folded into the commit (plan: remove a,
/// remove b, insert a, insert b, flag — five of the six entries).
pub fn flagged_swap<T, A, B>(a: &A, b: &B, flag: &DAtomic, node_hp: usize) -> Option<Word>
where
    T: Clone,
    A: MoveSource<T> + MoveTarget<T> + ?Sized,
    B: MoveSource<T> + MoveTarget<T> + ?Sized,
{
    let g = pin();
    if flag.read(&g) != FLAG_PENDING {
        return None;
    }
    let done = encode_swap(SwapOutcome::Swapped);
    let mut eng = Engine::new(5);
    let outcome = a.remove_with(&mut StageRemoveCtx {
        eng: &mut eng,
        idx: 0,
        cont: |eng: &mut Engine, x: &T| {
            run_remove(eng, 1, b, |eng: &mut Engine, y: &T| {
                run_insert(eng, 2, a, y.clone(), |eng: &mut Engine| {
                    run_insert(eng, 3, b, x.clone(), |eng: &mut Engine| {
                        flagged_commit(eng, 4, flag, done, node_hp)
                    })
                })
            })
        },
    });
    eng.finish();
    match outcome {
        RemoveOutcome::Removed(_) => Some(done),
        RemoveOutcome::Empty => finalize(flag, encode_swap(SwapOutcome::FirstEmpty)),
        RemoveOutcome::Aborted => {
            if eng.was_aliased() {
                finalize(flag, encode_swap(SwapOutcome::WouldAlias))
            } else if eng.empty_at(1) {
                finalize(flag, encode_swap(SwapOutcome::SecondEmpty))
            } else if flag.read(&g) != FLAG_PENDING {
                None
            } else {
                finalize(flag, encode_swap(SwapOutcome::Rejected))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Direct (budgeted) drivers for the adaptive fast path.
// ---------------------------------------------------------------------------

/// Budgeted `move_one`: `None` = starved on contention — or the fallible
/// commit's own descriptor allocation failed (budgeted engines never reach
/// the aborting allocator) — fall back to the gate / retry.
pub fn direct_move_one<T, S, D>(src: &S, dst: &D, fail_budget: u32) -> Option<Word>
where
    T: Clone,
    S: MoveSource<T> + ?Sized,
    D: MoveTarget<T> + ?Sized,
{
    let mut eng = Engine::new_budgeted(2, fail_budget);
    let outcome = src.remove_with(&mut StageRemoveCtx {
        eng: &mut eng,
        idx: 0,
        cont: |eng: &mut Engine, elem: &T| run_insert(eng, 1, dst, elem.clone(), Engine::commit),
    });
    eng.finish();
    if eng.starved() || eng.oom() {
        None
    } else {
        Some(encode_move(move_verdict(&eng, outcome)))
    }
}

/// Budgeted `move_keyed`.
pub fn direct_move_keyed<K, T, S, D>(src: &S, key: &K, dst: &D, fail_budget: u32) -> Option<Word>
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    let mut eng = Engine::new_budgeted(2, fail_budget);
    let outcome = src.remove_key_with(
        key,
        &mut StageRemoveCtx {
            eng: &mut eng,
            idx: 0,
            cont: |eng: &mut Engine, elem: &T| {
                run_insert_keyed(eng, 1, dst, key.clone(), elem.clone(), Engine::commit)
            },
        },
    );
    eng.finish();
    if eng.starved() || eng.oom() {
        None
    } else {
        Some(encode_move(move_verdict(&eng, outcome)))
    }
}

/// Budgeted `move_keyed_to_all`.
pub fn direct_move_keyed_to_all<K, T, S, D>(
    src: &S,
    key: &K,
    dsts: &[&D],
    fail_budget: u32,
) -> Option<Word>
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    assert!(
        !dsts.is_empty() && dsts.len() <= MAX_ENTRIES - 2,
        "batched fan-out supports 1..={} targets",
        MAX_ENTRIES - 2
    );
    let mut eng = Engine::new_budgeted(1 + dsts.len(), fail_budget);
    let outcome = src.remove_key_with(
        key,
        &mut StageRemoveCtx {
            eng: &mut eng,
            idx: 0,
            cont: |eng: &mut Engine, elem: &T| fan_out_keyed(eng, 1, dsts, key, elem),
        },
    );
    eng.finish();
    if eng.starved() || eng.oom() {
        None
    } else {
        Some(encode_move(move_verdict(&eng, outcome)))
    }
}

/// Budgeted `swap`.
pub fn direct_swap<T, A, B>(a: &A, b: &B, fail_budget: u32) -> Option<Word>
where
    T: Clone,
    A: MoveSource<T> + MoveTarget<T> + ?Sized,
    B: MoveSource<T> + MoveTarget<T> + ?Sized,
{
    let mut eng = Engine::new_budgeted(4, fail_budget);
    let outcome = a.remove_with(&mut StageRemoveCtx {
        eng: &mut eng,
        idx: 0,
        cont: |eng: &mut Engine, x: &T| {
            run_remove(eng, 1, b, |eng: &mut Engine, y: &T| {
                run_insert(eng, 2, a, y.clone(), |eng: &mut Engine| {
                    run_insert(eng, 3, b, x.clone(), Engine::commit)
                })
            })
        },
    });
    eng.finish();
    if eng.starved() || eng.oom() {
        return None;
    }
    Some(encode_swap(match outcome {
        RemoveOutcome::Removed(_) => SwapOutcome::Swapped,
        RemoveOutcome::Empty => SwapOutcome::FirstEmpty,
        RemoveOutcome::Aborted => {
            if eng.was_aliased() {
                SwapOutcome::WouldAlias
            } else if eng.empty_at(1) {
                SwapOutcome::SecondEmpty
            } else {
                SwapOutcome::Rejected
            }
        }
    }))
}

// ---------------------------------------------------------------------------
// The gate.
// ---------------------------------------------------------------------------

/// Pooled two-word gate header; lives in its own allocation so the claim
/// DCAS's helpers can adopt it by base address, like structure headers.
#[repr(C)]
struct GateHeader {
    /// Claim list: submitters push request nodes here (Treiber-style).
    incoming: DAtomic,
    /// The list currently being drained (0 = none). Set only by the claim
    /// DCAS, cleared only by the unique drain-completion CAS.
    batch: DAtomic,
}

/// One batched request. `repr(C)` with the atomic link first: the base
/// address doubles as the protocol word pushed onto the claim list, and
/// must be 8-aligned (raw-word encoding).
#[repr(C)]
struct BatchNode<R> {
    /// Successor in the claim/batch list (base address, 0 = end). Written
    /// before publication; re-written only by the owner's push loop.
    next: AtomicUsize,
    /// Result flag: [`FLAG_PENDING`] until resolved, then an encoded
    /// outcome. May transiently hold a CASN descriptor — always access
    /// through [`DAtomic::read`] under a guard.
    flag: DAtomic,
    /// Allocation era (zombie-partition evidence, as for structure nodes).
    birth: usize,
    /// The request itself. `R: Copy`, so the node carries no drop glue.
    req: R,
}

fn try_alloc_batch_node<R: BatchOp>(
    req: R,
    fg: lfc_runtime::fault::FaultGate,
) -> Result<*mut BatchNode<R>, lfc_alloc::AllocError> {
    // Site check ahead of the allocator so injection reaches this path
    // independently of `"alloc.block"`.
    if fg.check("batch.node") {
        return Err(lfc_alloc::AllocError);
    }
    let p = lfc_alloc::try_alloc_block(Layout::new::<BatchNode<R>>())?.cast::<BatchNode<R>>();
    // Safety: fresh, correctly sized and aligned block.
    unsafe {
        p.as_ptr().write(BatchNode {
            next: AtomicUsize::new(0),
            flag: DAtomic::new(FLAG_PENDING),
            birth: lfc_hazard::birth_era(),
            req,
        });
    }
    debug_assert_eq!(p.as_ptr() as usize & 0b111, 0);
    Ok(p.as_ptr())
}

/// Reclaimer *and* zombie-tier divert: `R: Copy` means no drop glue, so
/// both are the same plain free — and, crucially, the deferred free never
/// dereferences the request, whose borrows may have ended by then.
unsafe fn free_batch_node<R>(p: *mut u8) {
    // Safety: retire contract — last reference.
    unsafe { lfc_alloc::free_block(p, Layout::new::<BatchNode<R>>()) };
}

/// # Safety
///
/// The node must be unlinked from both gate lists (drain-completion CAS
/// won, or gate teardown).
unsafe fn retire_batch_node<R>(p: *mut BatchNode<R>) {
    // Safety: single retire call reads the plain birth field.
    let birth = unsafe { (*p).birth };
    // Safety: forwarded.
    unsafe {
        lfc_hazard::retire_with(
            p as *mut u8,
            free_batch_node::<R>,
            RetireInfo {
                bytes: std::mem::size_of::<BatchNode<R>>(),
                birth,
                divert: Some(free_batch_node::<R>),
            },
        )
    };
}

/// Retire every node of an unlinked chain.
///
/// # Safety
///
/// The chain must be unreachable from the gate words.
unsafe fn retire_list<R>(mut cur: Word) {
    while cur != 0 {
        let p = cur as *mut BatchNode<R>;
        // Safety: chain nodes are live until retired below; `next` is
        // read before its node is handed to the reclamation domain.
        cur = unsafe { (*p).next.load(Ordering::Acquire) };
        // Safety: forwarded from the caller's unlink.
        unsafe { retire_batch_node(p) };
    }
}

unsafe fn reclaim_gate_header(p: *mut u8) {
    // Safety: retire contract; DAtomics are plain words, no drop glue.
    unsafe { lfc_alloc::free_block(p, Layout::new::<GateHeader>()) };
}

/// Rounds a waiter spins on its flag before it starts helping
/// (claiming/draining). Small: on an oversubscribed core, spinning only
/// burns the drainer's quantum.
#[cfg(not(lfc_model))]
const SPIN_ROUNDS: u32 = 24;
#[cfg(lfc_model)]
const SPIN_ROUNDS: u32 = 0;

/// Helping rounds before a waiter self-executes its own request (the
/// lock-freedom escape hatch). Under the model checker this is 1 so every
/// interleaving terminates within the step budget.
#[cfg(not(lfc_model))]
const SELF_EXEC_ROUNDS: u32 = 128;
#[cfg(lfc_model)]
const SELF_EXEC_ROUNDS: u32 = 1;

/// Claim attempts per [`BatchGate::advance`] call before handing control
/// back to the waiter loop (each failure means a rival pushed or claimed —
/// progress elsewhere).
const CLAIM_ATTEMPTS: u32 = 4;

/// Heat level at which submits stop attempting the direct path.
const HEAT_HOT: u32 = 8;
const HEAT_MAX: u32 = 16;

/// Commit failures a direct attempt may absorb before starving (see
/// [`BatchGate::with_direct_budget`]).
pub const DEFAULT_DIRECT_BUDGET: u32 = 3;

/// The claim-pattern group-commit front-end (module docs). One gate per
/// contended composition hot spot; requests of type `R` submitted through
/// it execute exactly once, lock-free, batching under contention and
/// running the plain composition when cool.
pub struct BatchGate<R: BatchOp> {
    header: NonNull<GateHeader>,
    /// Racy contention estimate (heuristic only — no protocol decision's
    /// correctness depends on it, so it stays on `std` atomics and
    /// `Relaxed`, invisible to the model checker).
    heat: CachePadded<AtomicU32>,
    direct_budget: u32,
    _req: PhantomData<R>,
}

// Safety: the gate shares `R` values (executed by whichever thread drains
// them) and pooled nodes across threads; `BatchOp: Send + Sync + Copy`
// covers the requests, and every node/header access follows the hazard
// protocol.
unsafe impl<R: BatchOp> Send for BatchGate<R> {}
unsafe impl<R: BatchOp> Sync for BatchGate<R> {}

impl<R: BatchOp> Default for BatchGate<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: BatchOp> BatchGate<R> {
    /// A gate with the default direct budget.
    pub fn new() -> Self {
        Self::with_direct_budget(DEFAULT_DIRECT_BUDGET)
    }

    /// A gate whose cool-path direct attempts absorb up to `budget` commit
    /// failures before falling back to the batched path. `0` disables the
    /// direct path entirely (see [`BatchGate::always_batched`]).
    pub fn with_direct_budget(budget: u32) -> Self {
        // No `"batch.gate"` site check here: the infallible constructor
        // keeps working while injection is armed (only `try_*` surfaces
        // injected failures).
        let p = lfc_alloc::alloc_block(Layout::new::<GateHeader>()).cast::<GateHeader>();
        Self::from_header(p, budget)
    }

    /// Fallible [`new`](Self::new): gate-header allocation failure
    /// (injected at the `"batch.gate"` site, or genuine exhaustion)
    /// surfaces as `Err`.
    pub fn try_new() -> Result<Self, lfc_alloc::AllocError> {
        Self::try_with_direct_budget(DEFAULT_DIRECT_BUDGET)
    }

    /// Fallible [`with_direct_budget`](Self::with_direct_budget).
    pub fn try_with_direct_budget(budget: u32) -> Result<Self, lfc_alloc::AllocError> {
        if lfc_runtime::fault::check("batch.gate") {
            return Err(lfc_alloc::AllocError);
        }
        let p = lfc_alloc::try_alloc_block(Layout::new::<GateHeader>())?.cast::<GateHeader>();
        Ok(Self::from_header(p, budget))
    }

    fn from_header(p: NonNull<GateHeader>, budget: u32) -> Self {
        // Safety: fresh block.
        unsafe {
            p.as_ptr().write(GateHeader {
                incoming: DAtomic::new(0),
                batch: DAtomic::new(0),
            });
        }
        BatchGate {
            header: p,
            heat: CachePadded::new(AtomicU32::new(0)),
            direct_budget: budget,
            _req: PhantomData,
        }
    }

    /// A gate that routes *every* submit through the claim list — the
    /// model checker and fuzzer use this to pin all executions on the
    /// batched protocol.
    pub fn always_batched() -> Self {
        Self::with_direct_budget(0)
    }

    fn header(&self) -> &GateHeader {
        // Safety: the header lives until `Drop` retires it.
        unsafe { self.header.as_ref() }
    }

    fn header_addr(&self) -> usize {
        self.header.as_ptr() as usize
    }

    /// Saturating RMWs (not load+store pairs): a heuristic may be racy in
    /// *when* it reacts, but a lost `warm` would delay the batched
    /// fallback under exactly the contention it exists to detect, so the
    /// counter tracks contention monotonically. Relaxed is still fine —
    /// no protocol decision's correctness rides on the value.
    fn warm(&self) {
        let _ = self.heat.fetch_update(SOrd::Relaxed, SOrd::Relaxed, |h| {
            Some((h + 3).min(HEAT_MAX))
        });
    }

    fn cool(&self) {
        // `None` on zero: saturate without dirtying the shared line.
        let _ = self
            .heat
            .fetch_update(SOrd::Relaxed, SOrd::Relaxed, |h| h.checked_sub(1));
    }

    /// Submit a request and wait (helping, never blocking) for its result
    /// word. While the gate is cool a direct budgeted attempt runs first,
    /// so the uncontended path never touches the claim list.
    pub fn submit(&self, req: R) -> Word {
        if self.direct_budget > 0 && self.heat.load(SOrd::Relaxed) < HEAT_HOT {
            match req.try_direct(self.direct_budget) {
                Some(w) => {
                    self.cool();
                    counters::note_direct();
                    return w;
                }
                None => self.warm(),
            }
        }
        self.submit_batched(req)
    }

    fn submit_batched(&self, req: R) -> Word {
        counters::note_batched();
        // One armed-generation load covers this submit's fault sites
        // (`batch.node` here, `batch.submitted` after publication).
        let fg = lfc_runtime::fault::gate();
        let node = match try_alloc_batch_node(req, fg) {
            Ok(n) => n,
            Err(_) => {
                // No memory for a request node: degrade to direct execution
                // with an effectively unbounded commit budget. The direct
                // attempt commits fallibly (budgeted engines, see
                // `Engine::new_budgeted`), so a descriptor refill failing
                // under the same pressure surfaces as `None` here instead
                // of reaching the aborting allocator; snooze and retry —
                // each round either a rival made progress (commit failure)
                // or memory is still short and yielding is the best this
                // infallible entry point can do.
                let mut snooze = lfc_runtime::Snooze::new();
                loop {
                    if let Some(w) = req.try_direct(u32::MAX) {
                        return w;
                    }
                    snooze.tick();
                }
            }
        };
        let addr = node as usize;
        let g = pin();
        debug_assert_eq!(g.get(slot::CLAIM), 0, "batched submits do not nest");
        // The CLAIM hazard covers the node from before publication until
        // we have read our result: it is what makes the final flag read
        // safe after a drainer retires the chain, and — being a named
        // hazard — it survives ejection and zombie partitioning even if
        // this thread stalls for whole eras while waiting.
        g.set(slot::CLAIM, addr);
        loop {
            let h = self.header().incoming.read(&g);
            // Safety: unpublished, uniquely owned until the CAS below.
            unsafe { (*node).next.store(h, Ordering::Release) };
            if self.header().incoming.cas_word(h, addr) {
                // Killable (fault-injection) only once the request is
                // published: any later claimer drains and executes it, so
                // a submitter's death here leaves a request the *gate
                // traffic itself* completes — the corpse's CLAIM hazard
                // keeps the node alive until adoption clears its bank.
                fg.check_kill("batch.submitted");
                let result = self.await_done(&g, node, h == 0);
                g.clear(slot::CLAIM);
                return result;
            }
            spin_loop();
        }
    }

    /// Spin on our own flag; help (claim/drain) after a bounded spin, and
    /// self-execute after a further bound — the waiter makes progress in
    /// its own steps no matter what every other thread does.
    fn await_done(&self, g: &Guard, node: *mut BatchNode<R>, leader: bool) -> Word {
        // Safety: CLAIM hazard (set by our caller) keeps the node mapped
        // and its flag word stable-after-resolve for the whole wait.
        let n = unsafe { &*node };
        let mut rounds: u32 = 0;
        loop {
            let w = n.flag.read(g);
            if w != FLAG_PENDING {
                return w;
            }
            if leader || rounds >= SPIN_ROUNDS {
                self.advance();
                if rounds >= SELF_EXEC_ROUNDS {
                    if let Some(w) = n.req.run_flagged(&n.flag, node as usize) {
                        counters::note_self_exec();
                        return w;
                    }
                }
                yield_now();
            } else {
                spin_loop();
            }
            rounds = rounds.saturating_add(1);
        }
    }

    /// One helping step: drain the current batch if there is one,
    /// otherwise try to claim the incoming list (one DCAS) and drain what
    /// we claimed. Bounded — returns to let the caller re-check its flag.
    fn advance(&self) {
        let mut og = pin_op();
        for _ in 0..CLAIM_ATTEMPTS {
            // A stall-ejection while helping: refresh the epoch and
            // re-read everything below from the live words.
            let _ = og.repin_if_ejected();
            let b = self.header().batch.read(&og);
            if b != 0 {
                self.drain_pass(&og, b);
                return;
            }
            let h = self.header().incoming.read(&og);
            if h == 0 {
                return;
            }
            // The claim: atomically detach the whole incoming list and
            // install it as the batch. One DCAS ⇒ no partially-claimed
            // state a stalled claimer could strand; word-level transfer ⇒
            // a recycled head address (ABA) is harmless, we claim whatever
            // list is headed there *now*.
            let mut d = DescHandle::new();
            d.set_first(&self.header().incoming, h, 0, self.header_addr());
            d.set_second(&self.header().batch, 0, h, self.header_addr());
            let (r, _) = d.commit(&og);
            if r == DcasResult::Success {
                self.drain_pass(&og, h);
                return;
            }
            // FirstFailed: a rival pushed or claimed — loop re-reads.
            // SecondFailed: a rival claimed — the batch read drains it.
        }
    }

    /// Walk batch `b`, executing every still-pending request, and — if the
    /// walk leaves every flag resolved — clear the batch word; the unique
    /// clear winner retires the chain.
    fn drain_pass(&self, og: &OpGuard, b: Word) {
        let mut all_done = true;
        let mut cur = b;
        while cur != 0 {
            // Safety: we read `b` from the live batch word inside this
            // epoch, so the chain's retire (which follows the clear CAS)
            // cannot precede our epoch: every node is still mapped.
            let n = unsafe { &*(cur as *const BatchNode<R>) };
            if n.flag.read(og) == FLAG_PENDING {
                match n.req.run_flagged(&n.flag, cur) {
                    Some(_) => {}
                    None => {
                        // Lost to a racing executor. Almost always its
                        // resolution is visible by now; if the flag still
                        // reads pending (its commit is in flight), we must
                        // not clear the batch out from under the request.
                        if n.flag.read(og) == FLAG_PENDING {
                            all_done = false;
                        }
                    }
                }
            }
            cur = n.next.load(Ordering::Acquire);
        }
        if all_done && self.header().batch.cas_word(b, 0) {
            counters::note_batch_drained();
            // The cooling half of the gate's hysteresis: the direct path
            // only cools on *direct* successes, but a hot gate never runs
            // direct attempts, so without this the gate could never
            // return from the batched regime. One decay per drained batch
            // (charged to the unique clear winner, not to every
            // submitter) keeps the probe overhead amortized: contention
            // holds the gate hot via `warm` (+3 per starved probe) faster
            // than drains cool it (−1 per batch), while a subsiding load
            // walks heat back under `HEAT_HOT` and re-opens the solo fast
            // path.
            self.cool();
            // Safety: winning the clear CAS unlinked the chain; waiters
            // still reading their flags hold CLAIM hazards, helpers hold
            // the flag entries' hp — retire defers past all of them.
            unsafe { retire_list::<R>(b) };
        }
    }

    /// Drain whatever is pending without submitting (used by teardown
    /// paths and tests).
    pub fn help(&self) {
        self.advance();
    }
}

impl<R: BatchOp> Drop for BatchGate<R> {
    fn drop(&mut self) {
        // `&mut self`: every submit has returned, so every flag is
        // resolved; only unclaimed/uncleared chains and the header remain.
        // Safety: exclusive teardown unlinks both chains.
        unsafe {
            retire_list::<R>(self.header().incoming.load_word());
            retire_list::<R>(self.header().batch.load_word());
            lfc_hazard::retire_with(
                self.header.as_ptr() as *mut u8,
                reclaim_gate_header,
                RetireInfo {
                    bytes: std::mem::size_of::<GateHeader>(),
                    birth: lfc_hazard::BIRTH_UNKNOWN,
                    divert: Some(reclaim_gate_header),
                },
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Ready-made request shapes.
// ---------------------------------------------------------------------------

/// A batched `move_one(src, dst)`.
pub struct MoveOneOp<'a, T, S: ?Sized, D: ?Sized> {
    src: &'a S,
    dst: &'a D,
    _elem: PhantomData<fn() -> T>,
}

impl<'a, T, S: ?Sized, D: ?Sized> MoveOneOp<'a, T, S, D> {
    /// Package a `move_one` request.
    pub fn new(src: &'a S, dst: &'a D) -> Self {
        MoveOneOp {
            src,
            dst,
            _elem: PhantomData,
        }
    }
}

impl<T, S: ?Sized, D: ?Sized> Clone for MoveOneOp<'_, T, S, D> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T, S: ?Sized, D: ?Sized> Copy for MoveOneOp<'_, T, S, D> {}

impl<T, S, D> BatchOp for MoveOneOp<'_, T, S, D>
where
    T: Clone,
    S: MoveSource<T> + Sync + ?Sized,
    D: MoveTarget<T> + Sync + ?Sized,
{
    fn try_direct(&self, fail_budget: u32) -> Option<Word> {
        direct_move_one(self.src, self.dst, fail_budget)
    }
    fn run_flagged(&self, flag: &DAtomic, node_hp: usize) -> Option<Word> {
        flagged_move_one(self.src, self.dst, flag, node_hp)
    }
}

/// A batched `move_keyed(src, key, dst)`.
pub struct MoveKeyedOp<'a, K, T, S: ?Sized, D: ?Sized> {
    src: &'a S,
    key: K,
    dst: &'a D,
    _elem: PhantomData<fn() -> T>,
}

impl<'a, K, T, S: ?Sized, D: ?Sized> MoveKeyedOp<'a, K, T, S, D> {
    /// Package a `move_keyed` request.
    pub fn new(src: &'a S, key: K, dst: &'a D) -> Self {
        MoveKeyedOp {
            src,
            key,
            dst,
            _elem: PhantomData,
        }
    }
}

impl<K: Copy, T, S: ?Sized, D: ?Sized> Clone for MoveKeyedOp<'_, K, T, S, D> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: Copy, T, S: ?Sized, D: ?Sized> Copy for MoveKeyedOp<'_, K, T, S, D> {}

impl<K, T, S, D> BatchOp for MoveKeyedOp<'_, K, T, S, D>
where
    K: Copy + Clone + Send + Sync,
    T: Clone,
    S: KeyedMoveSource<K, T> + Sync + ?Sized,
    D: KeyedMoveTarget<K, T> + Sync + ?Sized,
{
    fn try_direct(&self, fail_budget: u32) -> Option<Word> {
        direct_move_keyed(self.src, &self.key, self.dst, fail_budget)
    }
    fn run_flagged(&self, flag: &DAtomic, node_hp: usize) -> Option<Word> {
        flagged_move_keyed(self.src, &self.key, self.dst, flag, node_hp)
    }
}

/// A batched `move_keyed_to_all(src, key, dsts)`.
pub struct MoveKeyedToAllOp<'a, K, T, S: ?Sized, D: ?Sized> {
    src: &'a S,
    key: K,
    dsts: &'a [&'a D],
    _elem: PhantomData<fn() -> T>,
}

impl<'a, K, T, S: ?Sized, D: ?Sized> MoveKeyedToAllOp<'a, K, T, S, D> {
    /// Package a keyed fan-out request (1..=[`MAX_ENTRIES`]−2 targets; the
    /// flag entry uses one commit slot).
    pub fn new(src: &'a S, key: K, dsts: &'a [&'a D]) -> Self {
        MoveKeyedToAllOp {
            src,
            key,
            dsts,
            _elem: PhantomData,
        }
    }
}

impl<K: Copy, T, S: ?Sized, D: ?Sized> Clone for MoveKeyedToAllOp<'_, K, T, S, D> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: Copy, T, S: ?Sized, D: ?Sized> Copy for MoveKeyedToAllOp<'_, K, T, S, D> {}

impl<K, T, S, D> BatchOp for MoveKeyedToAllOp<'_, K, T, S, D>
where
    K: Copy + Clone + Send + Sync,
    T: Clone,
    S: KeyedMoveSource<K, T> + Sync + ?Sized,
    D: KeyedMoveTarget<K, T> + Sync + ?Sized,
{
    fn try_direct(&self, fail_budget: u32) -> Option<Word> {
        direct_move_keyed_to_all(self.src, &self.key, self.dsts, fail_budget)
    }
    fn run_flagged(&self, flag: &DAtomic, node_hp: usize) -> Option<Word> {
        flagged_move_keyed_to_all(self.src, &self.key, self.dsts, flag, node_hp)
    }
}

/// A batched `swap(a, b)`.
pub struct SwapOp<'a, T, A: ?Sized, B: ?Sized> {
    a: &'a A,
    b: &'a B,
    _elem: PhantomData<fn() -> T>,
}

impl<'a, T, A: ?Sized, B: ?Sized> SwapOp<'a, T, A, B> {
    /// Package a `swap` request.
    pub fn new(a: &'a A, b: &'a B) -> Self {
        SwapOp {
            a,
            b,
            _elem: PhantomData,
        }
    }
}

impl<T, A: ?Sized, B: ?Sized> Clone for SwapOp<'_, T, A, B> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T, A: ?Sized, B: ?Sized> Copy for SwapOp<'_, T, A, B> {}

impl<T, A, B> BatchOp for SwapOp<'_, T, A, B>
where
    T: Clone,
    A: MoveSource<T> + MoveTarget<T> + Sync + ?Sized,
    B: MoveSource<T> + MoveTarget<T> + Sync + ?Sized,
{
    fn try_direct(&self, fail_budget: u32) -> Option<Word> {
        direct_swap(self.a, self.b, fail_budget)
    }
    fn run_flagged(&self, flag: &DAtomic, node_hp: usize) -> Option<Word> {
        flagged_swap(self.a, self.b, flag, node_hp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal request: the direct path always succeeds, the flagged path
    /// resolves by the plain finalize CAS. Enough to drive the gate's
    /// submit/claim/drain machinery without any structure behind it.
    #[derive(Clone, Copy)]
    struct NoopOp;

    const TEST_DONE: Word = 8; // nonzero multiple of 8: a valid raw word

    impl BatchOp for NoopOp {
        fn try_direct(&self, _fail_budget: u32) -> Option<Word> {
            Some(TEST_DONE)
        }
        fn run_flagged(&self, flag: &DAtomic, _node_hp: usize) -> Option<Word> {
            finalize(flag, TEST_DONE)
        }
    }

    #[test]
    fn heat_saturates_at_both_ends() {
        let gate: BatchGate<NoopOp> = BatchGate::new();
        for _ in 0..10 {
            gate.warm();
        }
        assert_eq!(gate.heat.load(SOrd::Relaxed), HEAT_MAX);
        for _ in 0..(HEAT_MAX + 5) {
            gate.cool();
        }
        assert_eq!(gate.heat.load(SOrd::Relaxed), 0);
    }

    #[test]
    fn drained_batches_cool_a_hot_gate() {
        // Regression net for the one-way heat gate: a hot gate skips every
        // direct attempt, so only the batched path can cool it — each
        // fully drained batch must decay the counter, or one contention
        // burst pins the gate batched forever.
        let gate: BatchGate<NoopOp> = BatchGate::new();
        for _ in 0..6 {
            gate.warm();
        }
        assert!(
            gate.heat.load(SOrd::Relaxed) >= HEAT_HOT,
            "gate must start hot"
        );
        let mut submits = 0u32;
        while gate.heat.load(SOrd::Relaxed) >= HEAT_HOT {
            assert_eq!(gate.submit(NoopOp), TEST_DONE);
            submits += 1;
            assert!(
                submits <= HEAT_MAX + 1,
                "batched submits never cooled the gate"
            );
        }
        // Back under the threshold: submits run (and succeed on) the
        // direct path again, cooling further.
        let h = gate.heat.load(SOrd::Relaxed);
        let direct_before = counters::direct_ops();
        assert_eq!(gate.submit(NoopOp), TEST_DONE);
        assert!(gate.heat.load(SOrd::Relaxed) < h);
        assert!(counters::direct_ops() > direct_before);
    }
}

/// Diagnostic tallies for the adaptive front-end (plain `std` atomics:
/// nothing in the protocol reads them).
pub mod counters {
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIRECT: AtomicU64 = AtomicU64::new(0);
    static BATCHED: AtomicU64 = AtomicU64::new(0);
    static DRAINED: AtomicU64 = AtomicU64::new(0);
    static SELF_EXEC: AtomicU64 = AtomicU64::new(0);

    pub(super) fn note_direct() {
        DIRECT.fetch_add(1, Ordering::Relaxed);
    }
    pub(super) fn note_batched() {
        BATCHED.fetch_add(1, Ordering::Relaxed);
    }
    pub(super) fn note_batch_drained() {
        DRAINED.fetch_add(1, Ordering::Relaxed);
    }
    pub(super) fn note_self_exec() {
        SELF_EXEC.fetch_add(1, Ordering::Relaxed);
    }

    /// Submits that completed on the direct (unbatched) path.
    pub fn direct_ops() -> u64 {
        DIRECT.load(Ordering::Relaxed)
    }
    /// Submits routed through the claim list.
    pub fn batched_ops() -> u64 {
        BATCHED.load(Ordering::Relaxed)
    }
    /// Batches fully drained and cleared.
    pub fn batches_drained() -> u64 {
        DRAINED.load(Ordering::Relaxed)
    }
    /// Waiters that resolved their own request via the escape hatch.
    pub fn self_execs() -> u64 {
        SELF_EXEC.load(Ordering::Relaxed)
    }
}
