//! Crate-local virtual-atomics facade: re-exports
//! [`lfc_runtime::sync`], the single switch between `std::sync::atomic`
//! (normal builds) and the `lfc-model` instrumented shadow memory
//! (`--cfg lfc_model`). Every protocol atomic in this crate — the batch
//! node `next` links, the submit/await spins — must import from here,
//! never from `std` directly. (The adaptivity heat counter and the
//! diagnostic counters in [`crate::batch::counters`] deliberately stay on
//! `std`: no protocol decision's *correctness* reads them, and
//! instrumenting them would only multiply scheduling points.)

pub use lfc_runtime::sync::*;
