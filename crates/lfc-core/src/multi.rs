//! The n-object move of the paper's conclusion (§8):
//!
//! > "Our methodology can also be easily extended to support n operations on
//! > n distinct objects, for example to create functions that remove an item
//! > from one object and insert it into n others atomically."
//!
//! [`move_to_all`] removes one element from the source and inserts a clone
//! of it into *every* target, all at a single linearization point. It is a
//! thin wrapper over the unified composition engine ([`crate::compose`]):
//! the remove is stage 0, each target's insert one further stage, and the
//! innermost stage commits every captured entry through the k-entry commit
//! (K=2 dispatches to the paper's DCAS, larger fan-outs to CASN). A commit
//! failure at entry k re-runs the init phase of exactly the operation that
//! owns entry k — the generalization of the FIRSTFAILED/SECONDFAILED retry
//! rule — and a failure *before* any commit aborts the whole composition.

use crate::{compose, MoveOutcome, MoveSource, MoveTarget};

pub use crate::compose::MAX_TARGETS;

/// Atomically remove one element from `src` and insert a clone of it into
/// **each** target in `dsts`. Linearizable and lock-free when all objects
/// are lock-free move-ready objects; no concurrent observer can see the
/// element in only a strict subset of `{dsts...}` after removal, or in both
/// the source and any target.
///
/// # Panics
///
/// Panics if `dsts` is empty or holds more than [`MAX_TARGETS`] targets.
pub fn move_to_all<T, S, D>(src: &S, dsts: &[&D]) -> MoveOutcome
where
    T: Clone,
    S: MoveSource<T> + ?Sized,
    D: MoveTarget<T> + ?Sized,
{
    match compose::move_to_all_impl(src, dsts, false) {
        Ok(o) => o,
        Err(_) => unreachable!("infallible engine cannot report OOM"),
    }
}

/// Fallible [`move_to_all`]: a commit-descriptor allocation failure
/// surfaces as `Err` with every object untouched, instead of panicking.
///
/// # Panics
///
/// As [`move_to_all`], on an empty or oversized `dsts`.
pub fn try_move_to_all<T, S, D>(src: &S, dsts: &[&D]) -> Result<MoveOutcome, lfc_alloc::AllocError>
where
    T: Clone,
    S: MoveSource<T> + ?Sized,
    D: MoveTarget<T> + ?Sized,
{
    compose::move_to_all_impl(src, dsts, true)
}
