//! The n-object move of the paper's conclusion (§8):
//!
//! > "Our methodology can also be easily extended to support n operations on
//! > n distinct objects, for example to create functions that remove an item
//! > from one object and insert it into n others atomically."
//!
//! [`move_to_all`] removes one element from the source and inserts a clone
//! of it into *every* target, all at a single linearization point. The
//! structure generalizes Algorithm 3: the remove's `scas` captures entry 0
//! and invokes target 1's insert; each insert's `scas` captures its entry
//! and invokes the next target's insert; the innermost `scas` commits all
//! n+1 captured CASes with a CASN. A CASN failure at entry k aborts the
//! inserts deeper than k and re-runs the init phase of exactly the
//! operation that owns entry k (k = 0 re-runs everything) — the
//! generalization of the FIRSTFAILED/SECONDFAILED retry rule.

use crate::{
    InsertCtx, InsertOutcome, LinPoint, MoveOutcome, MoveSource, MoveTarget, RemoveCtx,
    RemoveOutcome, ScasResult,
};
use lfc_dcas::kcas::{CasnHandle, CasnResult, MAX_ENTRIES};
use lfc_hazard::{pin, Guard};
use std::marker::PhantomData;

/// Maximum number of insert targets (`MAX_ENTRIES` minus the remove entry).
pub const MAX_TARGETS: usize = MAX_ENTRIES - 1;

struct MultiState {
    g: Guard,
    casn: Option<CasnHandle>,
    /// True until some attempt reaches the CASN (paper's `insfailed`).
    ins_failed: bool,
    aliased: bool,
    /// Entry index whose owning operation must redo its init phase.
    retry_at: Option<usize>,
}

struct MultiRemoveCtx<'a, T, D: MoveTarget<T> + ?Sized> {
    targets: &'a [&'a D],
    state: &'a mut MultiState,
    _elem: PhantomData<fn(&T)>,
}

struct MultiInsertCtx<'a, T, D: MoveTarget<T> + ?Sized> {
    /// Which target (0-based) this context belongs to; its CASN entry is
    /// `level + 1`.
    level: usize,
    targets: &'a [&'a D],
    elem: &'a T,
    state: &'a mut MultiState,
}

impl<T: Clone, D: MoveTarget<T> + ?Sized> RemoveCtx<T> for MultiRemoveCtx<'_, T, D> {
    fn scas(&mut self, lp: LinPoint<'_>, elem: &T) -> ScasResult {
        let casn = self
            .state
            .casn
            .as_mut()
            .expect("descriptor present until the move decides");
        casn.truncate(0);
        casn.set_entry(0, lp.word, lp.old, lp.new, lp.hp);
        self.state.ins_failed = true;
        self.state.retry_at = None;
        let r = self.targets[0].insert_with(
            elem.clone(),
            &mut MultiInsertCtx {
                level: 0,
                targets: self.targets,
                elem,
                state: self.state,
            },
        );
        if r == InsertOutcome::Inserted {
            return ScasResult::Success;
        }
        if self.state.ins_failed || self.state.aliased {
            // Some target rejected before any CASN ran (or the move would
            // alias): the composed move cannot complete.
            return ScasResult::Abort;
        }
        // The CASN ran and failed at entry 0 (or an already-consumed inner
        // entry): redo the remove's init phase.
        ScasResult::Fail
    }
}

impl<T: Clone, D: MoveTarget<T> + ?Sized> InsertCtx for MultiInsertCtx<'_, T, D> {
    fn scas(&mut self, lp: LinPoint<'_>) -> ScasResult {
        let entry = self.level + 1;
        {
            let casn = self
                .state
                .casn
                .as_mut()
                .expect("descriptor present until the move decides");
            if casn.aliases(lp.word) {
                self.state.aliased = true;
                return ScasResult::Abort;
            }
            casn.truncate(entry);
            casn.set_entry(entry, lp.word, lp.old, lp.new, lp.hp);
        }
        if self.level + 1 < self.targets.len() {
            // Capture only; descend into the next target's insert.
            let r = self.targets[self.level + 1].insert_with(
                self.elem.clone(),
                &mut MultiInsertCtx {
                    level: self.level + 1,
                    targets: self.targets,
                    elem: self.elem,
                    state: self.state,
                },
            );
            if r == InsertOutcome::Inserted {
                return ScasResult::Success;
            }
            if self.state.aliased || self.state.ins_failed {
                return ScasResult::Abort;
            }
            match self.state.retry_at {
                Some(k) if k == entry => {
                    // Our captured CAS failed: redo this insert's init phase.
                    self.state.retry_at = None;
                    ScasResult::Fail
                }
                // An outer entry must retry: abort this insert.
                _ => ScasResult::Abort,
            }
        } else {
            // Innermost: commit all n+1 linearization points together.
            let casn = self
                .state
                .casn
                .take()
                .expect("descriptor present until the move decides");
            let (result, next) = casn.commit(&self.state.g);
            self.state.casn = next;
            self.state.ins_failed = false;
            match result {
                CasnResult::Success => ScasResult::Success,
                CasnResult::FailedAt(k) if k == entry => ScasResult::Fail,
                CasnResult::FailedAt(k) => {
                    self.state.retry_at = Some(k);
                    ScasResult::Abort
                }
            }
        }
    }
}

/// Atomically remove one element from `src` and insert a clone of it into
/// **each** target in `dsts`. Linearizable and lock-free when all objects
/// are lock-free move-ready objects; no concurrent observer can see the
/// element in only a strict subset of `{dsts...}` after removal, or in both
/// the source and any target.
///
/// # Panics
///
/// Panics if `dsts` is empty or holds more than [`MAX_TARGETS`] targets.
pub fn move_to_all<T, S, D>(src: &S, dsts: &[&D]) -> MoveOutcome
where
    T: Clone,
    S: MoveSource<T> + ?Sized,
    D: MoveTarget<T> + ?Sized,
{
    assert!(
        !dsts.is_empty() && dsts.len() <= MAX_TARGETS,
        "move_to_all supports 1..={MAX_TARGETS} targets"
    );
    let mut state = MultiState {
        g: pin(),
        casn: Some(CasnHandle::new()),
        ins_failed: false,
        aliased: false,
        retry_at: None,
    };
    let outcome = {
        let mut ctx = MultiRemoveCtx {
            targets: dsts,
            state: &mut state,
            _elem: PhantomData,
        };
        src.remove_with(&mut ctx)
    };
    match outcome {
        RemoveOutcome::Removed(_) => MoveOutcome::Moved,
        RemoveOutcome::Empty => MoveOutcome::SourceEmpty,
        RemoveOutcome::Aborted => {
            if state.aliased {
                MoveOutcome::WouldAlias
            } else {
                MoveOutcome::TargetRejected
            }
        }
    }
}
