//! The composition methodology of Cederman & Tsigas: build an atomic,
//! lock-free **move** operation out of any two *move-ready* objects' insert
//! and remove operations by unifying their linearization points (paper §3).
//!
//! # How an object becomes move-ready
//!
//! A move-candidate object (paper Definition 1) exposes its insert and
//! remove through [`MoveTarget::insert_with`] / [`MoveSource::remove_with`],
//! generic over a *linearization context*, and performs three mechanical
//! changes (Definition 2):
//!
//! 1. the CAS at each linearization point becomes a call to the context's
//!    `scas`;
//! 2. the operations abort when `scas` returns [`ScasResult::Abort`]
//!    (freeing any allocated node);
//! 3. every read of a word that could take part in a DCAS goes through
//!    [`lfc_dcas::DAtomic::read`].
//!
//! With the [`NormalCas`] context, `scas` *is* a plain CAS, so `insert_with`
//! / `remove_with` monomorphize back into the object's original operations
//! (the paper keeps a runtime `desc != 0` test instead; hoisting it to the
//! type level preserves the claim that normal operations keep their
//! performance behaviour — validated by the `overhead` benchmark).
//!
//! # The move operation (paper Algorithm 3)
//!
//! [`move_one`] runs the source's remove; at the remove's linearization
//! point the `MoveRemoveCtx` captures the CAS triple instead of executing
//! it and invokes the *target's* insert with the element; at the insert's
//! linearization point the `MoveInsertCtx` captures the second triple and
//! commits both with a DCAS. `FIRSTFAILED` redoes both operations,
//! `SECONDFAILED` redoes only the insert — exactly the paper's step 3.

#![warn(missing_docs)]

pub mod keyed;
pub mod multi;

pub use keyed::{move_keyed, KeyedMoveSource, KeyedMoveTarget};
pub use multi::{move_to_all, MAX_TARGETS};

use lfc_dcas::{DAtomic, DcasResult, DescHandle, Word};
use lfc_hazard::{pin, Guard};
use std::marker::PhantomData;

/// What an `scas` call tells the enclosing operation to do
/// (the paper's `fbool`: true / false / ABORT).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScasResult {
    /// The linearization CAS took effect: finish the cleanup phase.
    Success,
    /// The CAS failed against concurrent activity: redo the init phase.
    Fail,
    /// The composed operation cannot proceed: undo and return failure.
    Abort,
}

/// A prepared linearization point: the CAS triple the operation *would*
/// have executed, plus the protection helpers need.
#[derive(Debug)]
pub struct LinPoint<'a> {
    /// The word being CASed.
    pub word: &'a DAtomic,
    /// Expected value.
    pub old: Word,
    /// Replacement value.
    pub new: Word,
    /// Base address of the allocation containing `word` (a node, or the
    /// object's heap header), adopted by DCAS helpers before they write
    /// (paper's `hp` argument to `scas`, Lemma 6). Zero if none.
    pub hp: usize,
}

/// Linearization context for remove operations (paper Algorithm 2, the
/// `scas` overload that carries the element being removed).
pub trait RemoveCtx<T> {
    /// Called at the remove's linearization point, with the element that
    /// will be removed if the CAS succeeds (available *before* the
    /// linearization point — move-candidate requirement 4).
    fn scas(&mut self, lp: LinPoint<'_>, elem: &T) -> ScasResult;
}

/// Linearization context for insert operations.
pub trait InsertCtx {
    /// Called at the insert's linearization point.
    fn scas(&mut self, lp: LinPoint<'_>) -> ScasResult;
}

/// The identity context: `scas` is a plain CAS (paper lines M20–M21,
/// M38–M39). Normal operations use this.
#[derive(Clone, Copy, Debug, Default)]
pub struct NormalCas;

impl<T> RemoveCtx<T> for NormalCas {
    #[inline]
    fn scas(&mut self, lp: LinPoint<'_>, _elem: &T) -> ScasResult {
        if lp.word.cas_word(lp.old, lp.new) {
            ScasResult::Success
        } else {
            ScasResult::Fail
        }
    }
}

impl InsertCtx for NormalCas {
    #[inline]
    fn scas(&mut self, lp: LinPoint<'_>) -> ScasResult {
        if lp.word.cas_word(lp.old, lp.new) {
            ScasResult::Success
        } else {
            ScasResult::Fail
        }
    }
}

/// Result of a (contextualized) remove.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoveOutcome<T> {
    /// An element was removed.
    Removed(T),
    /// The object was empty (or the key absent).
    Empty,
    /// `scas` demanded an abort: the composed operation cannot complete
    /// (e.g. the move's insert was rejected by a full target).
    Aborted,
}

/// Result of a (contextualized) insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The element is in.
    Inserted,
    /// The object rejected the element (bounded/full, duplicate key, or the
    /// insert aborted on behalf of the composed move).
    Rejected,
}

/// An object whose remove operation is move-ready (paper Definition 2).
pub trait MoveSource<T> {
    /// The object's remove, generic over the linearization context.
    /// `remove_with(&mut NormalCas)` must behave exactly like the object's
    /// ordinary remove operation.
    fn remove_with<C: RemoveCtx<T>>(&self, ctx: &mut C) -> RemoveOutcome<T>;
}

/// An object whose insert operation is move-ready.
pub trait MoveTarget<T> {
    /// The object's insert, generic over the linearization context.
    fn insert_with<C: InsertCtx>(&self, elem: T, ctx: &mut C) -> InsertOutcome;
}

/// Outcome of a composed move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveOutcome {
    /// The element was moved atomically: no concurrent observer could see it
    /// absent from both objects or present in both.
    Moved,
    /// The source had nothing to remove.
    SourceEmpty,
    /// The target permanently rejected the element (e.g. bounded and full).
    TargetRejected,
    /// The two linearization points landed on the *same* memory word (e.g.
    /// a stack moved onto itself), which a two-word CAS cannot express.
    WouldAlias,
}

/// Shared state of one move invocation (the paper's thread-local `desc`,
/// `insfailed`, `ltarget` made explicit).
pub(crate) struct MoveState {
    pub(crate) g: Guard,
    pub(crate) desc: Option<DescHandle>,
    pub(crate) ins_failed: bool,
    pub(crate) aliased: bool,
}

/// The remove-side context of a move (paper lines M9–M19).
struct MoveRemoveCtx<'a, T, D: MoveTarget<T> + ?Sized> {
    target: &'a D,
    state: &'a mut MoveState,
    _elem: PhantomData<fn(&T)>,
}

/// The insert-side context of a move (paper lines M22–M37).
pub(crate) struct MoveInsertCtx<'a> {
    pub(crate) state: &'a mut MoveState,
}

impl<T: Clone, D: MoveTarget<T> + ?Sized> RemoveCtx<T> for MoveRemoveCtx<'_, T, D> {
    fn scas(&mut self, lp: LinPoint<'_>, elem: &T) -> ScasResult {
        // M10–M14: store the remove-side CAS triple in the descriptor,
        // allocating it lazily — a move on an empty source returns before
        // ever reaching a linearization point and never touches the pool.
        self.state
            .desc
            .get_or_insert_with(DescHandle::new)
            .set_first(lp.word, lp.old, lp.new, lp.hp);
        // M15: assume the insert never reaches its linearization point.
        self.state.ins_failed = true;
        // M16: run the *entire* insert operation on the target, with the
        // element the remove is about to take out.
        let inserted = self
            .target
            .insert_with(elem.clone(), &mut MoveInsertCtx { state: self.state });
        // M17–M18: the insert failed before attempting the DCAS — the move
        // cannot complete; abort the remove.
        if self.state.ins_failed {
            return ScasResult::Abort;
        }
        // M19: otherwise the DCAS ran. Inserted means it succeeded (and so
        // did our remove); Rejected means FIRSTFAILED: our captured CAS is
        // stale, the insert aborted, and the remove must redo its init phase.
        match inserted {
            InsertOutcome::Inserted => ScasResult::Success,
            InsertOutcome::Rejected => ScasResult::Fail,
        }
    }
}

impl InsertCtx for MoveInsertCtx<'_> {
    fn scas(&mut self, lp: LinPoint<'_>) -> ScasResult {
        let mut desc = self
            .state
            .desc
            .take()
            .expect("descriptor present until the move decides");
        // A DCAS on a single word cannot succeed; report the aliasing
        // instead of retrying forever (see `MoveOutcome::WouldAlias`).
        if lp.word as *const DAtomic as usize == desc.first_word_addr() {
            self.state.desc = Some(desc);
            self.state.aliased = true;
            return ScasResult::Abort;
        }
        // M24–M27: store the insert-side triple; M28: run the DCAS.
        desc.set_second(lp.word, lp.old, lp.new, lp.hp);
        let (result, next) = desc.commit(&self.state.g);
        // M29–M31: a failed DCAS was published; `commit` already produced a
        // fresh descriptor (carrying the first triple) for the next attempt.
        self.state.desc = next;
        // M32: the DCAS ran, so the insert did reach its linearization point.
        self.state.ins_failed = false;
        match result {
            // M33–M34: the *remove's* CAS failed: abort the insert so the
            // remove can redo its init phase.
            DcasResult::FirstFailed => ScasResult::Abort,
            // M35–M36: the insert's CAS failed: redo the insert init phase.
            DcasResult::SecondFailed => ScasResult::Fail,
            DcasResult::Success => ScasResult::Success,
        }
    }
}

/// Atomically move one element from `src` to `dst` (paper Algorithm 3).
///
/// Lock-free and linearizable when `src` and `dst` are lock-free move-ready
/// objects (paper Theorem 2): the element is never observable in both
/// objects, nor absent from both, at any point in time.
///
/// The element type must be `Clone`: the value is read (cloned) from the
/// source *before* the unified linearization point — move-candidate
/// requirement 4 — and materialized in the target's freshly allocated node.
pub fn move_one<T, S, D>(src: &S, dst: &D) -> MoveOutcome
where
    T: Clone,
    S: MoveSource<T> + ?Sized,
    D: MoveTarget<T> + ?Sized,
{
    let mut state = MoveState {
        g: pin(),
        desc: None,
        ins_failed: false,
        aliased: false,
    };
    let outcome = {
        let mut ctx = MoveRemoveCtx {
            target: dst,
            state: &mut state,
            _elem: PhantomData,
        };
        src.remove_with(&mut ctx)
    };
    match outcome {
        RemoveOutcome::Removed(_moved_clone) => MoveOutcome::Moved,
        RemoveOutcome::Empty => MoveOutcome::SourceEmpty,
        RemoveOutcome::Aborted => {
            if state.aliased {
                MoveOutcome::WouldAlias
            } else {
                MoveOutcome::TargetRejected
            }
        }
    }
}

impl<T, S: MoveSource<T>> MoveSource<T> for &S {
    fn remove_with<C: RemoveCtx<T>>(&self, ctx: &mut C) -> RemoveOutcome<T> {
        (**self).remove_with(ctx)
    }
}

impl<T, D: MoveTarget<T>> MoveTarget<T> for &D {
    fn insert_with<C: InsertCtx>(&self, elem: T, ctx: &mut C) -> InsertOutcome {
        (**self).insert_with(elem, ctx)
    }
}

#[allow(dead_code)]
fn assert_traits() {
    fn is_send_sync<X: Send + Sync>() {}
    is_send_sync::<NormalCas>();
}
