//! The composition methodology of Cederman & Tsigas: build an atomic,
//! lock-free **move** operation out of any two *move-ready* objects' insert
//! and remove operations by unifying their linearization points (paper §3).
//!
//! # How an object becomes move-ready
//!
//! A move-candidate object (paper Definition 1) exposes its insert and
//! remove through [`MoveTarget::insert_with`] / [`MoveSource::remove_with`],
//! generic over a *linearization context*, and performs three mechanical
//! changes (Definition 2):
//!
//! 1. the CAS at each linearization point becomes a call to the context's
//!    `scas`;
//! 2. the operations abort when `scas` returns [`ScasResult::Abort`]
//!    (freeing any allocated node);
//! 3. every read of a word that could take part in a DCAS goes through
//!    [`lfc_dcas::DAtomic::read`].
//!
//! With the [`NormalCas`] context, `scas` *is* a plain CAS, so `insert_with`
//! / `remove_with` monomorphize back into the object's original operations
//! (the paper keeps a runtime `desc != 0` test instead; hoisting it to the
//! type level preserves the claim that normal operations keep their
//! performance behaviour — validated by the `overhead` benchmark).
//!
//! # The move operation (paper Algorithm 3), generalized
//!
//! [`move_one`] runs the source's remove; at the remove's linearization
//! point the composition engine ([`compose`]) captures the CAS triple
//! instead of executing it and invokes the *target's* insert with the
//! element; at the insert's linearization point the engine captures the
//! second triple and commits both through the unified k-entry commit
//! (`lfc_dcas::commit_entries`, where DCAS is the K=2 specialization).
//! `FIRSTFAILED` redoes both operations, `SECONDFAILED` redoes only the
//! insert — exactly the paper's step 3, and the K=2 instance of the
//! engine's generalized retry rule.
//!
//! Every composed operation — [`move_one`], [`move_keyed`],
//! [`move_to_all`], [`swap`], [`move_keyed_to_all`],
//! [`move_keyed_to_unkeyed`] and user-defined [`compose::Composition`]
//! chains — is a thin wrapper over that one engine.

#![warn(missing_docs)]

pub mod batch;
pub mod compose;
pub mod keyed;
pub mod multi;
mod sync;

pub use batch::{BatchGate, BatchOp, MoveKeyedOp, MoveKeyedToAllOp, MoveOneOp, SwapOp};
pub use compose::{
    move_keyed_to_all, move_keyed_to_unkeyed, swap, try_move_keyed_to_all,
    try_move_keyed_to_unkeyed, try_swap, Composition, SwapOutcome, MAX_ENTRIES,
};
pub use keyed::{move_keyed, try_move_keyed, KeyedMoveSource, KeyedMoveTarget};
pub use multi::{move_to_all, try_move_to_all, MAX_TARGETS};

use lfc_dcas::{DAtomic, Word};

/// What an `scas` call tells the enclosing operation to do
/// (the paper's `fbool`: true / false / ABORT).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScasResult {
    /// The linearization CAS took effect: finish the cleanup phase.
    Success,
    /// The CAS failed against concurrent activity: redo the init phase.
    Fail,
    /// The composed operation cannot proceed: undo and return failure.
    Abort,
}

/// A prepared linearization point: the CAS triple the operation *would*
/// have executed, plus the protection helpers need.
#[derive(Debug)]
pub struct LinPoint<'a> {
    /// The word being CASed.
    pub word: &'a DAtomic,
    /// Expected value.
    pub old: Word,
    /// Replacement value.
    pub new: Word,
    /// Base address of the allocation containing `word` (a node, or the
    /// object's heap header), adopted by DCAS helpers before they write
    /// (paper's `hp` argument to `scas`, Lemma 6). Zero if none.
    pub hp: usize,
}

/// Linearization context for remove operations (paper Algorithm 2, the
/// `scas` overload that carries the element being removed).
pub trait RemoveCtx<T> {
    /// Called at the remove's linearization point, with the element that
    /// will be removed if the CAS succeeds (available *before* the
    /// linearization point — move-candidate requirement 4).
    fn scas(&mut self, lp: LinPoint<'_>, elem: &T) -> ScasResult;

    /// Whether the operation driven by this context may linearize through
    /// an *elimination* exchange instead of its structure CAS (PR 7).
    /// `false` for every composed context: a composition's linearization
    /// point must be a captured CAS triple — pair cancellation has no word
    /// to capture. Only [`NormalCas`] (a plain, stand-alone operation)
    /// opts in.
    fn eliminable(&self) -> bool {
        false
    }
}

/// Linearization context for insert operations.
pub trait InsertCtx {
    /// Called at the insert's linearization point.
    fn scas(&mut self, lp: LinPoint<'_>) -> ScasResult;

    /// See [`RemoveCtx::eliminable`].
    fn eliminable(&self) -> bool {
        false
    }
}

/// The identity context: `scas` is a plain CAS (paper lines M20–M21,
/// M38–M39). Normal operations use this.
#[derive(Clone, Copy, Debug, Default)]
pub struct NormalCas;

impl<T> RemoveCtx<T> for NormalCas {
    #[inline]
    fn scas(&mut self, lp: LinPoint<'_>, _elem: &T) -> ScasResult {
        if lp.word.cas_word(lp.old, lp.new) {
            ScasResult::Success
        } else {
            ScasResult::Fail
        }
    }

    #[inline]
    fn eliminable(&self) -> bool {
        true
    }
}

impl InsertCtx for NormalCas {
    #[inline]
    fn scas(&mut self, lp: LinPoint<'_>) -> ScasResult {
        if lp.word.cas_word(lp.old, lp.new) {
            ScasResult::Success
        } else {
            ScasResult::Fail
        }
    }

    #[inline]
    fn eliminable(&self) -> bool {
        true
    }
}

/// Result of a (contextualized) remove.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoveOutcome<T> {
    /// An element was removed.
    Removed(T),
    /// The object was empty (or the key absent).
    Empty,
    /// `scas` demanded an abort: the composed operation cannot complete
    /// (e.g. the move's insert was rejected by a full target).
    Aborted,
}

/// Result of a (contextualized) insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The element is in.
    Inserted,
    /// The object rejected the element (bounded/full, duplicate key, or the
    /// insert aborted on behalf of the composed move).
    Rejected,
}

/// An object whose remove operation is move-ready (paper Definition 2).
pub trait MoveSource<T> {
    /// The object's remove, generic over the linearization context.
    /// `remove_with(&mut NormalCas)` must behave exactly like the object's
    /// ordinary remove operation.
    fn remove_with<C: RemoveCtx<T>>(&self, ctx: &mut C) -> RemoveOutcome<T>;
}

/// An object whose insert operation is move-ready.
pub trait MoveTarget<T> {
    /// The object's insert, generic over the linearization context.
    fn insert_with<C: InsertCtx>(&self, elem: T, ctx: &mut C) -> InsertOutcome;
}

/// Outcome of a composed move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveOutcome {
    /// The element was moved atomically: no concurrent observer could see it
    /// absent from both objects or present in both.
    Moved,
    /// The source had nothing to remove.
    SourceEmpty,
    /// The target permanently rejected the element (e.g. bounded and full).
    TargetRejected,
    /// The two linearization points landed on the *same* memory word (e.g.
    /// a stack moved onto itself), which a two-word CAS cannot express.
    WouldAlias,
}

/// Atomically move one element from `src` to `dst` (paper Algorithm 3).
///
/// Lock-free and linearizable when `src` and `dst` are lock-free move-ready
/// objects (paper Theorem 2): the element is never observable in both
/// objects, nor absent from both, at any point in time.
///
/// The element type must be `Clone`: the value is read (cloned) from the
/// source *before* the unified linearization point — move-candidate
/// requirement 4 — and materialized in the target's freshly allocated node.
///
/// A thin wrapper over the unified composition engine: the remove is
/// stage 0, the insert stage 1, and the commit is the K=2 (DCAS) case of
/// the k-entry commit.
pub fn move_one<T, S, D>(src: &S, dst: &D) -> MoveOutcome
where
    T: Clone,
    S: MoveSource<T> + ?Sized,
    D: MoveTarget<T> + ?Sized,
{
    match compose::move_one_impl(src, dst, false) {
        Ok(o) => o,
        Err(_) => unreachable!("infallible engine cannot report OOM"),
    }
}

/// Fallible [`move_one`]: a commit-descriptor allocation failure (genuine
/// exhaustion, or injected via `lfc_runtime::fault`'s `"dcas.desc"` /
/// `"dcas.casn"` / `"dcas.rdcss"` sites) surfaces as `Err` with both
/// objects untouched, instead of panicking. The solo-regime fast path
/// allocates nothing and cannot fail.
pub fn try_move_one<T, S, D>(src: &S, dst: &D) -> Result<MoveOutcome, lfc_alloc::AllocError>
where
    T: Clone,
    S: MoveSource<T> + ?Sized,
    D: MoveTarget<T> + ?Sized,
{
    compose::move_one_impl(src, dst, true)
}

impl<T, S: MoveSource<T>> MoveSource<T> for &S {
    fn remove_with<C: RemoveCtx<T>>(&self, ctx: &mut C) -> RemoveOutcome<T> {
        (**self).remove_with(ctx)
    }
}

impl<T, D: MoveTarget<T>> MoveTarget<T> for &D {
    fn insert_with<C: InsertCtx>(&self, elem: T, ctx: &mut C) -> InsertOutcome {
        (**self).insert_with(elem, ctx)
    }
}

/// Object-safe bridge for *heterogeneous* target collections: a `&[&dyn
/// DynMoveTarget<T>]` slice can mix queues, stacks and slots in one
/// [`move_to_all`] / [`swap`] call. Implemented for every `MoveTarget<T> +
/// Sync` via the blanket impl; `dyn DynMoveTarget<T>` itself implements
/// [`MoveTarget`], so trait objects slot into every composed operation.
pub trait DynMoveTarget<T>: Sync {
    /// Run the target's move-ready insert through a dynamically-dispatched
    /// linearization context.
    fn insert_dyn(&self, elem: T, ctx: &mut dyn InsertCtx) -> InsertOutcome;
}

impl<T, X: MoveTarget<T> + Sync> DynMoveTarget<T> for X {
    fn insert_dyn(&self, elem: T, ctx: &mut dyn InsertCtx) -> InsertOutcome {
        /// Width adapter: re-monomorphize the dynamic context so the
        /// target's generic `insert_with` can take it.
        struct Fwd<'a>(&'a mut dyn InsertCtx);
        impl InsertCtx for Fwd<'_> {
            fn scas(&mut self, lp: LinPoint<'_>) -> ScasResult {
                self.0.scas(lp)
            }
            fn eliminable(&self) -> bool {
                self.0.eliminable()
            }
        }
        self.insert_with(elem, &mut Fwd(ctx))
    }
}

impl<T> MoveTarget<T> for dyn DynMoveTarget<T> + '_ {
    fn insert_with<C: InsertCtx>(&self, elem: T, ctx: &mut C) -> InsertOutcome {
        self.insert_dyn(elem, ctx)
    }
}

#[allow(dead_code)]
fn assert_traits() {
    fn is_send_sync<X: Send + Sync>() {}
    is_send_sync::<NormalCas>();
}

/// Seeded-bug switches for the model checker (mirrors
/// `lfc_hazard::model_toggles`): compiled only under `--cfg lfc_model`,
/// flipped by scenarios to demonstrate the checker *would* catch the
/// corresponding protocol regression.
#[cfg(lfc_model)]
pub mod model_toggles {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Commit batched requests **without** the result-flag CASN entry and
    /// publish the flag by a separate CAS afterwards — the naive combiner
    /// handoff whose window lets two drainers double-execute one request.
    pub static SKIP_FLAG_ENTRY: AtomicBool = AtomicBool::new(false);

    pub(crate) fn skip_flag_entry() -> bool {
        SKIP_FLAG_ENTRY.load(Ordering::Relaxed)
    }
}
