//! Keyed composition: the paper's opening scenario (§1.1) —
//!
//! > "one can imagine a scenario where one wants to compose together a
//! > hash-map and a linked list to provide a move operation for the user"
//!
//! The linearization contexts are key-agnostic (a keyed remove still
//! linearizes at one CAS and still has its element available beforehand),
//! so keyed objects plug into the same unified engine ([`crate::compose`])
//! as everything else: [`move_keyed`] is a two-stage composition, and the
//! keyed traits also power [`crate::move_keyed_to_all`],
//! [`crate::move_keyed_to_unkeyed`] and keyed [`crate::Composition`]
//! stages.
//!
//! # Captures versus internal restructuring (PR 5)
//!
//! A keyed object may run *structural* CASes that are not linearization
//! points — the split-ordered hash map lazily threads bucket dummies into
//! the very chains its operations traverse while its directory grows.
//! That composes with captures by construction: a capture's entry is
//! CAS-validated at commit (a structural write to the captured word fails
//! the commit and re-runs exactly the owning stage's init phase, which
//! re-locates under the new shape), and the structural nodes themselves
//! are never the *subject* of a `LinPoint` — only, at most, hosts of a
//! predecessor word pinned via `LinPoint::hp`. Keyed implementations must
//! preserve both halves of that contract: linearization points only on
//! semantically meaningful words, and every `scas` retry re-running the
//! locate phase from scratch.

use crate::{compose, InsertCtx, InsertOutcome, MoveOutcome, RemoveCtx, RemoveOutcome};

/// An object whose keyed remove is move-ready.
pub trait KeyedMoveSource<K, T> {
    /// Remove the element stored under `key`, linearizing through `ctx`.
    fn remove_key_with<C: RemoveCtx<T>>(&self, key: &K, ctx: &mut C) -> RemoveOutcome<T>;
}

/// An object whose keyed insert is move-ready.
pub trait KeyedMoveTarget<K, T> {
    /// Insert `elem` under `key`, linearizing through `ctx`. Rejected on
    /// duplicate keys (set semantics).
    fn insert_key_with<C: InsertCtx>(&self, key: K, elem: T, ctx: &mut C) -> InsertOutcome;
}

impl<K, T, S: KeyedMoveSource<K, T>> KeyedMoveSource<K, T> for &S {
    fn remove_key_with<C: RemoveCtx<T>>(&self, key: &K, ctx: &mut C) -> RemoveOutcome<T> {
        (**self).remove_key_with(key, ctx)
    }
}

impl<K, T, D: KeyedMoveTarget<K, T>> KeyedMoveTarget<K, T> for &D {
    fn insert_key_with<C: InsertCtx>(&self, key: K, elem: T, ctx: &mut C) -> InsertOutcome {
        (**self).insert_key_with(key, elem, ctx)
    }
}

/// Atomically move the element stored under `key` from `src` to `dst`
/// (keeping its key). Returns [`MoveOutcome::SourceEmpty`] when the key is
/// absent from the source and [`MoveOutcome::TargetRejected`] when the
/// target already holds the key (or is full).
///
/// A thin wrapper over the unified composition engine (keyed remove at
/// stage 0, keyed insert at stage 1).
pub fn move_keyed<K, T, S, D>(src: &S, key: &K, dst: &D) -> MoveOutcome
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    match compose::move_keyed_impl(src, key, dst, false) {
        Ok(o) => o,
        Err(_) => unreachable!("infallible engine cannot report OOM"),
    }
}

/// Fallible [`move_keyed`]: a commit-descriptor allocation failure
/// (genuine exhaustion, or injected via `lfc_runtime::fault`) surfaces as
/// `Err` with both objects untouched, instead of panicking.
pub fn try_move_keyed<K, T, S, D>(
    src: &S,
    key: &K,
    dst: &D,
) -> Result<MoveOutcome, lfc_alloc::AllocError>
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    compose::move_keyed_impl(src, key, dst, true)
}
