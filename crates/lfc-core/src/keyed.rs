//! Keyed composition: the paper's opening scenario (§1.1) —
//!
//! > "one can imagine a scenario where one wants to compose together a
//! > hash-map and a linked list to provide a move operation for the user"
//!
//! The linearization contexts are key-agnostic (a keyed remove still
//! linearizes at one CAS and still has its element available beforehand),
//! so keyed objects plug into the same machinery: [`move_keyed`] removes
//! the element stored under `key` in the source and inserts it under the
//! same key into the target, atomically.

use crate::{
    InsertCtx, InsertOutcome, LinPoint, MoveOutcome, MoveState, RemoveCtx, RemoveOutcome,
    ScasResult,
};
use lfc_dcas::DescHandle;
use lfc_hazard::pin;
use std::marker::PhantomData;

/// An object whose keyed remove is move-ready.
pub trait KeyedMoveSource<K, T> {
    /// Remove the element stored under `key`, linearizing through `ctx`.
    fn remove_key_with<C: RemoveCtx<T>>(&self, key: &K, ctx: &mut C) -> RemoveOutcome<T>;
}

/// An object whose keyed insert is move-ready.
pub trait KeyedMoveTarget<K, T> {
    /// Insert `elem` under `key`, linearizing through `ctx`. Rejected on
    /// duplicate keys (set semantics).
    fn insert_key_with<C: InsertCtx>(&self, key: K, elem: T, ctx: &mut C) -> InsertOutcome;
}

struct KeyedRemoveCtx<'a, K, T, D: KeyedMoveTarget<K, T> + ?Sized> {
    target: &'a D,
    key: &'a K,
    state: &'a mut MoveState,
    _elem: PhantomData<fn(&T)>,
}

impl<K: Clone, T: Clone, D: KeyedMoveTarget<K, T> + ?Sized> RemoveCtx<T>
    for KeyedRemoveCtx<'_, K, T, D>
{
    fn scas(&mut self, lp: LinPoint<'_>, elem: &T) -> ScasResult {
        // Lazily allocated: an absent key never touches the descriptor pool.
        self.state
            .desc
            .get_or_insert_with(DescHandle::new)
            .set_first(lp.word, lp.old, lp.new, lp.hp);
        self.state.ins_failed = true;
        let inserted = self.target.insert_key_with(
            self.key.clone(),
            elem.clone(),
            &mut crate::MoveInsertCtx { state: self.state },
        );
        if self.state.ins_failed {
            return ScasResult::Abort;
        }
        match inserted {
            InsertOutcome::Inserted => ScasResult::Success,
            InsertOutcome::Rejected => ScasResult::Fail,
        }
    }
}

/// Atomically move the element stored under `key` from `src` to `dst`
/// (keeping its key). Returns [`MoveOutcome::SourceEmpty`] when the key is
/// absent from the source and [`MoveOutcome::TargetRejected`] when the
/// target already holds the key (or is full).
pub fn move_keyed<K, T, S, D>(src: &S, key: &K, dst: &D) -> MoveOutcome
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    let mut state = MoveState {
        g: pin(),
        desc: None,
        ins_failed: false,
        aliased: false,
    };
    let outcome = {
        let mut ctx = KeyedRemoveCtx {
            target: dst,
            key,
            state: &mut state,
            _elem: PhantomData,
        };
        src.remove_key_with(key, &mut ctx)
    };
    match outcome {
        RemoveOutcome::Removed(_) => MoveOutcome::Moved,
        RemoveOutcome::Empty => MoveOutcome::SourceEmpty,
        RemoveOutcome::Aborted => {
            if state.aliased {
                MoveOutcome::WouldAlias
            } else {
                MoveOutcome::TargetRejected
            }
        }
    }
}
