//! Keyed composition: the paper's opening scenario (§1.1) —
//!
//! > "one can imagine a scenario where one wants to compose together a
//! > hash-map and a linked list to provide a move operation for the user"
//!
//! The linearization contexts are key-agnostic (a keyed remove still
//! linearizes at one CAS and still has its element available beforehand),
//! so keyed objects plug into the same unified engine ([`crate::compose`])
//! as everything else: [`move_keyed`] is a two-stage composition, and the
//! keyed traits also power [`crate::move_keyed_to_all`],
//! [`crate::move_keyed_to_unkeyed`] and keyed [`crate::Composition`]
//! stages.

use crate::{compose, InsertCtx, InsertOutcome, MoveOutcome, RemoveCtx, RemoveOutcome};

/// An object whose keyed remove is move-ready.
pub trait KeyedMoveSource<K, T> {
    /// Remove the element stored under `key`, linearizing through `ctx`.
    fn remove_key_with<C: RemoveCtx<T>>(&self, key: &K, ctx: &mut C) -> RemoveOutcome<T>;
}

/// An object whose keyed insert is move-ready.
pub trait KeyedMoveTarget<K, T> {
    /// Insert `elem` under `key`, linearizing through `ctx`. Rejected on
    /// duplicate keys (set semantics).
    fn insert_key_with<C: InsertCtx>(&self, key: K, elem: T, ctx: &mut C) -> InsertOutcome;
}

impl<K, T, S: KeyedMoveSource<K, T>> KeyedMoveSource<K, T> for &S {
    fn remove_key_with<C: RemoveCtx<T>>(&self, key: &K, ctx: &mut C) -> RemoveOutcome<T> {
        (**self).remove_key_with(key, ctx)
    }
}

impl<K, T, D: KeyedMoveTarget<K, T>> KeyedMoveTarget<K, T> for &D {
    fn insert_key_with<C: InsertCtx>(&self, key: K, elem: T, ctx: &mut C) -> InsertOutcome {
        (**self).insert_key_with(key, elem, ctx)
    }
}

/// Atomically move the element stored under `key` from `src` to `dst`
/// (keeping its key). Returns [`MoveOutcome::SourceEmpty`] when the key is
/// absent from the source and [`MoveOutcome::TargetRejected`] when the
/// target already holds the key (or is full).
///
/// A thin wrapper over the unified composition engine (keyed remove at
/// stage 0, keyed insert at stage 1).
pub fn move_keyed<K, T, S, D>(src: &S, key: &K, dst: &D) -> MoveOutcome
where
    K: Clone,
    T: Clone,
    S: KeyedMoveSource<K, T> + ?Sized,
    D: KeyedMoveTarget<K, T> + ?Sized,
{
    compose::move_keyed_impl(src, key, dst)
}
