//! End-to-end tests of the move methodology on the smallest possible
//! move-ready object: a one-element slot. The slot follows the move-ready
//! discipline exactly (scas at the linearization point, abort support,
//! `read` for all protocol words), so these tests exercise every branch of
//! paper Algorithm 3 — including the abort path that unbounded queues and
//! stacks never take.

use lfc_core::{
    move_one, InsertCtx, InsertOutcome, LinPoint, MoveOutcome, MoveSource, MoveTarget, NormalCas,
    RemoveCtx, RemoveOutcome, ScasResult,
};
use lfc_dcas::DAtomic;
use lfc_hazard::{pin, slot as hslot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct SlotNode<T> {
    val: T,
}

/// A lock-free one-element container (a trivially verifiable move-candidate:
/// both linearization points are CASes on its single word).
struct Slot<T: Clone + Send + Sync + 'static> {
    word: &'static DAtomic,
    _marker: std::marker::PhantomData<T>,
}

unsafe fn reclaim_slot_node<T>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut SlotNode<T>) });
}

impl<T: Clone + Send + Sync + 'static> Slot<T> {
    fn new() -> Self {
        Slot {
            // Tests leak the header word: simplest way to satisfy the
            // "allocation containing the word outlives helpers" contract.
            word: Box::leak(Box::new(DAtomic::new(0))),
            _marker: std::marker::PhantomData,
        }
    }

    fn insert(&self, v: T) -> bool {
        self.insert_with(v, &mut NormalCas) == InsertOutcome::Inserted
    }

    fn remove(&self) -> Option<T> {
        match self.remove_with(&mut NormalCas) {
            RemoveOutcome::Removed(v) => Some(v),
            _ => None,
        }
    }

    fn peek_occupied(&self) -> bool {
        let g = pin();
        self.word.read(&g) != 0
    }
}

impl<T: Clone + Send + Sync + 'static> MoveTarget<T> for Slot<T> {
    fn insert_with<C: InsertCtx>(&self, elem: T, ctx: &mut C) -> InsertOutcome {
        let g = pin();
        let node = Box::into_raw(Box::new(SlotNode { val: elem }));
        loop {
            let cur = self.word.read(&g);
            if cur != 0 {
                // Full: fail *before* the linearization point.
                drop(unsafe { Box::from_raw(node) });
                return InsertOutcome::Rejected;
            }
            match ctx.scas(LinPoint {
                word: self.word,
                old: 0,
                new: node as usize,
                hp: self.word as *const DAtomic as usize,
            }) {
                ScasResult::Success => return InsertOutcome::Inserted,
                ScasResult::Fail => continue,
                ScasResult::Abort => {
                    drop(unsafe { Box::from_raw(node) });
                    return InsertOutcome::Rejected;
                }
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> MoveSource<T> for Slot<T> {
    fn remove_with<C: RemoveCtx<T>>(&self, ctx: &mut C) -> RemoveOutcome<T> {
        let g = pin();
        loop {
            let cur = self.word.read(&g);
            if cur == 0 {
                return RemoveOutcome::Empty;
            }
            g.set(hslot::REM0, cur);
            if self.word.read(&g) != cur {
                continue;
            }
            // Element accessible before the linearization point (req. 4).
            let val = unsafe { (*(cur as *const SlotNode<T>)).val.clone() };
            let r = ctx.scas(
                LinPoint {
                    word: self.word,
                    old: cur,
                    new: 0,
                    hp: self.word as *const DAtomic as usize,
                },
                &val,
            );
            g.clear(hslot::REM0);
            match r {
                ScasResult::Success => {
                    unsafe { lfc_hazard::retire(cur as *mut u8, reclaim_slot_node::<T>) };
                    return RemoveOutcome::Removed(val);
                }
                ScasResult::Fail => continue,
                ScasResult::Abort => return RemoveOutcome::Aborted,
            }
        }
    }
}

#[test]
fn slot_roundtrip() {
    let s: Slot<u64> = Slot::new();
    assert!(!s.peek_occupied());
    assert!(s.insert(7));
    assert!(s.peek_occupied());
    assert!(!s.insert(8), "slot is full");
    assert_eq!(s.remove(), Some(7));
    assert_eq!(s.remove(), None);
}

#[test]
fn move_between_slots() {
    let a: Slot<u64> = Slot::new();
    let b: Slot<u64> = Slot::new();
    a.insert(42);
    assert_eq!(move_one(&a, &b), MoveOutcome::Moved);
    assert_eq!(a.remove(), None, "element left the source");
    assert_eq!(b.remove(), Some(42), "element arrived at the target");
}

#[test]
fn move_from_empty_source() {
    let a: Slot<u64> = Slot::new();
    let b: Slot<u64> = Slot::new();
    assert_eq!(move_one(&a, &b), MoveOutcome::SourceEmpty);
    assert!(!b.peek_occupied());
}

#[test]
fn move_to_full_target_aborts_and_preserves_source() {
    let a: Slot<u64> = Slot::new();
    let b: Slot<u64> = Slot::new();
    a.insert(1);
    b.insert(2);
    assert_eq!(move_one(&a, &b), MoveOutcome::TargetRejected);
    // The abort path must leave the source untouched.
    assert_eq!(a.remove(), Some(1));
    assert_eq!(b.remove(), Some(2));
}

#[test]
fn self_move_fails_cleanly() {
    // A slot moved onto itself is caught by the insert's "full" check (the
    // element has not left yet when the insert runs), so the move aborts as
    // TargetRejected before the aliasing detection can even trigger. The
    // WouldAlias outcome is exercised by the Treiber stack tests, where the
    // insert does reach its linearization point on the same word.
    let a: Slot<u64> = Slot::new();
    a.insert(9);
    assert_eq!(move_one(&a, &a), MoveOutcome::TargetRejected);
    assert_eq!(
        a.remove(),
        Some(9),
        "slot unchanged after self-move attempt"
    );
}

#[test]
fn chain_of_moves_preserves_value() {
    let slots: Vec<Slot<u64>> = (0..8).map(|_| Slot::new()).collect();
    slots[0].insert(0xBEEF);
    for i in 0..7 {
        assert_eq!(move_one(&slots[i], &slots[i + 1]), MoveOutcome::Moved);
    }
    for s in &slots[..7] {
        assert!(!s.peek_occupied());
    }
    assert_eq!(slots[7].remove(), Some(0xBEEF));
}

#[test]
fn concurrent_ping_pong_conserves_the_token() {
    // One token, two slots, many movers in both directions. At every moment
    // the token is in exactly one slot; no move may duplicate or lose it.
    let a = Arc::new(Slot::<u64>::new());
    let b = Arc::new(Slot::<u64>::new());
    a.insert(0x7011);
    let ab = Arc::new(AtomicUsize::new(0));
    let ba = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for dir in 0..2 {
            for _ in 0..3 {
                let a = a.clone();
                let b = b.clone();
                let ab = ab.clone();
                let ba = ba.clone();
                s.spawn(move || {
                    for _ in 0..2_000 {
                        if dir == 0 {
                            if move_one(&*a, &*b) == MoveOutcome::Moved {
                                ab.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if move_one(&*b, &*a) == MoveOutcome::Moved {
                            ba.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        }
    });

    let in_a = a.remove();
    let in_b = b.remove();
    let ab = ab.load(Ordering::Relaxed) as i64;
    let ba = ba.load(Ordering::Relaxed) as i64;
    match (in_a, in_b) {
        (Some(v), None) => {
            assert_eq!(v, 0x7011);
            assert_eq!(ab, ba, "token back home: balanced moves");
        }
        (None, Some(v)) => {
            assert_eq!(v, 0x7011);
            assert_eq!(ab, ba + 1, "token at b: one extra a->b move");
        }
        other => panic!("token duplicated or lost: {other:?}"),
    }
}

#[test]
fn concurrent_movers_on_many_tokens_conserve_multiset() {
    // 16 slots, 8 tokens, random moves; the multiset of values survives.
    const SLOTS: usize = 16;
    let slots: Arc<Vec<Slot<u64>>> = Arc::new((0..SLOTS).map(|_| Slot::new()).collect());
    for i in 0..8 {
        slots[2 * i].insert(100 + i as u64);
    }

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let slots = slots.clone();
            s.spawn(move || {
                let mut x = t + 1;
                for _ in 0..4_000 {
                    // xorshift
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let from = (x as usize) % SLOTS;
                    let to = ((x >> 8) as usize) % SLOTS;
                    if from != to {
                        let _ = move_one(&slots[from], &slots[to]);
                    }
                }
            });
        }
    });

    let mut survivors: Vec<u64> = slots.iter().filter_map(|s| s.remove()).collect();
    survivors.sort_unstable();
    assert_eq!(survivors, (100..108).collect::<Vec<u64>>());
}

#[test]
fn movers_compete_with_direct_removers() {
    // Movers shuttle a->b while removers drain b. Every value inserted at a
    // must be observed exactly once by the drain (no duplication, no loss).
    const N: u64 = 3_000;
    let a = Arc::new(Slot::<u64>::new());
    let b = Arc::new(Slot::<u64>::new());
    let collected = Arc::new(std::sync::Mutex::new(Vec::new()));
    let done = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        // Producer: feeds values into a (retrying while a is full).
        {
            let a = a.clone();
            s.spawn(move || {
                for v in 0..N {
                    while !a.insert(v) {
                        // One hardware thread in CI: yield so the mover and
                        // drainer stages can run inside the same timeslice.
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Movers: a -> b.
        for _ in 0..2 {
            let a = a.clone();
            let b = b.clone();
            let done = done.clone();
            s.spawn(move || {
                while done.load(Ordering::Relaxed) == 0 {
                    if move_one(&*a, &*b) != MoveOutcome::Moved {
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Drainer: pops from b until all N values are seen.
        {
            let b = b.clone();
            let collected = collected.clone();
            let done = done.clone();
            s.spawn(move || {
                let mut got = Vec::new();
                while got.len() < N as usize {
                    if let Some(v) = b.remove() {
                        got.push(v);
                    } else {
                        std::thread::yield_now();
                    }
                }
                collected.lock().unwrap().extend(got);
                done.store(1, Ordering::Relaxed);
            });
        }
    });

    let mut got = collected.lock().unwrap().clone();
    got.sort_unstable();
    assert_eq!(got.len(), N as usize, "every value exactly once");
    assert_eq!(got, (0..N).collect::<Vec<u64>>());
}
