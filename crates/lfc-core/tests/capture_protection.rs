//! The PR 3 acceptance test for capture-time promotion: a composition is
//! *parked* mid-flight — after the remove's linearization point has been
//! captured but before any commit — while the main thread retires the
//! captured entry's allocation and forces the global epoch far past every
//! reader. The block's only remaining protection is the ENTRY hazard slot
//! the engine promoted at capture time (the test source deliberately pins
//! no epoch), so surviving the sweeps proves the promotion and the unified
//! scan's hazard condition.

use lfc_core::{
    move_one, InsertCtx, InsertOutcome, LinPoint, MoveOutcome, MoveSource, MoveTarget, RemoveCtx,
    RemoveOutcome, ScasResult,
};
use lfc_dcas::DAtomic;
use lfc_hazard::{advance_epoch, flush, pin, slot};
use std::sync::atomic::{AtomicUsize, Ordering};

static DROPS: AtomicUsize = AtomicUsize::new(0);

/// The captured allocation: a word the remove's linearization point
/// targets, plus a canary the parked phase re-reads.
struct Probe {
    word: DAtomic,
    canary: u64,
}

unsafe fn reclaim_probe(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut Probe) });
    DROPS.fetch_add(1, Ordering::SeqCst);
}

/// Remove side: captures its linearization point on the probe's word with
/// `hp` = the probe allocation. Pins no epoch — after capture, the ENTRY
/// promotion is the allocation's only protection.
struct ProbeSource {
    probe: *mut Probe,
}

impl MoveSource<u64> for ProbeSource {
    fn remove_with<C: RemoveCtx<u64>>(&self, ctx: &mut C) -> RemoveOutcome<u64> {
        let val = 7u64;
        // Safety: the probe outlives the composition (the test holds it
        // alive through the hazard domain).
        let word = unsafe { &(*self.probe).word };
        match ctx.scas(
            LinPoint {
                word,
                old: 0,
                new: 8,
                hp: self.probe as usize,
            },
            &val,
        ) {
            ScasResult::Success => RemoveOutcome::Removed(val),
            ScasResult::Fail => RemoveOutcome::Aborted,
            ScasResult::Abort => RemoveOutcome::Aborted,
        }
    }
}

/// Insert side: *parks* the composition — retires the probe, forces epoch
/// advances, and scans — before rejecting, so the whole parked phase runs
/// between the remove's capture and the composition's abort.
struct ParkingTarget {
    probe: *mut Probe,
}

impl MoveTarget<u64> for ParkingTarget {
    fn insert_with<C: InsertCtx>(&self, _elem: u64, _ctx: &mut C) -> InsertOutcome {
        let addr = self.probe as usize;
        // The engine must have promoted the captured entry's allocation
        // into its ENTRY slot by now.
        assert_eq!(
            pin().get(slot::ENTRY0),
            addr,
            "capture must promote hp into ENTRY0"
        );
        // Retire the allocation (it is reachable only through this test)
        // and force the epoch far past every reader, scanning in between.
        // Safety: freed exactly once, via the domain.
        unsafe { lfc_hazard::retire(addr as *mut u8, reclaim_probe) };
        for _ in 0..4 {
            advance_epoch();
            flush();
        }
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            0,
            "ENTRY-protected block freed by an epoch sweep"
        );
        // Safety: the assert above — the block must still be alive.
        assert_eq!(unsafe { (*self.probe).canary }, 0xCAFE_F00D);
        InsertOutcome::Rejected
    }
}

#[test]
fn parked_capture_survives_forced_epoch_advance() {
    let probe = Box::into_raw(Box::new(Probe {
        word: DAtomic::new(0),
        canary: 0xCAFE_F00D,
    }));
    let src = ProbeSource { probe };
    let dst = ParkingTarget { probe };

    // The insert is rejected while parked, so the composition aborts.
    assert_eq!(move_one(&src, &dst), MoveOutcome::TargetRejected);

    // `Engine::finish` has cleared the ENTRY slots; the probe is now
    // unprotected and must be reclaimed.
    assert_eq!(pin().get(slot::ENTRY0), 0, "finish must clear ENTRY slots");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while DROPS.load(Ordering::SeqCst) < 1 && std::time::Instant::now() < deadline {
        flush();
        std::thread::yield_now();
    }
    assert_eq!(DROPS.load(Ordering::SeqCst), 1);
}
