//! Integration tests for the claim-pattern group-commit front-end (PR 7):
//! exactly-once execution, conservation under contention, adaptivity
//! plumbing, and outcome encoding.

use lfc_core::batch::{self, decode_move, decode_swap, encode_move, encode_swap};
use lfc_core::compose::SwapOutcome;
use lfc_core::{BatchGate, MoveKeyedOp, MoveOneOp, MoveOutcome, SwapOp};
use lfc_structures::{LfHashMap, MsQueue};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

#[test]
fn encoding_round_trips_and_stays_raw() {
    for o in [
        MoveOutcome::Moved,
        MoveOutcome::SourceEmpty,
        MoveOutcome::TargetRejected,
        MoveOutcome::WouldAlias,
    ] {
        let w = encode_move(o);
        assert_ne!(w, batch::FLAG_PENDING);
        // Low three bits clear: kind bits say "raw word", user mark unset.
        assert_eq!(w & 0b111, 0);
        assert_eq!(decode_move(w), o);
    }
    for o in [
        SwapOutcome::Swapped,
        SwapOutcome::FirstEmpty,
        SwapOutcome::SecondEmpty,
        SwapOutcome::Rejected,
        SwapOutcome::WouldAlias,
    ] {
        let w = encode_swap(o);
        assert_ne!(w, batch::FLAG_PENDING);
        assert_eq!(w & 0b111, 0);
        assert_eq!(decode_swap(w), o);
    }
}

#[test]
#[should_panic(expected = "not an encoded MoveOutcome")]
fn cross_decoding_panics() {
    let _ = decode_move(encode_swap(SwapOutcome::Swapped));
}

#[test]
fn solo_submits_run_every_shape() {
    let a: LfHashMap<u64, String> = LfHashMap::new();
    let b: LfHashMap<u64, String> = LfHashMap::new();
    a.insert(1, "one".into());

    let gate = BatchGate::new();
    let w = gate.submit(MoveKeyedOp::new(&a, 1u64, &b));
    assert_eq!(decode_move(w), MoveOutcome::Moved);
    assert!(!a.contains(&1) && b.contains(&1));

    // Key now absent from the (new) source.
    let w = gate.submit(MoveKeyedOp::new(&a, 1u64, &b));
    assert_eq!(decode_move(w), MoveOutcome::SourceEmpty);

    // Duplicate key in the target rejects.
    a.insert(1, "again".into());
    let w = gate.submit(MoveKeyedOp::new(&a, 1u64, &b));
    assert_eq!(decode_move(w), MoveOutcome::TargetRejected);
    assert!(a.contains(&1) && b.contains(&1));
}

#[test]
fn batched_path_matches_direct_semantics() {
    // Forcing every submit through the claim list must not change any
    // outcome.
    let q1: MsQueue<u64> = MsQueue::new();
    let q2: MsQueue<u64> = MsQueue::new();
    q1.enqueue(7);
    q1.enqueue(8);
    q2.enqueue(70);

    let gate = BatchGate::always_batched();
    let w = gate.submit(SwapOp::new(&q1, &q2));
    // swap removed 7 from q1 and 70 from q2, crossing them over; 8 was
    // already queued ahead of the swapped-in 70.
    assert_eq!(decode_swap(w), SwapOutcome::Swapped);
    assert_eq!(q1.dequeue(), Some(8));
    assert_eq!(q1.dequeue(), Some(70));
    assert_eq!(q2.dequeue(), Some(7));

    q1.enqueue(99);
    let move_gate = BatchGate::always_batched();
    let before = batch::counters::batched_ops();
    let w = move_gate.submit(MoveOneOp::new(&q1, &q2));
    assert_eq!(decode_move(w), MoveOutcome::Moved);
    assert_eq!(q2.dequeue(), Some(99));
    assert!(batch::counters::batched_ops() > before);
}

#[test]
fn contended_moves_conserve_elements() {
    // Threads shuttle tokens between two queues through one gate; every
    // submit executes exactly once, so the token count is conserved and
    // per-thread move tallies add up.
    const THREADS: usize = 4;
    const OPS: usize = 300;
    const TOKENS: u64 = 8;

    let a: MsQueue<u64> = MsQueue::new();
    let b: MsQueue<u64> = MsQueue::new();
    for t in 0..TOKENS {
        a.enqueue(t);
    }
    let gate: BatchGate<MoveOneOp<'_, u64, MsQueue<u64>, MsQueue<u64>>> =
        BatchGate::always_batched();
    let barrier = Barrier::new(THREADS);
    let moved = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for i in 0..THREADS {
            let (a, b, gate, barrier, moved) = (&a, &b, &gate, &barrier, &moved);
            s.spawn(move || {
                barrier.wait();
                for k in 0..OPS {
                    let (src, dst): (&MsQueue<u64>, &MsQueue<u64>) =
                        if (i + k) % 2 == 0 { (a, b) } else { (b, a) };
                    match decode_move(gate.submit(MoveOneOp::new(src, dst))) {
                        MoveOutcome::Moved => {
                            moved.fetch_add(1, Ordering::Relaxed);
                        }
                        MoveOutcome::SourceEmpty => {}
                        o => panic!("unexpected outcome {o:?}"),
                    }
                }
            });
        }
    });

    let mut count = 0;
    while a.dequeue().is_some() || b.dequeue().is_some() {
        count += 1;
    }
    assert_eq!(count, TOKENS as usize, "tokens created or destroyed");
    assert!(moved.load(Ordering::Relaxed) > 0);
}

#[test]
fn adaptive_gate_stays_direct_when_uncontended() {
    let a: LfHashMap<u64, u64> = LfHashMap::new();
    let b: LfHashMap<u64, u64> = LfHashMap::new();
    let gate = BatchGate::new();
    let direct_before = batch::counters::direct_ops();
    for k in 0..50u64 {
        a.insert(k, k);
        let w = gate.submit(MoveKeyedOp::new(&a, k, &b));
        assert_eq!(decode_move(w), MoveOutcome::Moved);
    }
    // Solo: every submit should have completed on the direct path.
    assert!(batch::counters::direct_ops() >= direct_before + 50);
}
