//! PR 6 acceptance test for ejection under composition: a composition is
//! parked mid-flight (after the remove's capture, inside the insert stage)
//! while the parked thread's *own* epoch slot is driven through the full
//! ejection ladder — EJ mark, then zombie promotion — under an aggressive
//! stall policy. The captured allocation's only protections are the ENTRY
//! hazard promotion and the (marked) epoch; the test proves
//!
//! 1. ejection marks and even zombie promotion never defeat an ENTRY
//!    hazard (the block survives every sweep), and
//! 2. `repin_if_ejected` at the outermost operation acknowledges the mark
//!    and re-enters cleanly, after which the composition completes.

use lfc_core::{
    move_one, InsertCtx, InsertOutcome, LinPoint, MoveOutcome, MoveSource, MoveTarget, RemoveCtx,
    RemoveOutcome, ScasResult,
};
use lfc_dcas::DAtomic;
use lfc_hazard::{advance_epoch, configure_stall_policy, flush, pin, pin_op, slot, StallPolicy};
use std::sync::atomic::{AtomicUsize, Ordering};

static DROPS: AtomicUsize = AtomicUsize::new(0);

struct Probe {
    word: DAtomic,
    canary: u64,
}

unsafe fn reclaim_probe(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut Probe) });
    DROPS.fetch_add(1, Ordering::SeqCst);
}

struct ProbeSource {
    probe: *mut Probe,
}

impl MoveSource<u64> for ProbeSource {
    fn remove_with<C: RemoveCtx<u64>>(&self, ctx: &mut C) -> RemoveOutcome<u64> {
        let val = 7u64;
        // Safety: the probe outlives the composition (hazard domain).
        let word = unsafe { &(*self.probe).word };
        match ctx.scas(
            LinPoint {
                word,
                old: 0,
                new: 8,
                hp: self.probe as usize,
            },
            &val,
        ) {
            ScasResult::Success => RemoveOutcome::Removed(val),
            ScasResult::Fail | ScasResult::Abort => RemoveOutcome::Aborted,
        }
    }
}

/// Insert side: enters an op epoch of its own (the engine pins no epoch),
/// then retires the probe under a zero-budget stall policy and advances
/// eras until its own slot is ejected and zombified by its own scans.
struct EjectingTarget {
    probe: *mut Probe,
}

impl MoveTarget<u64> for EjectingTarget {
    fn insert_with<C: InsertCtx>(&self, _elem: u64, _ctx: &mut C) -> InsertOutcome {
        let addr = self.probe as usize;
        assert_eq!(
            pin().get(slot::ENTRY0),
            addr,
            "capture must promote hp into ENTRY0"
        );

        // Outermost op epoch for this thread: the engine itself only uses
        // plain `pin`, so `repin_if_ejected` sees nesting depth 1.
        let mut g = pin_op();

        // Zero budgets: any retired record is pressure. One-era stall and
        // grace windows so a single advance triggers each ladder rung.
        configure_stall_policy(StallPolicy {
            stall_eras: 1,
            grace_eras: 1,
            max_retired_bytes: 0,
            max_retired_count: 0,
        });

        // Safety: freed exactly once, via the domain.
        unsafe { lfc_hazard::retire(addr as *mut u8, reclaim_probe) };

        // Drive our own slot through EJ and Z: each flush scans, and our
        // slot lags the advanced era under pressure.
        let (ej0, z0) = lfc_hazard::ejection_stats();
        for _ in 0..6 {
            advance_epoch();
            flush();
        }
        let (ej1, z1) = lfc_hazard::ejection_stats();
        assert!(ej1 > ej0, "lagging slot must be EJ-marked under pressure");
        assert!(z1 > z0, "EJ slot past grace must be zombie-promoted");
        assert!(g.ejected(), "owner must observe the mark");

        // Zombified, yet the ENTRY hazard still pins the captured block.
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            0,
            "ENTRY-protected block freed under ejection"
        );
        // Safety: the assert above — the block must still be alive.
        assert_eq!(unsafe { (*self.probe).canary }, 0xCAFE_F00D);

        // Outermost restart: acknowledges the mark and re-enters fresh.
        assert!(g.repin_if_ejected(), "outermost op must restart");
        assert!(!g.ejected(), "fresh era is unmarked");
        assert!(!g.repin_if_ejected(), "no double restart");

        configure_stall_policy(StallPolicy::DEFAULT);
        InsertOutcome::Rejected
    }
}

#[test]
fn ejected_composition_keeps_entry_protection() {
    let probe = Box::into_raw(Box::new(Probe {
        word: DAtomic::new(0),
        canary: 0xCAFE_F00D,
    }));
    let src = ProbeSource { probe };
    let dst = EjectingTarget { probe };

    assert_eq!(move_one(&src, &dst), MoveOutcome::TargetRejected);

    // Promotions released; the probe must now drain normally.
    assert_eq!(pin().get(slot::ENTRY0), 0, "finish must clear ENTRY slots");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while DROPS.load(Ordering::SeqCst) < 1 && std::time::Instant::now() < deadline {
        flush();
        std::thread::yield_now();
    }
    assert_eq!(DROPS.load(Ordering::SeqCst), 1);
}
