//! The degradation ladder and the quiesce/audit protocol under *real*
//! injected faults — the tier-1 slice of the chaos campaign. The full
//! combined-adversary campaign (kill + stall + OOM under Zipfian load)
//! lives in `lfc-bench`; these tests keep the load small enough for every
//! `cargo test` run while still arming the same fault machinery.
//!
//! Fault arming is process-global, so the tests serialize on one mutex
//! (the same idiom as `tests/oom_graceful.rs`).

use lfc_ledger::{HealthCfg, Ledger, LedgerCfg, LedgerError, ServiceState, SettleOutcome};
use lfc_runtime::fault;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Commit descriptors are only allocated outside the solo regime: keep a
/// second registered thread alive around `f` so the multi-thread protocol
/// (and with it the fallible allocation paths) actually runs. Same idiom
/// as `tests/oom_graceful.rs`.
fn with_peer<R>(f: impl FnOnce() -> R) -> R {
    struct StopOnDrop<'a>(&'a AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|sc| {
        sc.spawn(|| {
            fault::shield_thread(true);
            let _g = lfc_hazard::pin();
            while !stop.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        });
        let _stop_guard = StopOnDrop(&stop);
        f()
    })
}

fn tiny_cfg() -> LedgerCfg {
    LedgerCfg {
        shards: 4,
        retries: 2,
        health: HealthCfg {
            // Byte budgets out of reach: only the error window and corpse
            // count drive these tests.
            soft_retired_bytes: usize::MAX / 2,
            hard_retired_bytes: usize::MAX / 2,
            soft_alloc_errors: 1,
            hard_alloc_errors: 8,
            soft_corpses: usize::MAX / 2,
            heal_polls: 2,
        },
        ..LedgerCfg::default()
    }
}

#[test]
fn injected_oom_walks_the_ladder_and_the_service_heals() {
    let _serial = SERIAL.lock().unwrap();
    fault::disarm();
    let l = Ledger::new(tiny_cfg());
    let a = l.open(10).unwrap();
    l.fund_lane(0, 1).unwrap();
    l.fund_lane(1, 2).unwrap();

    // Starve the commit engine's descriptor allocation: every composed
    // settle now fails its whole retry budget and reports Overloaded —
    // never blocks, never panics. (The peer defeats the solo-regime fast
    // path, which allocates no descriptor and could not fail.)
    with_peer(|| {
        // A 4-entry swap commit allocates a CASN descriptor; 2-entry
        // commits a DCAS one. Starve both.
        fault::arm_site("dcas.desc", fault::Schedule::Always);
        fault::arm_site("dcas.casn", fault::Schedule::Always);
        for _ in 0..3 {
            assert_eq!(l.settle(0, 1), Err(LedgerError::Overloaded));
        }
        fault::disarm();
    });

    // ≥ 9 allocation errors in the window: one poll jumps straight to Shed.
    assert_eq!(l.health().poll(), ServiceState::Shed);
    assert_eq!(l.open(1), Err(LedgerError::Shed));
    assert_eq!(l.migrate(a, 2), Err(LedgerError::Shed));
    assert_eq!(l.balance(a), Ok(10), "reads ride out the shed");

    // Self-healing: one rung per `heal_polls` clean polls.
    assert_eq!(l.health().poll(), ServiceState::Shed);
    assert_eq!(l.health().poll(), ServiceState::NoResize);
    assert_eq!(
        l.open(1),
        Err(LedgerError::Shed),
        "admission still closed on NoResize"
    );
    assert_eq!(
        l.settle(0, 1),
        Ok(SettleOutcome::Exchanged),
        "existing-state mutations admitted again (and the engine works disarmed)"
    );
    assert_eq!(l.health().poll(), ServiceState::NoResize);
    assert_eq!(l.health().poll(), ServiceState::Normal);
    assert!(l.open(1).is_ok(), "fully healed");

    assert!(
        l.health().recovery_ms().is_some(),
        "the transition log measures the recovery window"
    );
    let r = l.quiesced_audit();
    assert!(r.conserved(), "{r:?}");
    let s = l.health().stats();
    assert!(s.shed_total >= 3 && s.overloaded_total >= 3 && s.alloc_errors_total >= 9);
}

#[test]
fn killed_workers_are_adopted_and_every_sweep_conserves() {
    let _serial = SERIAL.lock().unwrap();
    fault::install_quiet_abandon_hook();
    fault::disarm();
    fault::shield_thread(true);

    const ACCOUNTS: u64 = 96;
    const WORKERS: usize = 4;
    let l = Ledger::new(LedgerCfg {
        shards: 4,
        ..LedgerCfg::default()
    });
    for _ in 0..ACCOUNTS {
        l.open(1).unwrap();
    }
    for s in 0..4 {
        l.fund_lane(s, 5).unwrap();
    }
    let abandoned0 = fault::abandoned_total();
    let adopted0 = fault::adopted_total();

    // The crash adversary's kill sites: die announced-not-published,
    // published-not-decided, and at a CASN (swap/fan-out) announcement.
    // EveryNth counters advance only for unshielded threads — the workers
    // reap themselves while the auditor and governor run for free.
    fault::arm_site("dcas.announced", fault::Schedule::EveryNth(463));
    fault::arm_site("dcas.published", fault::Schedule::EveryNth(701));
    fault::arm_site("kcas.announced", fault::Schedule::EveryNth(557));

    let stop = AtomicBool::new(false);
    std::thread::scope(|sc| {
        for w in 0..WORKERS {
            let (l, stop) = (&l, &stop);
            sc.spawn(move || {
                let mut i = w as u64;
                while !stop.load(Ordering::Acquire) {
                    // Each burst runs under an abandonment scope: a kill
                    // unwinds the burst (dropping the in-flight ticket on
                    // the way), parks the tid as a corpse, and the same OS
                    // thread re-enters with a fresh identity.
                    fault::abandonment_scope(|| {
                        for _ in 0..64 {
                            let id = i % ACCOUNTS;
                            match i % 4 {
                                0 => drop(l.migrate(id, (id as usize + 1) % 4)),
                                1 => drop(l.settle(i as usize % 4, (i as usize + 1) % 4)),
                                2 => drop(l.promote(id)),
                                _ => drop(l.demote(id)),
                            }
                            i = i.wrapping_add(1);
                        }
                    });
                }
            });
        }
        // Governor: adopt corpses and poll the ladder continuously, so
        // dead tids are recycled faster than the adversary parks them.
        let (l, stop) = (&l, &stop);
        let governor = sc.spawn(move || {
            fault::shield_thread(true);
            while !stop.load(Ordering::Acquire) {
                let _ = l.tend();
                std::thread::yield_now();
            }
        });

        // The auditor's continuous sweeps: every one must balance exactly
        // *while the kill campaign is live*.
        for _ in 0..12 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            let r = l.quiesced_audit();
            assert!(r.conserved(), "sweep under live kills: {r:?}");
            assert_eq!(r.accounts, ACCOUNTS, "kills never lose an account");
            assert_eq!(r.voucher_tokens, 4 * 5, "kills never lose a voucher");
        }
        stop.store(true, Ordering::Release);
        governor.join().unwrap();
    });
    fault::disarm();

    let r = l.quiesced_audit();
    assert!(r.conserved(), "final sweep: {r:?}");
    assert_eq!(fault::corpse_count(), 0, "every corpse adopted");
    assert!(
        fault::abandoned_total() > abandoned0,
        "the campaign actually killed threads"
    );
    assert!(
        fault::adopted_total() >= adopted0 + (fault::abandoned_total() - abandoned0),
        "every abandonment was adopted"
    );
    fault::shield_thread(false);
}
