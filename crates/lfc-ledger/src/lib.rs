//! A chaos-hardened sharded account ledger built on composed lock-free
//! operations — the "service on top" that the rest of this workspace
//! exists to make possible.
//!
//! # Shape
//!
//! The ledger is sharded for a thread-per-core deployment: account id `i`
//! homes on shard `i % shards`. Each [`Shard`] owns
//!
//! * a **cold tier** — an [`LfHashMap`] holding the bulk of the accounts,
//! * a **hot tier** — an [`LfSkipMap`] for accounts under ranged audit
//!   scrutiny (the auditor enumerates it with one ordered sweep instead of
//!   a dense id scan), and
//! * a **settlement lane** — an [`MsQueue`] of voucher tokens exchanged
//!   between shards.
//!
//! Intra-shard operations ([`Ledger::open`], [`Ledger::close`],
//! [`Ledger::balance`]) are ordinary lock-free map operations. Everything
//! that crosses a structure boundary is a *composed* operation from
//! `lfc-core`, atomic at a single linearization point:
//!
//! * [`Ledger::migrate`] — rehome an account to another shard
//!   (`try_move_keyed`, map → map),
//! * [`Ledger::promote`] / [`Ledger::demote`] — move an account between
//!   the cold and hot tiers of its shard (`try_move_keyed`, hash map ↔
//!   skip map),
//! * [`Ledger::settle`] — exchange one voucher between two shards' lanes
//!   (`try_swap`, a four-entry composition), and
//! * [`Ledger::broadcast_notice`] — publish a control notice into several
//!   shards at once (`try_move_keyed_to_all`, all-or-nothing fan-out).
//!
//! # Degradation, not failure
//!
//! Every entry point uses the fallible `try_*` surfaces, retries with the
//! shared jittered [`Backoff`], and *reports* [`LedgerError::Overloaded`]
//! or [`LedgerError::Shed`] instead of blocking. The
//! [`health::Health`] ladder (`Normal → NoResize → Shed`) closes admission
//! and then mutation as live substrate signals deteriorate, and heals on
//! its own — see the [`health`] module docs.
//!
//! # Conservation and the quiesce protocol
//!
//! The ledger's invariant is **exact token conservation**:
//!
//! ```text
//! Σ account balances + Σ lane vouchers  ==  minted − burned
//! ```
//!
//! with no account id present twice. The auditor verifies it *while the
//! service is under chaos* (thread kills, stalls, injected allocation
//! failure) via a cooperative quiesce: [`Ledger::pause`] raises a flag and
//! waits for in-flight mutations to drain; every mutation holds an
//! in-flight ticket whose drop — **including the unwind of a killed
//! thread** — releases it. Once drained, the auditor adopts any corpses
//! (completing their decided operations) and sweeps. This is harness-level
//! cooperation: the *structures* never block, the pause is a property of
//! the service loop, and a thread that dies mid-operation can never wedge
//! it, because the abandonment unwind drops the ticket.
//!
//! Kill-safety of the money supply is by construction, not by sweeping:
//! the mint/burn counters are only adjusted *after* a structural success,
//! in windows that contain no fault-injection site, and every
//! token-carrying crossing is a single composed operation that helpers or
//! adopters complete on the dead thread's behalf. Control notices live in
//! a reserved key range ([`NOTICE_BASE`]) with zero value and are exempt
//! from the sums, so a notice caught mid-fan-out by a kill cannot
//! masquerade as lost money.

#![warn(missing_docs)]

pub mod health;

pub use health::{Health, HealthCfg, HealthStats, ServiceState, Transition};

use lfc_alloc::AllocError;
use lfc_core::{
    try_move_keyed, try_move_keyed_to_all, try_swap, MoveOutcome, SwapOutcome, MAX_TARGETS,
};
use lfc_runtime::{camp_round, Backoff, BackoffCfg, CachePadded};
use lfc_structures::{LfHashMap, LfSkipMap, MsQueue};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Keys at or above this value are control notices, not accounts: value 0,
/// exempt from conservation sums, broadcast via the keyed fan-out.
pub const NOTICE_BASE: u64 = 1 << 62;

/// Why an operation was refused. Refusals are *answers*, not hangs: every
/// variant returns immediately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LedgerError {
    /// The degradation ladder refused the operation (admission closed or
    /// the service is shedding). Counted in [`HealthStats::shed_total`].
    Shed,
    /// The retry budget was exhausted without a structural success
    /// (allocation failures, injected or genuine, on every attempt).
    Overloaded,
    /// No such account (or it vanished mid-operation to a concurrent
    /// close/migrate — retrying is the caller's choice).
    NotFound,
    /// The target already held the key; nothing was changed anywhere.
    Duplicate,
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LedgerError::Shed => "shed by the degradation ladder",
            LedgerError::Overloaded => "retry budget exhausted",
            LedgerError::NotFound => "no such account",
            LedgerError::Duplicate => "key already present at target",
        };
        f.write_str(s)
    }
}

impl std::error::Error for LedgerError {}

/// What a [`Ledger::settle`] accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SettleOutcome {
    /// One voucher from each lane changed places atomically.
    Exchanged,
    /// At least one lane had no voucher to offer (or `a == b`); nothing
    /// changed.
    LaneEmpty,
}

/// Which tier of which shard an account was found in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tier {
    Cold,
    Hot,
}

/// Construction parameters for a [`Ledger`].
#[derive(Clone, Copy, Debug)]
pub struct LedgerCfg {
    /// Shard count (thread-per-core deployments use one per core).
    pub shards: usize,
    /// Allocation-failure retries before an operation reports
    /// [`LedgerError::Overloaded`].
    pub retries: u32,
    /// Shared backoff envelope for those retries (jittered per operation).
    pub backoff: BackoffCfg,
    /// Seed decorrelating the per-operation jitter streams.
    pub seed: u64,
    /// Degradation-ladder thresholds.
    pub health: HealthCfg,
}

impl Default for LedgerCfg {
    fn default() -> Self {
        LedgerCfg {
            shards: 4,
            retries: 8,
            backoff: BackoffCfg::exponential(250, 64_000),
            seed: 0x1ED6_E55E,
            health: HealthCfg::default(),
        }
    }
}

/// One shard: cold tier, hot tier, settlement lane.
struct Shard {
    cold: LfHashMap<u64, u64>,
    hot: LfSkipMap<u64, u64>,
    lane: MsQueue<u64>,
}

/// What one exact sweep of the quiesced service observed.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Live account records across both tiers of every shard.
    pub accounts: u64,
    /// Sum of those balances.
    pub account_tokens: u64,
    /// Sum of the vouchers sitting in settlement lanes.
    pub voucher_tokens: u64,
    /// Tokens ever minted ([`Ledger::open`], [`Ledger::fund_lane`]).
    pub minted: u64,
    /// Tokens ever burned ([`Ledger::close`]).
    pub burned: u64,
    /// Account ids found in more than one place — always empty unless
    /// atomicity was violated.
    pub duplicates: Vec<u64>,
}

impl AuditReport {
    /// Tokens that should be in circulation.
    pub fn circulating(&self) -> u64 {
        self.minted - self.burned
    }

    /// Tokens the sweep actually observed.
    pub fn observed(&self) -> u64 {
        self.account_tokens + self.voucher_tokens
    }

    /// Exact conservation: every minted token observed exactly once.
    pub fn conserved(&self) -> bool {
        self.observed() == self.circulating() && self.duplicates.is_empty()
    }
}

/// What one governor tick did.
#[derive(Clone, Copy, Debug)]
pub struct TendReport {
    /// Corpses whose operations and resources were adopted this tick.
    pub adopted: usize,
    /// The ladder rung after polling the substrate signals.
    pub state: ServiceState,
}

/// Operation classes the ladder distinguishes (module docs).
#[derive(Clone, Copy, PartialEq, Eq)]
enum OpClass {
    /// Grows the service footprint: refused from `NoResize` up.
    Admission,
    /// Works over existing state: refused only when shedding.
    Mutate,
}

/// The sharded account service. See the module docs for the full shape.
pub struct Ledger {
    shards: Box<[Shard]>,
    /// Staging area for notices awaiting fan-out (never holds accounts).
    staging: LfHashMap<u64, u64>,
    health: Health,
    minted: CachePadded<AtomicU64>,
    burned: CachePadded<AtomicU64>,
    next_id: CachePadded<AtomicU64>,
    paused: CachePadded<AtomicBool>,
    in_flight: CachePadded<AtomicU64>,
    jitter_nonce: AtomicU64,
    retries: u32,
    backoff: BackoffCfg,
    seed: u64,
}

/// In-flight ticket for the quiesce protocol: dropped on every exit path,
/// including the abandonment unwind of a killed thread.
struct OpTicket<'a>(&'a Ledger);

impl Drop for OpTicket<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Ledger {
    /// Build a ledger with `cfg.shards` empty shards.
    pub fn new(cfg: LedgerCfg) -> Self {
        assert!(cfg.shards > 0, "a ledger needs at least one shard");
        let shards = (0..cfg.shards)
            .map(|_| Shard {
                cold: LfHashMap::new(),
                hot: LfSkipMap::new(),
                lane: MsQueue::new(),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ledger {
            shards,
            staging: LfHashMap::new(),
            health: Health::new(cfg.health),
            minted: CachePadded::new(AtomicU64::new(0)),
            burned: CachePadded::new(AtomicU64::new(0)),
            next_id: CachePadded::new(AtomicU64::new(0)),
            paused: CachePadded::new(AtomicBool::new(false)),
            in_flight: CachePadded::new(AtomicU64::new(0)),
            jitter_nonce: AtomicU64::new(0),
            retries: cfg.retries,
            backoff: cfg.backoff,
            seed: cfg.seed,
        }
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Account ids handed out so far (the audit's scan bound).
    pub fn issued(&self) -> u64 {
        self.next_id.load(Ordering::SeqCst)
    }

    /// The degradation ladder (poll it from a governor, read its stats).
    pub fn health(&self) -> &Health {
        &self.health
    }

    fn shard_of(&self, id: u64) -> usize {
        (id as usize) % self.shards.len()
    }

    /// Fresh jitter stream for one operation's backoff. The shared-counter
    /// RMW only happens on the retry path — a healthy operation never
    /// touches it.
    fn jitter_seed(&self) -> u64 {
        self.seed
            ^ self
                .jitter_nonce
                .fetch_add(1, Ordering::Relaxed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Take an in-flight ticket, waiting out any quiesce first. The wait
    /// contains no fault-injection site, so a thread can never die holding
    /// half an entry.
    fn enter(&self) -> OpTicket<'_> {
        let mut i = 0u32;
        loop {
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            if !self.paused.load(Ordering::SeqCst) {
                return OpTicket(self);
            }
            // Raced a pause: back out and wait it out off-ticket.
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            while self.paused.load(Ordering::SeqCst) {
                camp_round(i);
                i = i.wrapping_add(1);
            }
        }
    }

    /// Ladder gate. Refusals are counted and immediate — never a wait.
    fn admit(&self, class: OpClass) -> Result<(), LedgerError> {
        match (self.health.state(), class) {
            (ServiceState::Normal, _) => Ok(()),
            (ServiceState::NoResize, OpClass::Mutate) => Ok(()),
            _ => {
                self.health.note_shed();
                Err(LedgerError::Shed)
            }
        }
    }

    /// Shared retry loop: on [`AllocError`] report it to the ladder, back
    /// off with jitter, and give up as `Overloaded` once the budget is
    /// spent. The backoff state is built lazily — a first-try success
    /// allocates nothing and draws no randomness.
    fn retrying<T>(
        &self,
        mut attempt: impl FnMut() -> Result<T, AllocError>,
    ) -> Result<T, LedgerError> {
        let mut bo: Option<Backoff> = None;
        let mut tries = 0u32;
        loop {
            match attempt() {
                Ok(v) => return Ok(v),
                Err(AllocError) => {
                    self.health.note_alloc_error();
                    tries += 1;
                    if tries > self.retries {
                        self.health.note_overloaded();
                        return Err(LedgerError::Overloaded);
                    }
                    bo.get_or_insert_with(|| {
                        Backoff::new_jittered(self.backoff, self.jitter_seed())
                    })
                    .fail();
                }
            }
        }
    }

    /// Open a new account holding `amount` tokens; returns its id.
    ///
    /// Admission class: refused from `NoResize` up — new accounts are the
    /// only driver of hash-map growth in this service.
    pub fn open(&self, amount: u64) -> Result<u64, LedgerError> {
        let _t = self.enter();
        self.admit(OpClass::Admission)?;
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let shard = &self.shards[self.shard_of(id)];
        let mut pair = (id, amount);
        self.retrying(|| match shard.cold.try_insert(pair.0, pair.1) {
            // Mint only after the structural success; there is no fault
            // site between the insert's linearization and this add, so a
            // kill cannot split them.
            Ok(true) => {
                self.minted.fetch_add(amount, Ordering::Relaxed);
                Ok(())
            }
            Ok(false) => unreachable!("fresh ids are never re-inserted"),
            Err((back, e)) => {
                pair = back;
                Err(e)
            }
        })?;
        Ok(id)
    }

    /// Close an account, burning its balance; returns what was burned.
    pub fn close(&self, id: u64) -> Result<u64, LedgerError> {
        let _t = self.enter();
        self.admit(OpClass::Mutate)?;
        let home = self.shard_of(id);
        let n = self.shards.len();
        for k in 0..n {
            let s = &self.shards[(home + k) % n];
            // Removes are allocation-free: no retry budget needed. Burn
            // only after the structural success (same kill-window argument
            // as `open`).
            if let Some(v) = s.cold.remove(&id) {
                self.burned.fetch_add(v, Ordering::Relaxed);
                return Ok(v);
            }
            if let Some(v) = s.hot.remove(&id) {
                self.burned.fetch_add(v, Ordering::Relaxed);
                return Ok(v);
            }
        }
        Err(LedgerError::NotFound)
    }

    /// Read an account's balance. Reads are served on every rung, never
    /// wait out a quiesce, and cannot fail allocation — total availability.
    pub fn balance(&self, id: u64) -> Result<u64, LedgerError> {
        let home = self.shard_of(id);
        let n = self.shards.len();
        for k in 0..n {
            let s = &self.shards[(home + k) % n];
            if let Some(v) = s.cold.get(&id) {
                return Ok(v);
            }
            if let Some(v) = s.hot.get(&id) {
                return Ok(v);
            }
        }
        Err(LedgerError::NotFound)
    }

    /// Where `id` currently lives, probing its home shard first (migration
    /// means an account can be anywhere).
    fn locate(&self, id: u64) -> Option<(usize, Tier)> {
        let home = self.shard_of(id);
        let n = self.shards.len();
        for k in 0..n {
            let si = (home + k) % n;
            let s = &self.shards[si];
            if s.cold.contains(&id) {
                return Some((si, Tier::Cold));
            }
            if s.hot.contains(&id) {
                return Some((si, Tier::Hot));
            }
        }
        None
    }

    /// Rehome an account into `dst`'s cold tier — one composed keyed move,
    /// atomic at a single linearization point: no observer ever sees the
    /// account in two shards or in none.
    pub fn migrate(&self, id: u64, dst: usize) -> Result<(), LedgerError> {
        let _t = self.enter();
        self.admit(OpClass::Mutate)?;
        let dst = dst % self.shards.len();
        let target = &self.shards[dst].cold;
        let mut bo: Option<Backoff> = None;
        let mut tries = 0u32;
        loop {
            let Some((si, tier)) = self.locate(id) else {
                return Err(LedgerError::NotFound);
            };
            if si == dst {
                // Already resident (either tier) — nothing to move.
                return Ok(());
            }
            let src = &self.shards[si];
            let r = match tier {
                Tier::Cold => try_move_keyed(&src.cold, &id, target),
                Tier::Hot => try_move_keyed(&src.hot, &id, target),
            };
            match r {
                Ok(MoveOutcome::Moved) | Ok(MoveOutcome::WouldAlias) => return Ok(()),
                // Lost a race to a concurrent migrate/close: re-locate.
                // Burns a retry so contended ping-pong still terminates
                // (as `Overloaded`, an honest answer under that load).
                Ok(MoveOutcome::SourceEmpty) => {}
                // Ids are unique, so a rejecting target means the caller
                // raced a duplicate-creating bug; the audit will scream.
                Ok(MoveOutcome::TargetRejected) => return Err(LedgerError::Duplicate),
                Err(AllocError) => self.health.note_alloc_error(),
            }
            tries += 1;
            if tries > self.retries {
                self.health.note_overloaded();
                return Err(LedgerError::Overloaded);
            }
            bo.get_or_insert_with(|| Backoff::new_jittered(self.backoff, self.jitter_seed()))
                .fail();
        }
    }

    /// Move an account from its shard's cold tier into the hot tier
    /// (hash map → skip map, one composed keyed move).
    pub fn promote(&self, id: u64) -> Result<(), LedgerError> {
        self.shift_tier(id, Tier::Hot)
    }

    /// Move an account from the hot tier back to cold (skip map → hash
    /// map, one composed keyed move).
    pub fn demote(&self, id: u64) -> Result<(), LedgerError> {
        self.shift_tier(id, Tier::Cold)
    }

    fn shift_tier(&self, id: u64, want: Tier) -> Result<(), LedgerError> {
        let _t = self.enter();
        self.admit(OpClass::Mutate)?;
        let mut bo: Option<Backoff> = None;
        let mut tries = 0u32;
        loop {
            let Some((si, tier)) = self.locate(id) else {
                return Err(LedgerError::NotFound);
            };
            if tier == want {
                return Ok(());
            }
            let s = &self.shards[si];
            let r = match want {
                Tier::Hot => try_move_keyed(&s.cold, &id, &s.hot),
                Tier::Cold => try_move_keyed(&s.hot, &id, &s.cold),
            };
            match r {
                Ok(MoveOutcome::Moved) | Ok(MoveOutcome::WouldAlias) => return Ok(()),
                Ok(MoveOutcome::SourceEmpty) => {}
                Ok(MoveOutcome::TargetRejected) => return Err(LedgerError::Duplicate),
                Err(AllocError) => self.health.note_alloc_error(),
            }
            tries += 1;
            if tries > self.retries {
                self.health.note_overloaded();
                return Err(LedgerError::Overloaded);
            }
            bo.get_or_insert_with(|| Backoff::new_jittered(self.backoff, self.jitter_seed()))
                .fail();
        }
    }

    /// Seed shard `s`'s settlement lane with a voucher worth `amount`
    /// (mints it). Admission class: it grows the footprint.
    pub fn fund_lane(&self, s: usize, amount: u64) -> Result<(), LedgerError> {
        let _t = self.enter();
        self.admit(OpClass::Admission)?;
        let lane = &self.shards[s % self.shards.len()].lane;
        let mut v = amount;
        self.retrying(|| match lane.try_enqueue(v) {
            Ok(()) => {
                self.minted.fetch_add(amount, Ordering::Relaxed);
                Ok(())
            }
            Err((back, e)) => {
                v = back;
                Err(e)
            }
        })
    }

    /// Exchange one voucher between shards `a` and `b` — a four-entry
    /// composed swap: no observer ever sees zero or two of either voucher.
    pub fn settle(&self, a: usize, b: usize) -> Result<SettleOutcome, LedgerError> {
        let _t = self.enter();
        self.admit(OpClass::Mutate)?;
        let n = self.shards.len();
        let (a, b) = (a % n, b % n);
        let r = self.retrying(|| try_swap(&self.shards[a].lane, &self.shards[b].lane))?;
        Ok(match r {
            SwapOutcome::Swapped => SettleOutcome::Exchanged,
            // `swap(x, x)` reports WouldAlias; distinct lanes never do.
            SwapOutcome::FirstEmpty
            | SwapOutcome::SecondEmpty
            | SwapOutcome::Rejected
            | SwapOutcome::WouldAlias => SettleOutcome::LaneEmpty,
        })
    }

    /// Publish control notice `tag` into the cold tier of the first
    /// `min(shards, MAX_TARGETS)` shards, all-or-nothing: the notice is
    /// staged, then fanned out in **one** composed multi-target move, so a
    /// kill mid-broadcast leaves it either fully staged or fully
    /// delivered — never partially. Returns how many shards received it.
    ///
    /// Fan-out width is bounded by the commit engine's [`MAX_TARGETS`];
    /// campaigns that need every shard notified use at most that many
    /// shards.
    pub fn broadcast_notice(&self, tag: u64) -> Result<usize, LedgerError> {
        assert!(tag < NOTICE_BASE, "tag must leave the notice bit clear");
        let _t = self.enter();
        self.admit(OpClass::Mutate)?;
        let key = NOTICE_BASE | tag;
        // Stage (idempotent: an already-staged notice — e.g. re-published
        // after a kill between stage and fan-out — is simply fanned out).
        let mut staged = false;
        self.retrying(|| match self.staging.try_insert(key, 0) {
            Ok(_) => {
                staged = true;
                Ok(())
            }
            Err((_, e)) => Err(e),
        })?;
        debug_assert!(staged);
        let n = self.shards.len().min(MAX_TARGETS);
        let dsts: Vec<&LfHashMap<u64, u64>> = self.shards[..n].iter().map(|s| &s.cold).collect();
        let r = self.retrying(|| try_move_keyed_to_all(&self.staging, &key, &dsts))?;
        match r {
            // SourceEmpty: a concurrent broadcaster of the same tag
            // completed the fan-out for us — helping, not failure.
            MoveOutcome::Moved | MoveOutcome::SourceEmpty => Ok(n),
            MoveOutcome::TargetRejected => Err(LedgerError::Duplicate),
            MoveOutcome::WouldAlias => unreachable!("staging is never a broadcast target"),
        }
    }

    /// Collect (remove) notice `tag` everywhere it landed; returns how
    /// many copies were collected. Served on every rung — notice cleanup
    /// is control-plane work that helps the service heal.
    pub fn collect_notice(&self, tag: u64) -> usize {
        let _t = self.enter();
        let key = NOTICE_BASE | tag;
        let mut n = 0;
        if self.staging.remove(&key).is_some() {
            n += 1;
        }
        for s in self.shards.iter() {
            if s.cold.remove(&key).is_some() {
                n += 1;
            }
        }
        n
    }

    /// Quiesce: refuse new mutation entries and wait for in-flight ones to
    /// drain. Killed threads cannot wedge this — their unwind drops the
    /// in-flight ticket. Reads keep flowing.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::SeqCst);
        let mut i = 0u32;
        while self.in_flight.load(Ordering::SeqCst) != 0 {
            camp_round(i);
            i = i.wrapping_add(1);
        }
    }

    /// Lift a [`Ledger::pause`].
    pub fn resume(&self) {
        self.paused.store(false, Ordering::SeqCst);
    }

    /// One exact sweep. **Call only while quiesced** (after
    /// [`Ledger::pause`], ideally via [`Ledger::quiesced_audit`]): with
    /// mutations drained and corpses adopted the sums are exact, not
    /// approximate. The cold tiers are scanned densely by id; the hot
    /// tiers are enumerated with one ordered sweep each — the reason hot
    /// accounts live in a skip map.
    pub fn audit(&self) -> AuditReport {
        let bound = self.next_id.load(Ordering::SeqCst);
        let mut seen = vec![0u8; bound as usize];
        let mut accounts = 0u64;
        let mut account_tokens = 0u64;
        let mut duplicates = Vec::new();
        let mut tally = |id: u64, v: u64| {
            let slot = &mut seen[id as usize];
            *slot += 1;
            if *slot == 1 {
                accounts += 1;
                account_tokens += v;
            } else {
                duplicates.push(id);
            }
        };
        for s in self.shards.iter() {
            for id in 0..bound {
                if let Some(v) = s.cold.get(&id) {
                    tally(id, v);
                }
            }
            for (k, v) in s.hot.to_vec() {
                if k < NOTICE_BASE {
                    tally(k, v);
                }
            }
        }
        // Lanes: drain, sum, restore. Quiesced, so nobody races the lane;
        // the re-enqueue recycles the just-freed nodes.
        let mut voucher_tokens = 0u64;
        for s in self.shards.iter() {
            let mut held = Vec::new();
            while let Some(v) = s.lane.dequeue() {
                voucher_tokens += v;
                held.push(v);
            }
            for v in held {
                s.lane.enqueue(v);
            }
        }
        AuditReport {
            accounts,
            account_tokens,
            voucher_tokens,
            minted: self.minted.load(Ordering::SeqCst),
            burned: self.burned.load(Ordering::SeqCst),
            duplicates,
        }
    }

    /// The full auditor protocol: pause, adopt every corpse (completing
    /// any operation a dead thread left decided-but-unfinished), sweep
    /// exactly, resume. The calling thread is fault-shielded for the
    /// duration (and left unshielded after), so armed fault sites never
    /// fire for the auditor itself.
    pub fn quiesced_audit(&self) -> AuditReport {
        lfc_runtime::fault::shield_thread(true);
        self.pause();
        {
            let g = lfc_hazard::pin();
            let mut rounds = 0;
            while lfc_runtime::fault::corpse_count() > 0 && rounds < 1024 {
                lfc_dcas::adopt_dead_threads(&g);
                rounds += 1;
            }
        }
        let r = self.audit();
        self.resume();
        lfc_runtime::fault::shield_thread(false);
        r
    }

    /// One governor tick: adopt any corpses, then poll the ladder.
    pub fn tend(&self) -> TendReport {
        let adopted = {
            let g = lfc_hazard::pin();
            lfc_dcas::adopt_dead_threads(&g)
        };
        TendReport {
            adopted,
            state: self.health.poll(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_ledger(shards: usize) -> Ledger {
        Ledger::new(LedgerCfg {
            shards,
            ..LedgerCfg::default()
        })
    }

    #[test]
    fn open_move_settle_close_conserves() {
        let l = quiet_ledger(4);
        let a = l.open(100).unwrap();
        let b = l.open(250).unwrap();
        assert_eq!(l.balance(a), Ok(100));
        assert_eq!(l.balance(b), Ok(250));

        l.fund_lane(0, 7).unwrap();
        l.fund_lane(1, 9).unwrap();
        assert_eq!(l.settle(0, 1), Ok(SettleOutcome::Exchanged));
        assert_eq!(l.settle(2, 3), Ok(SettleOutcome::LaneEmpty));

        l.migrate(a, l.shard_of(a) + 1).unwrap();
        assert_eq!(l.balance(a), Ok(100), "migration preserves the balance");
        l.promote(b).unwrap();
        assert_eq!(l.balance(b), Ok(250), "promotion preserves the balance");
        l.promote(b).unwrap(); // idempotent: already hot

        let r = l.quiesced_audit();
        assert!(r.conserved(), "{r:?}");
        assert_eq!(r.accounts, 2);
        assert_eq!(r.account_tokens, 350);
        assert_eq!(r.voucher_tokens, 16);

        assert_eq!(l.close(b), Ok(250));
        assert_eq!(l.close(b), Err(LedgerError::NotFound));
        let r = l.quiesced_audit();
        assert!(r.conserved(), "{r:?}");
        assert_eq!(r.burned, 250);
    }

    #[test]
    fn notices_fan_out_atomically_and_stay_off_the_books() {
        let l = quiet_ledger(4);
        let a = l.open(41).unwrap();
        assert_eq!(l.broadcast_notice(3), Ok(4));
        let r = l.quiesced_audit();
        assert!(r.conserved(), "notices must not count as tokens: {r:?}");
        assert_eq!(r.accounts, 1);
        assert_eq!(l.collect_notice(3), 4, "one copy per shard");
        assert_eq!(l.collect_notice(3), 0);
        assert_eq!(l.balance(a), Ok(41));
    }

    #[test]
    fn shed_refuses_mutations_but_serves_reads() {
        let cfg = LedgerCfg {
            health: HealthCfg {
                soft_alloc_errors: 1,
                hard_alloc_errors: 2,
                heal_polls: 1,
                ..HealthCfg::default()
            },
            ..LedgerCfg::default()
        };
        let l = Ledger::new(cfg);
        let a = l.open(5).unwrap();

        // Drive the ladder to Shed by reporting a hot error window.
        l.health().note_alloc_error();
        l.health().note_alloc_error();
        assert_eq!(l.health().poll(), ServiceState::Shed);

        assert_eq!(l.open(1), Err(LedgerError::Shed));
        assert_eq!(l.close(a), Err(LedgerError::Shed));
        assert_eq!(l.settle(0, 1), Err(LedgerError::Shed));
        assert_eq!(l.balance(a), Ok(5), "reads survive shedding");
        assert!(l.health().stats().shed_total >= 3);

        // Heal: one rung per clean poll at heal_polls = 1.
        assert_eq!(l.health().poll(), ServiceState::NoResize);
        assert_eq!(l.open(1), Err(LedgerError::Shed), "admission still closed");
        assert_eq!(l.close(a), Ok(5), "mutation over existing state admitted");
        assert_eq!(l.health().poll(), ServiceState::Normal);
        assert!(l.open(1).is_ok());
    }

    #[test]
    fn pause_drains_and_audit_is_exact_under_it() {
        let l = std::sync::Arc::new(quiet_ledger(2));
        for _ in 0..64 {
            l.open(1).unwrap();
        }
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        for w in 0..3 {
            let l = l.clone();
            let stop = stop.clone();
            workers.push(std::thread::spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let _ = l.migrate(i % 64, (i as usize + 1) % 2);
                    i += 1;
                }
            }));
        }
        for _ in 0..20 {
            let r = l.quiesced_audit();
            assert!(r.conserved(), "audit under live migration traffic: {r:?}");
            assert_eq!(r.accounts, 64);
            assert_eq!(r.account_tokens, 64);
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
    }
}
