//! The degradation ladder: `Normal → NoResize → Shed`.
//!
//! A chaos-hardened service must not fall over when its substrate starts
//! reporting distress — it must *degrade*: close the operations that make
//! the distress worse, keep serving everything else, and climb back up on
//! its own once the signals clear. The ladder here has three rungs:
//!
//! * [`ServiceState::Normal`] — every operation admitted.
//! * [`ServiceState::NoResize`] — *admission closed*: operations that grow
//!   the service's footprint (new accounts, lane funding) are refused,
//!   because account admission is the only driver of hash-map resizing and
//!   fresh-segment allocation in this service. Everything that works over
//!   existing state (transfers, settlement, closes, reads) still runs.
//! * [`ServiceState::Shed`] — every mutation refused with a *counted*
//!   [`LedgerError::Shed`](crate::LedgerError::Shed); reads are still
//!   served. Nothing ever blocks.
//!
//! Rung changes are driven by **live substrate signals**, polled by a
//! governor (see [`Health::poll`]):
//!
//! * [`lfc_hazard::retired_bytes`] — unreclaimed garbage. A stalled or
//!   killed thread pins eras and the backlog climbs; past the soft budget
//!   new admissions only add to it, past the hard budget the service is
//!   at risk of genuine exhaustion.
//! * the allocation-failure rate ([`Health::note_alloc_error`]), fed by
//!   every `try_*` surface that observed an [`lfc_alloc::AllocError`] —
//!   injected or genuine, the service cannot tell and should not care.
//! * [`lfc_runtime::fault::corpse_count`] — dead threads whose operations
//!   and resources have not yet been adopted.
//! * the [`lfc_hazard::ejection_stats`] ejection delta — the reclamation
//!   ladder actively ejecting stalled threads is a pressure sign, so a
//!   poll that observed ejections does not count as clean.
//!
//! Escalation is immediate (one poll at hard severity jumps straight to
//! `Shed`); de-escalation is deliberate — one rung per
//! [`HealthCfg::heal_polls`] *consecutive clean polls*, so a flapping
//! signal cannot bounce the service between rungs.
//!
//! Every transition is timestamped and recorded with the signal values
//! that caused it ([`Health::transitions`]), which is what the chaos
//! campaign uses to measure recovery time.

use lfc_runtime::CachePadded;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The ladder rung the service currently stands on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ServiceState {
    /// Every operation admitted.
    Normal = 0,
    /// Admission closed: footprint-growing operations refused.
    NoResize = 1,
    /// All mutations refused (counted, never blocking); reads still served.
    Shed = 2,
}

impl ServiceState {
    fn from_u8(v: u8) -> ServiceState {
        match v {
            0 => ServiceState::Normal,
            1 => ServiceState::NoResize,
            _ => ServiceState::Shed,
        }
    }

    /// One rung down (toward `Normal`).
    fn relaxed(self) -> ServiceState {
        match self {
            ServiceState::Shed => ServiceState::NoResize,
            _ => ServiceState::Normal,
        }
    }
}

impl std::fmt::Display for ServiceState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ServiceState::Normal => "normal",
            ServiceState::NoResize => "no-resize",
            ServiceState::Shed => "shed",
        };
        f.write_str(s)
    }
}

/// Thresholds for the ladder (all compared at poll time).
#[derive(Clone, Copy, Debug)]
pub struct HealthCfg {
    /// Retired-bytes backlog at which admission closes (`NoResize`).
    pub soft_retired_bytes: usize,
    /// Retired-bytes backlog at which the service sheds (`Shed`).
    pub hard_retired_bytes: usize,
    /// Allocation failures per poll window that close admission.
    pub soft_alloc_errors: u64,
    /// Allocation failures per poll window that shed.
    pub hard_alloc_errors: u64,
    /// Unadopted corpses above which admission closes.
    pub soft_corpses: usize,
    /// Consecutive clean polls required per rung of de-escalation.
    pub heal_polls: u32,
}

impl Default for HealthCfg {
    fn default() -> Self {
        HealthCfg {
            soft_retired_bytes: 8 << 20,
            hard_retired_bytes: 48 << 20,
            soft_alloc_errors: 16,
            hard_alloc_errors: 256,
            soft_corpses: 8,
            heal_polls: 3,
        }
    }
}

/// One recorded rung change, with the signals that caused it.
#[derive(Clone, Copy, Debug)]
pub struct Transition {
    /// Milliseconds since the [`Health`] was created.
    pub at_ms: u64,
    /// The rung left.
    pub from: ServiceState,
    /// The rung entered.
    pub to: ServiceState,
    /// `lfc_hazard::retired_bytes()` at the transition.
    pub retired_bytes: usize,
    /// Allocation failures observed in the poll window that transitioned.
    pub alloc_errors: u64,
    /// Unadopted corpses at the transition.
    pub corpses: usize,
}

/// Point-in-time summary of the ladder and its refusal counters.
#[derive(Clone, Debug)]
pub struct HealthStats {
    /// Current rung.
    pub state: ServiceState,
    /// Operations refused by the ladder (admission or shed refusals).
    pub shed_total: u64,
    /// Operations that exhausted their retry budget.
    pub overloaded_total: u64,
    /// Allocation failures reported by `try_*` surfaces, ever.
    pub alloc_errors_total: u64,
    /// Every rung change so far, in order.
    pub transitions: Vec<Transition>,
}

/// The ladder state machine plus its refusal/error counters.
///
/// Operation threads only touch the padded atomics (`state` on every
/// admission check, the counters on refusal/error paths). [`Health::poll`]
/// is meant for a single governor thread; concurrent polls are safe but
/// may split one error window across two observations. The transition log
/// is behind a `Mutex` — it is diagnostics, written only at rung changes
/// by the governor, never on the operation path.
pub struct Health {
    state: CachePadded<AtomicU8>,
    alloc_errs_window: CachePadded<AtomicU64>,
    shed_total: CachePadded<AtomicU64>,
    overloaded_total: AtomicU64,
    alloc_errs_total: AtomicU64,
    clean_polls: AtomicU32,
    last_ejections: AtomicUsize,
    cfg: HealthCfg,
    start: Instant,
    transitions: Mutex<Vec<Transition>>,
}

impl Health {
    /// A fresh ladder standing on `Normal`.
    pub fn new(cfg: HealthCfg) -> Self {
        Health {
            state: CachePadded::new(AtomicU8::new(ServiceState::Normal as u8)),
            alloc_errs_window: CachePadded::new(AtomicU64::new(0)),
            shed_total: CachePadded::new(AtomicU64::new(0)),
            overloaded_total: AtomicU64::new(0),
            alloc_errs_total: AtomicU64::new(0),
            clean_polls: AtomicU32::new(0),
            last_ejections: AtomicUsize::new(lfc_hazard::ejection_stats().0),
            cfg,
            start: Instant::now(),
            transitions: Mutex::new(Vec::new()),
        }
    }

    /// The rung the service currently stands on.
    pub fn state(&self) -> ServiceState {
        ServiceState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Record an allocation failure observed by a `try_*` surface.
    pub fn note_alloc_error(&self) {
        self.alloc_errs_window.fetch_add(1, Ordering::Relaxed);
        self.alloc_errs_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a ladder refusal (admission closed or shedding).
    pub fn note_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a retry-budget exhaustion.
    pub fn note_overloaded(&self) {
        self.overloaded_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Read the substrate signals, move the ladder, and return the rung
    /// now standing. Call from a governor loop; each call consumes the
    /// allocation-error window.
    pub fn poll(&self) -> ServiceState {
        let errs = self.alloc_errs_window.swap(0, Ordering::Relaxed);
        let retired = lfc_hazard::retired_bytes();
        let corpses = lfc_runtime::fault::corpse_count();
        let ejections = lfc_hazard::ejection_stats().0;
        let ej_delta = ejections
            - self
                .last_ejections
                .swap(ejections, Ordering::Relaxed)
                .min(ejections);

        let severity =
            if retired >= self.cfg.hard_retired_bytes || errs >= self.cfg.hard_alloc_errors {
                ServiceState::Shed
            } else if retired >= self.cfg.soft_retired_bytes
                || errs >= self.cfg.soft_alloc_errors
                || corpses > self.cfg.soft_corpses
            {
                ServiceState::NoResize
            } else {
                ServiceState::Normal
            };

        let cur = self.state();
        let next = if severity > cur {
            // Escalate immediately: one hot poll is enough.
            self.clean_polls.store(0, Ordering::Relaxed);
            severity
        } else if severity == ServiceState::Normal && ej_delta == 0 {
            // A clean poll; de-escalate one rung per heal_polls of them.
            if cur == ServiceState::Normal {
                cur
            } else {
                let clean = self.clean_polls.fetch_add(1, Ordering::Relaxed) + 1;
                if clean >= self.cfg.heal_polls {
                    self.clean_polls.store(0, Ordering::Relaxed);
                    cur.relaxed()
                } else {
                    cur
                }
            }
        } else {
            // Still unwell (or ejections in flight): hold the rung.
            self.clean_polls.store(0, Ordering::Relaxed);
            cur
        };

        if next != cur {
            self.state.store(next as u8, Ordering::Relaxed);
            self.transitions.lock().unwrap().push(Transition {
                at_ms: self.start.elapsed().as_millis() as u64,
                from: cur,
                to: next,
                retired_bytes: retired,
                alloc_errors: errs,
                corpses,
            });
        }
        next
    }

    /// Snapshot the rung, refusal counters, and transition log.
    pub fn stats(&self) -> HealthStats {
        HealthStats {
            state: self.state(),
            shed_total: self.shed_total.load(Ordering::Relaxed),
            overloaded_total: self.overloaded_total.load(Ordering::Relaxed),
            alloc_errors_total: self.alloc_errs_total.load(Ordering::Relaxed),
            transitions: self.transitions.lock().unwrap().clone(),
        }
    }

    /// Every rung change so far, in order.
    pub fn transitions(&self) -> Vec<Transition> {
        self.transitions.lock().unwrap().clone()
    }

    /// Milliseconds from the first departure from `Normal` to the last
    /// return to it — the campaign's recovery window. `None` if the ladder
    /// never left `Normal` or has not yet returned.
    pub fn recovery_ms(&self) -> Option<u64> {
        let log = self.transitions.lock().unwrap();
        let first_out = log.iter().find(|t| t.from == ServiceState::Normal)?;
        let last_back = log.iter().rev().find(|t| t.to == ServiceState::Normal)?;
        if self.state() != ServiceState::Normal {
            return None;
        }
        Some(last_back.at_ms.saturating_sub(first_out.at_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HealthCfg {
        HealthCfg {
            // Retired-byte budgets far above anything a unit test retires,
            // so only the error window drives these transitions.
            soft_retired_bytes: usize::MAX / 2,
            hard_retired_bytes: usize::MAX / 2,
            soft_alloc_errors: 2,
            hard_alloc_errors: 8,
            soft_corpses: usize::MAX / 2,
            heal_polls: 2,
        }
    }

    #[test]
    fn escalates_immediately_and_heals_one_rung_at_a_time() {
        let h = Health::new(tiny());
        assert_eq!(h.state(), ServiceState::Normal);

        for _ in 0..8 {
            h.note_alloc_error();
        }
        assert_eq!(
            h.poll(),
            ServiceState::Shed,
            "hard window sheds in one poll"
        );

        // One clean poll is not enough to come down…
        assert_eq!(h.poll(), ServiceState::Shed);
        // …the second heals exactly one rung…
        assert_eq!(h.poll(), ServiceState::NoResize);
        // …and two more bring it home.
        assert_eq!(h.poll(), ServiceState::NoResize);
        assert_eq!(h.poll(), ServiceState::Normal);

        let log = h.transitions();
        let path: Vec<(ServiceState, ServiceState)> = log.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            path,
            vec![
                (ServiceState::Normal, ServiceState::Shed),
                (ServiceState::Shed, ServiceState::NoResize),
                (ServiceState::NoResize, ServiceState::Normal),
            ]
        );
        assert!(h.recovery_ms().is_some());
    }

    #[test]
    fn a_dirty_poll_resets_the_healing_streak() {
        let h = Health::new(tiny());
        h.note_alloc_error();
        h.note_alloc_error();
        assert_eq!(
            h.poll(),
            ServiceState::NoResize,
            "soft window closes admission"
        );

        assert_eq!(h.poll(), ServiceState::NoResize); // clean #1
        h.note_alloc_error();
        h.note_alloc_error();
        assert_eq!(
            h.poll(),
            ServiceState::NoResize,
            "dirty poll holds the rung"
        );
        assert_eq!(
            h.poll(),
            ServiceState::NoResize,
            "streak restarted: clean #1 again"
        );
        assert_eq!(h.poll(), ServiceState::Normal, "clean #2 heals");
    }

    #[test]
    fn refusal_counters_accumulate() {
        let h = Health::new(HealthCfg::default());
        h.note_shed();
        h.note_shed();
        h.note_overloaded();
        h.note_alloc_error();
        let s = h.stats();
        assert_eq!(s.shed_total, 2);
        assert_eq!(s.overloaded_total, 1);
        assert_eq!(s.alloc_errors_total, 1);
        assert_eq!(s.state, ServiceState::Normal);
        assert!(s.transitions.is_empty());
    }
}
