//! Deterministic fault injection and thread-death ("abandonment") support.
//!
//! Robustness claims are only as good as the faults they were tested
//! under. This module provides the two fault classes the library promises
//! to survive (DESIGN.md "Fault model"):
//!
//! 1. **Allocation failure** — every allocation site in the stack funnels
//!    through [`check`]-guarded paths; an armed schedule turns the nth (or
//!    a probabilistic, or a scripted) allocation into an
//!    `Err(AllocError)` that surfaces through the structures' `try_*`
//!    variants instead of aborting the process.
//! 2. **Thread death** — a kill site ([`check_kill`]) unwinds the current
//!    thread out of an in-flight composed operation via [`abandon`]. The
//!    in-flight descriptor was *published* before every kill site, so
//!    survivors complete the operation by helping; the dead thread's id,
//!    hazard-slot bank, and pooled resources are adopted afterwards
//!    (`lfc_dcas::adopt_dead_threads`).
//!
//! # Zero cost when disarmed
//!
//! Every site begins with one `Relaxed` load of the process-global
//! armed-generation word and a predictable branch — and commit paths that
//! pass several sites hoist even that into a single [`gate`] snapshot
//! threaded through as a [`FaultGate`]; no site is ever evaluated, no lock
//! taken, no counter bumped. Arming happens programmatically
//! ([`arm_site`] / [`arm_all`] / [`arm_script`]) or through the
//! `LFC_FAULTS` environment variable, read lazily on the first check:
//!
//! ```text
//! LFC_FAULTS="alloc.block=nth:3;map.segment=always;*=prob:1000:42"
//! ```
//!
//! entries are `site=schedule` pairs separated by `;` or `,`; schedules
//! are `nth:N` (fire on the Nth check of that site, once), `every:N`,
//! `prob:PPM[:SEED]` (parts-per-million, seeded PRNG), or `always`. The
//! site `*` arms a wildcard consulted when no exact entry matches. A
//! malformed spec panics — a fault campaign that silently doesn't run is
//! worse than no campaign.
//!
//! # Site registry
//!
//! Sites are `&'static str` names chosen at the call site; the schedule
//! decides *whether* to fire, the caller decides *what* a fired fault
//! means (an `AllocError`, an [`abandon`]). Current sites:
//!
//! | site | layer | meaning when fired |
//! |---|---|---|
//! | `alloc.block` | lfc-alloc | backstop: any pooled block allocation fails |
//! | `dcas.desc`, `dcas.casn`, `dcas.rdcss` | lfc-dcas | descriptor-pool refill fails |
//! | `dcas.announced`, `kcas.announced` | lfc-dcas | owner dies right after announcing its descriptor |
//! | `dcas.published` | lfc-dcas | owner dies right after the D10 install |
//! | `dcas.help` | lfc-dcas | helper dies at the helping boundary |
//! | `structures.node`, `structures.header` | lfc-structures | node/header allocation fails |
//! | `map.segment`, `map.dummy`, `map.grow` | lfc-structures | split-ordered map degrades (no resize) |
//! | `batch.node`, `batch.gate` | lfc-core | gate allocation fails (falls back to direct execution) |
//! | `batch.submitted` | lfc-core | submitter dies after publishing its request |
//!
//! Threads that must survive a kill campaign (the harness's survivor
//! pool, verification code) call [`shield_thread`]; exiting and
//! already-abandoning threads are implicitly shielded so teardown paths
//! can never be re-killed into an abort.

use crate::rng::SmallRng;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Arming state + schedules
// ---------------------------------------------------------------------------

/// `ARMED_GEN` value meaning "`LFC_FAULTS` not consulted yet".
const GEN_UNKNOWN: usize = usize::MAX;
/// `ARMED_GEN` value meaning "no schedule armed anywhere".
const GEN_DISARMED: usize = 0;

/// Process-global arming state: the **armed-generation word**. Holds
/// [`GEN_UNKNOWN`] until the environment is consulted, [`GEN_DISARMED`]
/// while nothing is armed, and a fresh nonzero generation (bumped by every
/// `arm_*` call) while any schedule is live. A single Relaxed load of this
/// one word classifies the process, so hot paths that used to pay one load
/// per fault site now snapshot it once per commit as a [`FaultGate`] and
/// test a register bool at each site. Plain `std` atomic on purpose: fault
/// bookkeeping is harness infrastructure, not protocol state — it must not
/// create model-checker choice points.
static ARMED_GEN: AtomicUsize = AtomicUsize::new(GEN_UNKNOWN);

/// Monotonic generation source for [`ARMED_GEN`]; starts at 1 so an armed
/// generation can never collide with [`GEN_DISARMED`].
static NEXT_GEN: AtomicUsize = AtomicUsize::new(1);

/// When a site should fire.
#[derive(Debug, Clone)]
pub enum Schedule {
    /// Fire exactly once, on the `n`th check of the site (1-based).
    Nth(u64),
    /// Fire on every `n`th check of the site.
    EveryNth(u64),
    /// Fire with probability `ppm`/1 000 000 per check, from a seeded PRNG.
    Prob {
        /// Parts-per-million firing probability.
        ppm: u32,
        /// PRNG seed (deterministic replay).
        seed: u64,
    },
    /// Fire on every check.
    Always,
}

struct SiteState {
    schedule: Option<Schedule>,
    rng: Option<SmallRng>,
    checks: u64,
    fired: u64,
}

impl SiteState {
    fn new(schedule: Option<Schedule>) -> Self {
        let rng = match &schedule {
            Some(Schedule::Prob { seed, .. }) => Some(SmallRng::seed_from_u64(*seed)),
            _ => None,
        };
        SiteState {
            schedule,
            rng,
            checks: 0,
            fired: 0,
        }
    }

    fn eval(&mut self) -> bool {
        self.checks += 1;
        let fire = match &self.schedule {
            None => false,
            Some(Schedule::Nth(n)) => self.checks == *n,
            Some(Schedule::EveryNth(n)) => self.checks.is_multiple_of(*n),
            Some(Schedule::Always) => true,
            Some(Schedule::Prob { ppm, .. }) => {
                self.rng
                    .as_mut()
                    .expect("prob schedule carries rng")
                    .below(1_000_000)
                    < *ppm as u64
            }
        };
        if fire {
            self.fired += 1;
        }
        fire
    }
}

#[derive(Default)]
struct FaultState {
    sites: BTreeMap<String, SiteState>,
    wildcard: Option<SiteState>,
    script: Vec<String>,
    script_pos: usize,
}

static REGISTRY: Mutex<Option<FaultState>> = Mutex::new(None);

fn lock_registry() -> std::sync::MutexGuard<'static, Option<FaultState>> {
    // A panic (e.g. an injected abandon) while *not* holding the lock can
    // never poison it; recover anyway so one failed test cannot wedge the
    // whole process's fault machinery.
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// Set by harness survivors: this thread never takes an injected fault.
    static SHIELDED: Cell<bool> = const { Cell::new(false) };
    /// Set by [`abandon`]: this thread is unwinding out of an operation it
    /// will never complete. Read by descriptor-handle `Drop` impls to leak
    /// (instead of recycle) published descriptors.
    static ABANDONING: Cell<bool> = const { Cell::new(false) };
}

/// Exempt (or re-expose) the current thread from all fault sites.
/// Harness survivors and verification code shield themselves so a kill
/// campaign only reaps its intended victims.
pub fn shield_thread(on: bool) {
    let _ = SHIELDED.try_with(|c| c.set(on));
}

fn is_shielded() -> bool {
    // Threads whose TLS is gone are mid-exit: never fault them.
    SHIELDED.try_with(|c| c.get()).unwrap_or(true)
}

/// A one-word snapshot of the process arming state, taken with [`gate`].
///
/// Commit paths that pass several fault sites (a composed move pays
/// `dcas.announced`, `dcas.published`, possibly `dcas.help`, plus the
/// allocation sites of the stages) load the armed-generation word **once**
/// and thread this `Copy` token through; each per-site check then costs a
/// register test instead of a shared load. Semantics: a schedule armed
/// *after* the snapshot is not seen until the next `gate()` (harnesses arm
/// before launching victims, so no armed fire is ever missed in practice);
/// while armed, every site still evaluates its own schedule in
/// `check_slow`, so per-site firing is unchanged.
#[derive(Clone, Copy, Debug)]
pub struct FaultGate {
    armed: bool,
}

impl FaultGate {
    /// Site check against this snapshot; see [`check`].
    #[inline]
    pub fn check(self, site: &'static str) -> bool {
        self.armed && check_slow(site)
    }

    /// Kill-site check against this snapshot; see [`check_kill`].
    #[inline]
    pub fn check_kill(self, site: &'static str) {
        if self.armed && check_slow(site) {
            abandon();
        }
    }
}

/// Snapshot the armed-generation word (one `Relaxed` load) into a
/// [`FaultGate`] for a run of site checks.
#[inline]
pub fn gate() -> FaultGate {
    let armed = match ARMED_GEN.load(Ordering::Relaxed) {
        GEN_DISARMED => false,
        GEN_UNKNOWN => {
            init_from_env();
            ARMED_GEN.load(Ordering::Relaxed) != GEN_DISARMED
        }
        _ => true,
    };
    FaultGate { armed }
}

/// Check a named fault site. Returns `true` when the armed schedule says
/// this check fails. The disarmed fast path is a single `Relaxed` load of
/// the armed-generation word.
#[inline]
pub fn check(site: &'static str) -> bool {
    gate().check(site)
}

#[cold]
fn check_slow(site: &'static str) -> bool {
    // Teardown and abandonment paths are implicitly shielded: an injected
    // failure inside a TLS destructor would double-panic into an abort.
    if is_shielded() || crate::tid::thread_is_exiting() || thread_is_abandoning() {
        return false;
    }
    let mut reg = lock_registry();
    let Some(st) = reg.as_mut() else { return false };
    // Scripted faults take precedence: the front of the script names the
    // next site to fail, in order.
    if let Some(next) = st.script.get(st.script_pos) {
        if next == site {
            st.script_pos += 1;
            let s = st
                .sites
                .entry(site.to_string())
                .or_insert_with(|| SiteState::new(None));
            s.checks += 1;
            s.fired += 1;
            return true;
        }
    }
    if let Some(s) = st.sites.get_mut(site) {
        if s.schedule.is_some() {
            return s.eval();
        }
        s.checks += 1;
    } else {
        // Record the observation so `counters()` names every touched site.
        st.sites
            .entry(site.to_string())
            .or_insert_with(|| SiteState::new(None))
            .checks += 1;
    }
    match &mut st.wildcard {
        Some(w) => {
            let fired = w.eval();
            if fired {
                // Attribute the fire to the concrete site only: the `*`
                // row reports checks (its schedule still paces off them),
                // so each injected fault is counted exactly once and
                // `fired_total` stays honest.
                w.fired -= 1;
                st.sites
                    .entry(site.to_string())
                    .or_insert_with(|| SiteState::new(None))
                    .fired += 1;
            }
            fired
        }
        None => false,
    }
}

fn mark_armed() {
    // A fresh generation per arm: gates snapshotted before this store stay
    // disarmed for their in-flight commit; everything after sees armed.
    ARMED_GEN.store(NEXT_GEN.fetch_add(1, Ordering::Relaxed), Ordering::Release);
    // Under the model checker the kill payload is recognized by
    // `lfc-model`'s thread wrapper, which must know how to finish the
    // abandonment while the dead thread is still scheduled.
    #[cfg(lfc_model)]
    lfc_model::rt::register_abandon_epilogue(complete_abandonment);
}

fn with_state<R>(f: impl FnOnce(&mut FaultState) -> R) -> R {
    let mut reg = lock_registry();
    let st = reg.get_or_insert_with(FaultState::default);
    f(st)
}

/// Arm `site` with `schedule` (resetting its counters).
pub fn arm_site(site: &str, schedule: Schedule) {
    with_state(|st| {
        st.sites
            .insert(site.to_string(), SiteState::new(Some(schedule)));
    });
    mark_armed();
}

/// Arm every site (wildcard) with `schedule`. Exact [`arm_site`] entries
/// still take precedence.
pub fn arm_all(schedule: Schedule) {
    with_state(|st| st.wildcard = Some(SiteState::new(Some(schedule))));
    mark_armed();
}

/// Arm a scripted schedule: the `k`th entry names the site whose next
/// check fails, strictly in order. Replaces any previous script.
pub fn arm_script(sites: &[&str]) {
    with_state(|st| {
        st.script = sites.iter().map(|s| s.to_string()).collect();
        st.script_pos = 0;
    });
    mark_armed();
}

/// Disarm everything and clear all schedules, scripts and counters.
pub fn disarm() {
    *lock_registry() = None;
    ARMED_GEN.store(GEN_DISARMED, Ordering::Release);
}

/// Disarm one named site, leaving every other schedule armed and **all**
/// counters (including the disarmed site's) intact. Phased chaos
/// campaigns retire one adversary at a time this way — e.g. kill sites
/// first, allocation sites later — and still read the full per-site
/// check/fire history at the end. Passing `"*"` disarms the wildcard.
///
/// When the last schedule goes (no site, no wildcard, no unconsumed
/// script), the armed-generation word drops to disarmed and the hot
/// paths are back to their single predictable branch.
pub fn disarm_site(site: &str) {
    // An explicit disarm must not beat the lazy env consult: resolve the
    // environment first so `LFC_FAULTS`-armed schedules are visible (and
    // survivors of this disarm stay armed).
    if ARMED_GEN.load(Ordering::Relaxed) == GEN_UNKNOWN {
        init_from_env();
    }
    let any_left = with_state(|st| {
        if site == "*" {
            if let Some(w) = &mut st.wildcard {
                w.schedule = None;
                w.rng = None;
            }
        } else if let Some(s) = st.sites.get_mut(site) {
            s.schedule = None;
            s.rng = None;
        }
        st.sites.values().any(|s| s.schedule.is_some())
            || st.wildcard.as_ref().is_some_and(|w| w.schedule.is_some())
            || st.script_pos < st.script.len()
    });
    if any_left {
        // Fresh generation: gates snapshotted before this call may still
        // fire the retired site once; everything after sees the new mix.
        mark_armed();
    } else {
        ARMED_GEN.store(GEN_DISARMED, Ordering::Release);
    }
}

/// Whether any fault schedule is currently armed (one `Relaxed` load plus
/// a lazy first-use environment consult). A cheap health signal: service
/// governors surface it in diagnostics so a chaos campaign that leaks an
/// armed site into a measurement phase is visible.
pub fn armed() -> bool {
    gate().armed
}

/// Per-site `(site, checks, fired)` counters, sorted by site name.
/// Empty when nothing was ever armed. Wildcard-injected faults are
/// attributed to the concrete site they fired at; the trailing `"*"` row
/// carries the wildcard's check count only.
pub fn counters() -> Vec<(String, u64, u64)> {
    let reg = lock_registry();
    let Some(st) = reg.as_ref() else {
        return Vec::new();
    };
    let mut out: Vec<(String, u64, u64)> = st
        .sites
        .iter()
        .map(|(k, v)| (k.clone(), v.checks, v.fired))
        .collect();
    if let Some(w) = &st.wildcard {
        out.push(("*".to_string(), w.checks, w.fired));
    }
    out
}

/// Total number of injected faults across all sites.
pub fn fired_total() -> u64 {
    counters().iter().map(|(_, _, f)| f).sum()
}

fn init_from_env() {
    let mut reg = lock_registry();
    if ARMED_GEN.load(Ordering::Relaxed) != GEN_UNKNOWN {
        return; // raced with another initializer or an explicit arm
    }
    match std::env::var("LFC_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            // Merge into the existing registry rather than replacing it: a
            // concurrent `arm_site`/`arm_all` may have inserted its
            // schedule after our caller loaded `ARMED_GEN == GEN_UNKNOWN` but
            // before its own `mark_armed` ran; clobbering the registry
            // here would silently discard that programmatic schedule. On a
            // collision the programmatic entry wins (it is the more
            // deliberate of the two).
            let st = reg.get_or_insert_with(FaultState::default);
            for entry in spec.split([';', ',']).filter(|e| !e.trim().is_empty()) {
                let (site, sched) = entry
                    .split_once('=')
                    .unwrap_or_else(|| panic!("LFC_FAULTS: missing '=' in {entry:?}"));
                let sched = parse_schedule(sched.trim())
                    .unwrap_or_else(|| panic!("LFC_FAULTS: bad schedule in {entry:?}"));
                if site.trim() == "*" {
                    if st.wildcard.as_ref().is_none_or(|w| w.schedule.is_none()) {
                        st.wildcard = Some(SiteState::new(Some(sched)));
                    }
                } else {
                    match st.sites.entry(site.trim().to_string()) {
                        std::collections::btree_map::Entry::Vacant(v) => {
                            v.insert(SiteState::new(Some(sched)));
                        }
                        std::collections::btree_map::Entry::Occupied(mut o) => {
                            if o.get().schedule.is_none() {
                                o.insert(SiteState::new(Some(sched)));
                            }
                        }
                    }
                }
            }
            drop(reg);
            mark_armed();
        }
        _ => ARMED_GEN.store(GEN_DISARMED, Ordering::Release),
    }
}

fn parse_schedule(s: &str) -> Option<Schedule> {
    if s == "always" {
        return Some(Schedule::Always);
    }
    let mut parts = s.split(':');
    let kind = parts.next()?;
    match kind {
        "nth" => Some(Schedule::Nth(parts.next()?.parse().ok()?)),
        "every" => Some(Schedule::EveryNth(parts.next()?.parse().ok()?)),
        "prob" => {
            let ppm: u32 = parts.next()?.parse().ok()?;
            let seed: u64 = match parts.next() {
                Some(x) => x.parse().ok()?,
                None => 0x5EED,
            };
            Some(Schedule::Prob { ppm, seed })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Abandonment (injected thread death)
// ---------------------------------------------------------------------------

/// The panic payload [`abandon`] unwinds with. `lfc-model` duplicates this
/// constant (`lfc_model::rt::ABANDON_PAYLOAD` — lfc-model cannot depend on
/// this crate) so its thread wrapper can distinguish an injected death
/// from a genuine failure; keep the two strings identical.
pub const ABANDON_PAYLOAD: &str = "lfc: operation abandoned (injected thread death)";

/// Whether the current thread is unwinding out of an operation it will
/// never complete. Descriptor-handle `Drop` impls consult this to *leak*
/// a published descriptor (helpers may still hold it) instead of
/// recycling it, and `Engine`'s drop keeps the corpse's ENTRY hazards in
/// place for them.
pub fn thread_is_abandoning() -> bool {
    ABANDONING.try_with(|c| c.get()).unwrap_or(false)
}

/// Kill the current thread's operation mid-flight: sets the abandoning
/// flag and unwinds with [`ABANDON_PAYLOAD`]. Every kill site sits *after*
/// the operation's descriptor is announced, so survivors can always
/// complete it by helping.
pub fn abandon() -> ! {
    ABANDONING.with(|c| c.set(true));
    std::panic::panic_any(ABANDON_PAYLOAD);
}

/// Check a kill site: if the armed schedule fires, [`abandon`] the thread.
#[inline]
pub fn check_kill(site: &'static str) {
    if check(site) {
        abandon();
    }
}

/// Whether a caught panic payload is an [`abandon`] unwind.
pub fn is_abandon_payload(p: &(dyn std::any::Any + Send)) -> bool {
    p.downcast_ref::<&'static str>() == Some(&ABANDON_PAYLOAD)
}

/// Run `f`; if it [`abandon`]s, finish the abandonment (the thread becomes
/// a *corpse*: its id, hazard bank and any published descriptor stay live
/// until a survivor adopts them) and return `None`. Other panics resume.
///
/// This is the harness-side wrapper for victim threads; `lfc-model`'s
/// thread wrapper performs the same steps for model threads.
pub fn abandonment_scope<R>(f: impl FnOnce() -> R) -> Option<R> {
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => Some(r),
        Err(p) if is_abandon_payload(p.as_ref()) => {
            complete_abandonment();
            None
        }
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// Corpse registry: tids whose owning thread died mid-operation and whose
/// id/bank/descriptors await adoption. Plain `std` atomics (see `ARMED_GEN`).
static CORPSE: [AtomicBool; crate::tid::MAX_THREADS] =
    [const { AtomicBool::new(false) }; crate::tid::MAX_THREADS];
static CORPSE_COUNT: AtomicUsize = AtomicUsize::new(0);
static ABANDONED_TOTAL: AtomicUsize = AtomicUsize::new(0);
static ADOPTED_TOTAL: AtomicUsize = AtomicUsize::new(0);

/// Finish an abandonment on the dying thread: run the registered
/// thread-exit hooks (allocator-magazine and descriptor-pool flushes,
/// hazard retire-list hand-off — all safe because the abandoning-aware
/// `Drop` impls already leaked anything still published), then park the
/// thread id as a **corpse**: `CLAIMED` stays set and the active count
/// stays up, so no survivor can enter the solo regime or reuse the bank
/// while the dead thread's descriptor may still be installed. A survivor
/// later adopts the corpse (`lfc_dcas::adopt_dead_threads`), which helps
/// the announced operation to completion and then [`release_corpse`]s the
/// id. Safe (a no-op) on threads that never claimed an id.
pub fn complete_abandonment() {
    if let Some(tid) = crate::tid::abandon_thread_slot() {
        CORPSE[tid as usize].store(true, Ordering::Release);
        CORPSE_COUNT.fetch_add(1, Ordering::Relaxed);
        ABANDONED_TOTAL.fetch_add(1, Ordering::Relaxed);
    }
    let _ = ABANDONING.try_with(|c| c.set(false));
}

/// Tids currently parked as corpses.
pub fn corpses() -> Vec<u16> {
    (0..crate::tid::registered_high_water())
        .filter(|&i| CORPSE[i].load(Ordering::Acquire))
        .map(|i| i as u16)
        .collect()
}

/// Whether `tid` is currently a corpse.
pub fn is_corpse(tid: u16) -> bool {
    CORPSE[tid as usize].load(Ordering::Acquire)
}

/// Number of corpses currently awaiting adoption.
pub fn corpse_count() -> usize {
    CORPSE_COUNT.load(Ordering::Relaxed)
}

/// Total threads ever abandoned (monotonic).
pub fn abandoned_total() -> usize {
    ABANDONED_TOTAL.load(Ordering::Relaxed)
}

/// Total corpses ever adopted (monotonic).
pub fn adopted_total() -> usize {
    ADOPTED_TOTAL.load(Ordering::Relaxed)
}

/// Claim the right to release corpse `tid` (exactly one adopter wins).
/// The winner must have already helped the corpse's announced operation
/// to completion, then call [`release_corpse`].
pub fn claim_corpse(tid: u16) -> bool {
    CORPSE[tid as usize]
        .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
}

/// Put a claimed corpse back on the adoption list: the adopter could not
/// finish helping the announced operation (its own allocation failed
/// mid-help), so the corpse's id, bank and announce slot must stay parked
/// for a later pass. Call only after [`claim_corpse`] succeeded and
/// *instead of* [`release_corpse`] — the counters are untouched because
/// the claim released nothing.
pub fn repark_corpse(tid: u16) {
    CORPSE[tid as usize].store(true, Ordering::Release);
}

/// Release a claimed corpse's resources: runs the tid finalizers (hazard
/// bank + epoch-slot reset) and frees the id back to the registry.
///
/// Call only after [`claim_corpse`] succeeded **and** the corpse's
/// announced operation is decided — clearing the bank drops the corpse's
/// hazard protections.
pub fn release_corpse(tid: u16) {
    crate::tid::release_corpse_tid(tid);
    CORPSE_COUNT.fetch_sub(1, Ordering::Relaxed);
    ADOPTED_TOTAL.fetch_add(1, Ordering::Relaxed);
}

/// Install (once) a panic hook that suppresses the default report for
/// [`abandon`] unwinds — a kill campaign is noisy otherwise — while
/// delegating every genuine panic to the previous hook.
pub fn install_quiet_abandon_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<&'static str>() == Some(&ABANDON_PAYLOAD) {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests share process-global arming state; serialize them.
    static SER: Mutex<()> = Mutex::new(());
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SER.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn abandon_payload_matches_model_duplicate() {
        // lfc-model duplicates the constant (it cannot depend on us).
        assert_eq!(ABANDON_PAYLOAD, lfc_model::rt::ABANDON_PAYLOAD);
    }

    #[test]
    fn disarmed_never_fires() {
        let _s = serial();
        disarm();
        for _ in 0..1000 {
            assert!(!check("test.site"));
        }
    }

    #[test]
    fn nth_fires_exactly_once() {
        let _s = serial();
        arm_site("test.nth", Schedule::Nth(3));
        let fired: Vec<bool> = (0..6).map(|_| check("test.nth")).collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        let c = counters();
        let row = c.iter().find(|(s, _, _)| s == "test.nth").unwrap();
        assert_eq!((row.1, row.2), (6, 1));
        disarm();
    }

    #[test]
    fn every_nth_fires_periodically() {
        let _s = serial();
        arm_site("test.every", Schedule::EveryNth(2));
        let fired = (0..6).filter(|_| check("test.every")).count();
        assert_eq!(fired, 3);
        disarm();
    }

    #[test]
    fn script_fires_in_order() {
        let _s = serial();
        arm_script(&["a.site", "b.site"]);
        assert!(!check("b.site"), "script front is a.site");
        assert!(check("a.site"));
        assert!(check("b.site"));
        assert!(!check("a.site"), "script exhausted");
        disarm();
    }

    #[test]
    fn wildcard_covers_unlisted_sites() {
        let _s = serial();
        arm_all(Schedule::Always);
        assert!(check("any.site"));
        assert!(check("other.site"));
        disarm();
    }

    #[test]
    fn wildcard_fires_counted_once() {
        let _s = serial();
        arm_all(Schedule::Always);
        assert!(check("wild.a"));
        assert!(check("wild.a"));
        assert!(check("wild.b"));
        // Each injected fault appears exactly once in the totals: the
        // concrete site carries the attribution, the `*` row only checks.
        assert_eq!(fired_total(), 3);
        let c = counters();
        let star = c.iter().find(|(s, _, _)| s == "*").unwrap();
        assert_eq!((star.1, star.2), (3, 0));
        let a = c.iter().find(|(s, _, _)| s == "wild.a").unwrap();
        assert_eq!(a.2, 2);
        disarm();
    }

    #[test]
    fn disarm_site_retires_one_adversary_at_a_time() {
        let _s = serial();
        arm_site("phase.kill", Schedule::Always);
        arm_site("phase.oom", Schedule::Always);
        assert!(check("phase.kill") && check("phase.oom"));

        // Retiring one adversary leaves the other armed and keeps the
        // retired site's counters for the end-of-campaign report.
        disarm_site("phase.kill");
        assert!(armed(), "phase.oom is still live");
        assert!(!check("phase.kill"), "retired site never fires again");
        assert!(check("phase.oom"));
        let c = counters();
        let kill = c.iter().find(|(s, _, _)| s == "phase.kill").unwrap();
        assert_eq!(kill.2, 1, "history of the retired site is preserved");
        assert!(kill.1 >= 2, "post-disarm checks still counted");

        // Retiring the last schedule drops the armed-generation word:
        // the disarmed fast path is back.
        disarm_site("phase.oom");
        assert!(!armed(), "no schedule left anywhere");
        assert!(!check("phase.oom"));
        // Counters survive until the full disarm: phase.kill fired once,
        // phase.oom twice (before each retirement).
        assert_eq!(fired_total(), 3);
        disarm();
    }

    #[test]
    fn disarm_site_covers_the_wildcard() {
        let _s = serial();
        arm_all(Schedule::Always);
        arm_site("exact.site", Schedule::Always);
        disarm_site("*");
        assert!(armed(), "exact entry outlives the wildcard");
        assert!(!check("unlisted.site"), "wildcard is gone");
        assert!(check("exact.site"));
        disarm_site("exact.site");
        assert!(!armed());
        disarm();
    }

    #[test]
    fn disarm_site_on_unknown_site_is_a_no_op() {
        let _s = serial();
        arm_site("real.site", Schedule::Always);
        disarm_site("never.armed");
        assert!(armed());
        assert!(check("real.site"));
        disarm();
    }

    #[test]
    fn repark_returns_corpse_to_the_list() {
        let _s = serial();
        let tid = 0u16;
        CORPSE[tid as usize].store(true, Ordering::Release);
        CORPSE_COUNT.fetch_add(1, Ordering::Relaxed);
        assert!(claim_corpse(tid));
        assert!(!is_corpse(tid), "claimed corpse leaves the list");
        assert_eq!(corpse_count(), 1, "a claim releases nothing");
        repark_corpse(tid);
        assert!(is_corpse(tid), "re-parked corpse is adoptable again");
        assert_eq!(corpse_count(), 1);
        // Clean up without running tid finalizers (the slot was synthetic).
        assert!(claim_corpse(tid));
        CORPSE_COUNT.fetch_sub(1, Ordering::Relaxed);
    }

    #[test]
    fn prob_is_deterministic_for_a_seed() {
        let _s = serial();
        let run = || {
            arm_site(
                "test.prob",
                Schedule::Prob {
                    ppm: 250_000,
                    seed: 7,
                },
            );
            let v: Vec<bool> = (0..64).map(|_| check("test.prob")).collect();
            disarm();
            v
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shielded_thread_never_fires() {
        let _s = serial();
        arm_all(Schedule::Always);
        shield_thread(true);
        assert!(!check("any.site"));
        shield_thread(false);
        assert!(check("any.site"));
        disarm();
    }

    #[test]
    fn abandonment_scope_roundtrip() {
        let _s = serial();
        // A non-abandon panic must propagate.
        let r = std::panic::catch_unwind(|| abandonment_scope(|| panic!("real failure")));
        assert!(r.is_err());
        // An abandon is absorbed; the flag is visible while unwinding.
        let observed = std::sync::Arc::new(AtomicBool::new(false));
        let obs = observed.clone();
        struct Probe(std::sync::Arc<AtomicBool>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.store(thread_is_abandoning(), Ordering::SeqCst);
            }
        }
        let r = std::thread::spawn(move || {
            abandonment_scope(|| {
                let _p = Probe(obs);
                abandon();
            })
        })
        .join()
        .unwrap();
        assert!(r.is_none());
        assert!(
            observed.load(Ordering::SeqCst),
            "drops during the abandon unwind must see the abandoning flag"
        );
    }
}
