//! Cache-line padding to eliminate false sharing.
//!
//! Frequently written per-thread or global atomics that happen to share a
//! cache line serialize on the coherence protocol even when the *logical*
//! sharing is zero. [`CachePadded`] aligns (and therefore sizes) its
//! contents to 128 bytes: the spatial prefetcher on modern x86 pulls cache
//! lines in aligned 128-byte pairs, and Apple/ARM big cores use 128-byte
//! lines outright, so 64-byte padding still false-shares there.

/// Pads and aligns `T` to 128 bytes so two `CachePadded` values never share
/// a (prefetch-paired) cache line.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consume the padding, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_values_are_line_separated() {
        let xs = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &*xs[0] as *const u8 as usize;
        let b = &*xs[1] as *const u8 as usize;
        assert!(b - a >= 128);
        assert_eq!(a % 128, 0);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}
