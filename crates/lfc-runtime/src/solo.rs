//! Solo-regime detection: an asymmetric Dekker handshake that lets the
//! single registered thread run short critical sections whose intermediate
//! states no other thread can ever observe.
//!
//! The composition layer uses this for its uncontended fast path: a
//! two-word update normally needs the full DCAS descriptor protocol so that
//! concurrent readers can help, but while *no other thread is registered*
//! there is nobody to observe the window between the two CASes — provided
//! no thread can **become** registered inside that window. The handshake
//! closes that window:
//!
//! * the solo thread publishes `SOLO_INFLIGHT = 1`, then checks that it is
//!   still the only active thread ([`try_enter`]);
//! * a registering thread increments the active count, then spins until
//!   `SOLO_INFLIGHT == 0` ([`registration_barrier`], called from the tid
//!   registry's claim path).
//!
//! Under the SeqCst total order one of the two must see the other: either
//! the solo thread sees `active > 1` and falls back to the descriptor
//! protocol, or the registering thread sees the in-flight flag and waits
//! for the (two-CAS-long) section to finish. Registration is a once-per-
//! thread-lifetime event, so the wait is paid at most once per thread and
//! is bounded by the solo section's length; it does not affect the
//! lock-freedom of steady-state operations, which never wait.

use crate::pad::CachePadded;
use crate::sync::{AtomicUsize, Ordering};
use crate::tid;

/// Non-zero while the solo thread is inside a fast-path critical section.
/// Padded: sits on a line written only by the solo thread, so registering
/// threads spinning on it do not disturb unrelated globals.
static SOLO_INFLIGHT: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));

/// A token proving the solo section was entered; ends the section on drop.
#[derive(Debug)]
pub struct SoloSection {
    _not_send: std::marker::PhantomData<*mut ()>,
}

/// Try to enter a solo critical section.
///
/// Returns `Some` iff the calling thread is the *only* active registered
/// thread, in which case no other thread can observe shared memory until
/// the returned token is dropped (new registrants block in
/// [`registration_barrier`]). Keep the section to a handful of instructions.
pub fn try_enter() -> Option<SoloSection> {
    // Cheap gate first: under contention (the common multi-thread case)
    // this is one Relaxed load of a rarely-written padded line, so
    // contended commits do not all write-invalidate the shared flag line.
    // The load is only a hint — the authoritative check is the Dekker
    // store+load below, re-run after publishing the flag.
    if tid::active_threads_relaxed() != 1 {
        return None;
    }
    // SeqCst store→load pair: the Dekker publication. The store must be
    // ordered before the active-count load in the global SC order, which
    // Release/Acquire cannot guarantee (store→load reordering).
    SOLO_INFLIGHT.store(1, Ordering::SeqCst);
    if tid::active_threads() == 1 {
        Some(SoloSection {
            _not_send: std::marker::PhantomData,
        })
    } else {
        SOLO_INFLIGHT.store(0, Ordering::Relaxed);
        None
    }
}

impl Drop for SoloSection {
    fn drop(&mut self) {
        // Release: everything done inside the section happens-before any
        // registrant that observes the flag cleared and proceeds.
        SOLO_INFLIGHT.store(0, Ordering::Release);
    }
}

/// Called by the tid registry after a new thread increments the active
/// count: wait out any in-flight solo section so the new thread can never
/// observe its intermediate state.
pub(crate) fn registration_barrier() {
    // SeqCst (audited, required): this load is the registering side of the
    // Dekker pair and must participate in the SC total order — an Acquire
    // load has no ordering against `try_enter`'s flag store and could read
    // a stale 0 even though the solo thread already checked the active
    // count. As SeqCst: the claim path's SC increment precedes this load
    // in the SC order, so if the solo thread's count load missed the
    // increment, its flag store precedes this load in the SC order and is
    // observed (C++17 atomics.order p4: an SC load reads the last SC
    // write before it, or a later non-SC write — here only the section's
    // *ending* Release clear, which is equally safe). Registration is
    // once per thread lifetime, so the cost is irrelevant.
    while SOLO_INFLIGHT.load(Ordering::SeqCst) != 0 {
        crate::sync::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_iff_single_active_thread() {
        crate::current_tid();
        // This test thread might share the process with other live test
        // threads; only assert the consistent cases.
        match try_enter() {
            Some(tok) => {
                assert_eq!(tid::active_threads(), 1);
                drop(tok);
                // Re-entry works after drop.
                let again = try_enter();
                assert!(again.is_some());
            }
            None => assert!(tid::active_threads() > 1),
        }
        // A second live thread always forbids solo mode.
        std::thread::scope(|sc| {
            let (tx, rx) = std::sync::mpsc::channel::<()>();
            sc.spawn(move || {
                crate::current_tid();
                // Hold registration until the main assertion is done.
                rx.recv().ok();
            });
            while tid::active_threads() < 2 {
                std::hint::spin_loop();
            }
            assert!(try_enter().is_none());
            tx.send(()).unwrap();
        });
    }
}
