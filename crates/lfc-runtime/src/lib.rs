//! Runtime substrate for the lock-free composition library.
//!
//! Provides the pieces every other crate leans on:
//!
//! * [`tid`] — a registry handing out small dense thread ids. The DCAS
//!   protocol marks descriptor pointers with the helping thread's id
//!   (paper §3.2.2) and the hazard-pointer domain indexes its slot banks by
//!   thread id, so ids must be small integers, reused after thread exit.
//! * [`backoff`] — the doubling backoff function used by the paper's
//!   evaluation (§6) for both the blocking and the lock-free objects.
//! * [`lock`] — the test-test-and-set lock the paper uses for its blocking
//!   baseline composition (§6).

#![warn(missing_docs)]

pub mod backoff;
pub mod lock;
pub mod tid;

pub use backoff::{Backoff, BackoffCfg};
pub use lock::TtasLock;
pub use tid::{current_tid, on_thread_exit, registered_high_water, thread_is_exiting, MAX_THREADS};
