//! Runtime substrate for the lock-free composition library.
//!
//! Provides the pieces every other crate leans on:
//!
//! * [`tid`] — a registry handing out small dense thread ids. The DCAS
//!   protocol marks descriptor pointers with the helping thread's id
//!   (paper §3.2.2) and the hazard-pointer domain indexes its slot banks by
//!   thread id, so ids must be small integers, reused after thread exit.
//! * [`solo`] — detection of the single-threaded ("solo") regime, used by
//!   the composition layer's uncontended fast path to skip descriptor
//!   publication when no helper can exist.
//! * [`backoff`] — the doubling backoff function used by the paper's
//!   evaluation (§6) for both the blocking and the lock-free objects.
//! * [`lock`] — the test-test-and-set lock the paper uses for its blocking
//!   baseline composition (§6).
//! * [`pad`] — 128-byte cache-line padding to eliminate false sharing.
//! * [`rng`] — a small deterministic PRNG for workloads and tests.
//! * [`sync`] — the virtual-atomics facade every protocol atomic in this
//!   crate stack goes through: `std::sync::atomic` in normal builds, the
//!   `lfc-model` instrumented shadow memory under `--cfg lfc_model`.
//! * [`fault`] — deterministic fault injection (allocation failure,
//!   thread death) and the corpse/adoption machinery behind the
//!   robustness test tier. Zero-cost when disarmed.

#![warn(missing_docs)]

pub mod backoff;
pub mod fault;
pub mod lock;
pub mod pad;
pub mod rng;
pub mod solo;
pub mod sync;
pub mod tid;

pub use backoff::{camp_round, Backoff, BackoffCfg, Snooze};
pub use lock::TtasLock;
pub use pad::CachePadded;
pub use rng::SmallRng;
pub use tid::{
    active_threads, current_tid, detach_thread, on_thread_exit, register_tid_finalizer,
    registered_high_water, thread_is_exiting, tid_is_claimed, MAX_THREADS,
};
