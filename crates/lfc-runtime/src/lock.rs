//! Test-test-and-set spin lock: the paper's blocking baseline (§6).
//!
//! > "we compared the lock-free concurrent objects with simple blocking
//! > implementations using test-test-and-set to implement a lock."
//!
//! The lock takes a [`BackoffCfg`]: with `BackoffCfg::NONE` every failed
//! acquisition retries immediately (the paper's no-backoff runs); with an
//! exponential configuration the wait doubles on each failed acquisition.

use crate::backoff::{Backoff, BackoffCfg};
use crate::pad::CachePadded;
use crate::sync::{AtomicBool, Ordering};

/// A test-test-and-set spin lock.
#[derive(Debug, Default)]
pub struct TtasLock {
    locked: CachePadded<AtomicBool>,
}

/// RAII guard releasing the lock on drop.
#[derive(Debug)]
pub struct TtasGuard<'a> {
    lock: &'a TtasLock,
}

impl TtasLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        TtasLock {
            locked: CachePadded::new(AtomicBool::new(false)),
        }
    }

    /// Acquire, spinning with the given backoff policy.
    pub fn lock(&self, cfg: BackoffCfg) -> TtasGuard<'_> {
        let mut bo = Backoff::new(cfg);
        loop {
            // Test: spin locally on the cached value first.
            while self.locked.load(Ordering::Relaxed) {
                crate::sync::spin_loop();
            }
            // Test-and-set.
            if !self.locked.swap(true, Ordering::Acquire) {
                return TtasGuard { lock: self };
            }
            bo.fail();
        }
    }

    /// Try to acquire without spinning.
    pub fn try_lock(&self) -> Option<TtasGuard<'_>> {
        if !self.locked.load(Ordering::Relaxed) && !self.locked.swap(true, Ordering::Acquire) {
            Some(TtasGuard { lock: self })
        } else {
            None
        }
    }

    /// Whether the lock is currently held (racy, for diagnostics only).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

impl Drop for TtasGuard<'_> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn lock_unlock() {
        let l = TtasLock::new();
        assert!(!l.is_locked());
        {
            let _g = l.lock(BackoffCfg::NONE);
            assert!(l.is_locked());
        }
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_fails_when_held() {
        let l = TtasLock::new();
        let g = l.lock(BackoffCfg::NONE);
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn mutual_exclusion_counter() {
        // A non-atomic counter protected by the lock must not lose updates.
        let l = Arc::new(TtasLock::new());
        let shared = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = l.clone();
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    let _g = l.lock(BackoffCfg::NONE);
                    // Deliberately non-atomic read-modify-write under the lock.
                    let v = shared.load(Ordering::Relaxed);
                    shared.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.load(Ordering::Relaxed), 40_000);
    }

    #[test]
    fn mutual_exclusion_with_backoff() {
        let l = Arc::new(TtasLock::new());
        let shared = Arc::new(AtomicU64::new(0));
        let cfg = BackoffCfg::exponential(100, 10_000);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = l.clone();
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    let _g = l.lock(cfg);
                    let v = shared.load(Ordering::Relaxed);
                    shared.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.load(Ordering::Relaxed), 8_000);
    }
}
