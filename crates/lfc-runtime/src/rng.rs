//! A small, fast, deterministic PRNG (xoshiro256**), used by the benchmark
//! workload generator and the randomized tests.
//!
//! Not cryptographic. Seeded via SplitMix64 so nearby seeds give unrelated
//! streams, which matters because the harness derives per-thread seeds from
//! a trial seed by small perturbations.

/// A xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Seed the generator from a single word.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)` (`n > 0`), by 128-bit multiply (Lemire); the bias
    /// is at most 2^-64, immaterial for workload generation.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform in `[lo, hi]` (inclusive; `lo <= hi`).
    pub fn range_incl(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn range_incl_hits_both_ends() {
        let mut r = SmallRng::seed_from_u64(9);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1_000 {
            match r.range_incl(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
