//! Dense thread-id registry.
//!
//! A thread claims the lowest free id on first use and releases it when the
//! thread exits. Ids are bounded by [`MAX_THREADS`] because they are encoded
//! into marked descriptor words (7 bits, see `lfc-dcas::word`) and index
//! fixed-size hazard-slot banks.
//!
//! Per-thread state owned by other crates (hazard retire lists, allocator
//! magazines) must be torn down *before* the id is released, otherwise a new
//! thread could claim the id and race on the associated slots. Those crates
//! register teardown callbacks with [`on_thread_exit`]; the callbacks run in
//! reverse registration order inside the single thread-local destructor that
//! also releases the id, guaranteeing the required ordering.

use crate::pad::CachePadded;
use crate::sync::{AtomicBool, AtomicUsize, Ordering};
use std::cell::RefCell;

/// Maximum number of concurrently registered threads.
///
/// Bounded by the 7-bit thread-id field in marked DCAS descriptor words
/// (`tid + 1` must fit in 7 bits).
pub const MAX_THREADS: usize = 126;

/// Claim flags are cache-line padded: a claim/release by one thread must
/// not invalidate the line a neighbouring id's flag lives on — thread churn
/// would otherwise false-share with every registry scan.
static CLAIMED: [CachePadded<AtomicBool>; MAX_THREADS] =
    [const { CachePadded::new(AtomicBool::new(false)) }; MAX_THREADS];

/// High-water mark: one past the largest thread id ever claimed. Scanners
/// (hazard-pointer scan) iterate `0..registered_high_water()`. Padded away
/// from the active count: it is read on every reclamation scan while
/// `ACTIVE` is written on every thread birth/death.
static HIGH_WATER: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));

/// Number of currently registered (live) threads. The solo fast path reads
/// this with SeqCst (see `crate::solo`); the increment below is SeqCst for
/// the same Dekker pairing.
static ACTIVE: CachePadded<AtomicUsize> = CachePadded::new(AtomicUsize::new(0));

struct ThreadSlot {
    tid: u16,
    exit_hooks: Vec<Box<dyn FnOnce()>>,
}

impl Drop for ThreadSlot {
    fn drop(&mut self) {
        // Teardown callbacks may allocate/free/retire; mark the thread as
        // exiting so those layers take their direct (non-TLS) fallback paths
        // instead of trying to initialize per-thread state — registering a
        // new exit hook from inside an exit hook would touch `SLOT` while it
        // is being destroyed.
        let _ = EXITING.try_with(|c| c.set(true));
        // Run teardown callbacks (hazard flush, magazine flush, …) before the
        // id becomes claimable again.
        for hook in self.exit_hooks.drain(..).rev() {
            hook();
        }
        // Reset id-indexed state owned by other crates (hazard slot bank,
        // epoch slot) before the id becomes claimable: without this, a
        // thread that exited with a stale hazard value left in its bank
        // published a phantom protection forever (or handed it to the next
        // claimant of the id). Skipped under the model: the sweep is ~26
        // *instrumented* stores per thread exit (every model thread exit is
        // a scheduled step sequence), which multiplies every scenario's
        // state space; model threads clear their guards deterministically,
        // and the path the model actually checks — corpse adoption — runs
        // the finalizers unconditionally in `release_corpse_tid`.
        #[cfg(not(lfc_model))]
        run_tid_finalizers(self.tid);
        CLAIMED[self.tid as usize].store(false, Ordering::Release);
        // After the hooks: an exiting thread can no longer observe a solo
        // section's intermediate state, so leaving the active set last is
        // safe, and it keeps the solo fast path disabled while the exit
        // hooks still retire memory.
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Fixed-size registry of per-tid finalizers, run after the exit hooks and
/// before the id is released (both on normal exit and at corpse adoption).
/// Plain `std` atomics: registration is infrastructure, not protocol state,
/// and must not create model-checker choice points.
const MAX_TID_FINALIZERS: usize = 8;
static FINALIZERS: [std::sync::atomic::AtomicUsize; MAX_TID_FINALIZERS] =
    [const { std::sync::atomic::AtomicUsize::new(0) }; MAX_TID_FINALIZERS];

/// Register a finalizer to run whenever a thread id is released (normal
/// exit or corpse adoption), after the thread's exit hooks. Idempotent per
/// function pointer; panics if the fixed registry overflows.
pub fn register_tid_finalizer(f: fn(u16)) {
    use std::sync::atomic::Ordering as O;
    let fp = f as usize;
    debug_assert_ne!(fp, 0);
    for slot in &FINALIZERS {
        if slot.load(O::Acquire) == fp {
            return;
        }
        if slot.compare_exchange(0, fp, O::AcqRel, O::Acquire).is_ok()
            || slot.load(O::Acquire) == fp
        {
            return;
        }
    }
    panic!("lfc-runtime: more than {MAX_TID_FINALIZERS} tid finalizers");
}

fn run_tid_finalizers(tid: u16) {
    use std::sync::atomic::Ordering as O;
    for slot in &FINALIZERS {
        let fp = slot.load(O::Acquire);
        if fp != 0 {
            // Safety: only ever stored from a `fn(u16)` in
            // `register_tid_finalizer`.
            let f: fn(u16) = unsafe { std::mem::transmute::<usize, fn(u16)>(fp) };
            f(tid);
        }
    }
}

thread_local! {
    static SLOT: RefCell<Option<ThreadSlot>> = const { RefCell::new(None) };
    // No drop glue, so this stays accessible while other TLS destructors run.
    static EXITING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is running its thread-exit teardown (or has
/// torn down its TLS entirely). Layers with per-thread caches must bypass
/// them — and must not call [`on_thread_exit`] — when this is true.
pub fn thread_is_exiting() -> bool {
    EXITING.try_with(|c| c.get()).unwrap_or(true)
}

fn claim() -> u16 {
    // Under the model checker, make sure model threads drain their lfc
    // thread-local state (hazard retire lists, allocator magazines, this
    // id) while still scheduled, instead of from TLS destructors the
    // scheduler cannot see. Registered here because any thread with lfc
    // state to tear down claimed an id first.
    #[cfg(lfc_model)]
    lfc_model::rt::register_thread_epilogue(detach_thread);
    for (i, flag) in CLAIMED.iter().enumerate() {
        if !flag.load(Ordering::Relaxed)
            && flag
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            HIGH_WATER.fetch_max(i + 1, Ordering::Relaxed);
            // SeqCst: pairs with the SeqCst flag-store→count-load in
            // `solo::try_enter` (Dekker). Must be ordered before the
            // in-flight check below in the global SC order.
            ACTIVE.fetch_add(1, Ordering::SeqCst);
            // Wait out any solo fast-path section that was entered before
            // this thread existed; afterwards no such section can start
            // while we remain registered.
            crate::solo::registration_barrier();
            return i as u16;
        }
    }
    panic!("lfc-runtime: more than {MAX_THREADS} concurrently registered threads");
}

/// Number of currently registered (live) threads.
///
/// SeqCst: the solo-thread side of the `crate::solo` Dekker pair — must be
/// ordered after the flag store in the SC total order.
pub fn active_threads() -> usize {
    ACTIVE.load(Ordering::SeqCst)
}

/// Racy count of registered threads, for gating hints only (see
/// `solo::try_enter`): one Relaxed load, no fence, never authoritative.
pub(crate) fn active_threads_relaxed() -> usize {
    ACTIVE.load(Ordering::Relaxed)
}

/// Returns this thread's dense id, claiming one on first use.
///
/// # Panics
///
/// Panics if more than [`MAX_THREADS`] threads are registered at once.
pub fn current_tid() -> u16 {
    SLOT.with(|slot| {
        let mut slot = slot.borrow_mut();
        match &*slot {
            Some(s) => s.tid,
            None => {
                let tid = claim();
                *slot = Some(ThreadSlot {
                    tid,
                    exit_hooks: Vec::new(),
                });
                tid
            }
        }
    })
}

/// Registers a callback to run when the current thread exits, before its
/// thread id is released. Callbacks run in reverse registration order.
pub fn on_thread_exit(hook: Box<dyn FnOnce()>) {
    // Ensure the slot exists so the hook has somewhere to live.
    current_tid();
    SLOT.with(|slot| {
        slot.borrow_mut()
            .as_mut()
            .expect("slot initialized by current_tid")
            .exit_hooks
            .push(hook);
    });
}

/// One past the largest thread id ever claimed by this process.
pub fn registered_high_water() -> usize {
    HIGH_WATER.load(Ordering::Relaxed)
}

/// Run the current thread's exit hooks and release its id *now*, exactly
/// as the thread-exit destructor would, leaving the thread free to
/// re-register later. The model checker's thread epilogue: teardown work
/// (hazard scans, magazine flushes) performs instrumented operations, so
/// it must run while the model scheduler still tracks the thread — TLS
/// destructors run too late. Safe to call on any thread at any quiescent
/// point (no lfc operation may be in flight); a no-op for unregistered
/// threads.
pub fn detach_thread() {
    let slot = SLOT.try_with(|s| s.borrow_mut().take()).unwrap_or(None);
    drop(slot); // ThreadSlot::drop runs the hooks and releases the id.
                // ThreadSlot::drop leaves the exiting flag set (real exits never come
                // back); an explicitly detached thread may re-register.
    let _ = EXITING.try_with(|c| c.set(false));
}

/// Abandon the current thread's slot: run its exit hooks (magazine /
/// descriptor-pool flushes, hazard retire hand-off — safe even
/// mid-operation because the abandoning-aware `Drop` impls leaked anything
/// still published) but **keep the id claimed and the active count up**.
/// The thread becomes a corpse: its hazard bank keeps protecting whatever
/// the abandoned operation holds, and no survivor can enter the solo
/// regime while the corpse's descriptor may still be installed. A
/// survivor later releases the id via [`release_corpse_tid`] (through
/// `fault::release_corpse`). Returns the parked tid, or `None` if the
/// thread never claimed one.
pub(crate) fn abandon_thread_slot() -> Option<u16> {
    let slot = SLOT.try_with(|s| s.borrow_mut().take()).unwrap_or(None)?;
    let _ = EXITING.try_with(|c| c.set(true));
    let mut slot = slot;
    let hooks = std::mem::take(&mut slot.exit_hooks);
    for hook in hooks.into_iter().rev() {
        hook();
    }
    let tid = slot.tid;
    // Skip ThreadSlot::drop entirely: no finalizers (the bank must keep
    // protecting the abandoned operation), no CLAIMED release, no ACTIVE
    // decrement. The hooks Vec was taken out above, so nothing leaks here
    // beyond the id itself.
    std::mem::forget(slot);
    Some(tid)
}

/// Release a corpse's id after its announced operation was helped to
/// completion: runs the tid finalizers (clearing the corpse's hazard bank
/// and epoch slot) and frees the id. Adoption-side counterpart of the
/// normal-exit path in `ThreadSlot::drop`.
pub(crate) fn release_corpse_tid(tid: u16) {
    run_tid_finalizers(tid);
    CLAIMED[tid as usize].store(false, Ordering::Release);
    ACTIVE.fetch_sub(1, Ordering::SeqCst);
}

/// Whether `tid` is currently claimed (live thread or corpse). Diagnostic.
pub fn tid_is_claimed(tid: u16) -> bool {
    CLAIMED[tid as usize].load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn same_thread_same_tid() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_threads_distinct_tids() {
        let mine = current_tid();
        let theirs = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn tid_below_bound() {
        assert!((current_tid() as usize) < MAX_THREADS);
    }

    #[test]
    fn high_water_covers_current() {
        let tid = current_tid();
        assert!(registered_high_water() > tid as usize);
    }

    #[test]
    fn tids_are_reused_after_exit() {
        // Spawn threads strictly sequentially; with at most one short-lived
        // helper alive at a time the claimed set cannot grow without bound.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..MAX_THREADS * 3 {
            let tid = std::thread::spawn(current_tid).join().unwrap();
            seen.insert(tid);
        }
        // Reuse must have happened: we spawned 3x MAX_THREADS threads.
        assert!(seen.len() <= MAX_THREADS);
    }

    #[test]
    fn exit_hooks_run_in_reverse_order() {
        let log = Arc::new(AtomicU32::new(0));
        let l1 = log.clone();
        let l2 = log.clone();
        std::thread::spawn(move || {
            on_thread_exit(Box::new(move || {
                // Runs second: expects the value the later hook wrote.
                assert_eq!(l1.load(Ordering::SeqCst), 7);
                l1.store(13, Ordering::SeqCst);
            }));
            on_thread_exit(Box::new(move || {
                assert_eq!(l2.load(Ordering::SeqCst), 0);
                l2.store(7, Ordering::SeqCst);
            }));
        })
        .join()
        .unwrap();
        assert_eq!(log.load(Ordering::SeqCst), 13);
    }

    #[test]
    fn many_parallel_threads_get_unique_ids() {
        // A barrier guarantees all threads hold their id simultaneously;
        // without it a late spawner could legitimately reuse the id of an
        // early thread that already exited.
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(32));
        let handles: Vec<_> = (0..32)
            .map(|_| {
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let t = current_tid();
                    barrier.wait();
                    t
                })
            })
            .collect();
        let mut ids: Vec<u16> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 32, "concurrent threads must hold distinct ids");
    }
}
