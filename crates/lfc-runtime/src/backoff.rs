//! Exponential backoff, as used in the paper's evaluation (§6):
//!
//! > "every time a thread failed to acquire the lock or, in case of the
//! > lock-free objects, failed to insert or remove an element due to a
//! > conflict, the time it waited before trying again was doubled."

use std::time::{Duration, Instant};

/// Backoff configuration. `start_ns == 0` disables waiting entirely (a bare
/// spin hint is still issued so tight retry loops stay polite).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffCfg {
    /// Initial wait in nanoseconds (0 disables backoff).
    pub start_ns: u32,
    /// Cap on the wait in nanoseconds.
    pub max_ns: u32,
}

impl BackoffCfg {
    /// No backoff: retry immediately (with a spin hint).
    pub const NONE: BackoffCfg = BackoffCfg {
        start_ns: 0,
        max_ns: 0,
    };

    /// Doubling backoff between `start_ns` and `max_ns` nanoseconds.
    pub const fn exponential(start_ns: u32, max_ns: u32) -> Self {
        BackoffCfg { start_ns, max_ns }
    }

    /// Whether this configuration actually waits.
    pub const fn is_enabled(&self) -> bool {
        self.start_ns != 0
    }
}

impl Default for BackoffCfg {
    fn default() -> Self {
        BackoffCfg::NONE
    }
}

/// Per-attempt backoff state; create one per operation invocation.
#[derive(Debug)]
pub struct Backoff {
    cfg: BackoffCfg,
    cur_ns: u32,
    failures: u32,
}

impl Backoff {
    /// Fresh state for one operation attempt sequence.
    pub fn new(cfg: BackoffCfg) -> Self {
        Backoff {
            cur_ns: cfg.start_ns,
            cfg,
            failures: 0,
        }
    }

    /// Number of times [`Backoff::fail`] has been called.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Record a failed attempt and wait (doubling) if backoff is enabled.
    pub fn fail(&mut self) {
        self.failures += 1;
        if !self.cfg.is_enabled() {
            crate::sync::spin_loop();
            return;
        }
        spin_wait(Duration::from_nanos(self.cur_ns as u64));
        self.cur_ns = self.cur_ns.saturating_mul(2).min(self.cfg.max_ns);
    }
}

/// Busy-wait for roughly `d`. Sub-microsecond waits cannot be delegated to
/// the OS scheduler, so we spin on the monotonic clock.
pub fn spin_wait(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        crate::sync::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled() {
        assert!(!BackoffCfg::NONE.is_enabled());
        assert!(BackoffCfg::exponential(100, 1000).is_enabled());
    }

    #[test]
    fn disabled_backoff_does_not_sleep() {
        let mut b = Backoff::new(BackoffCfg::NONE);
        let t = Instant::now();
        for _ in 0..1000 {
            b.fail();
        }
        assert!(t.elapsed() < Duration::from_millis(50));
        assert_eq!(b.failures(), 1000);
    }

    #[test]
    fn waits_double_up_to_max() {
        let mut b = Backoff::new(BackoffCfg::exponential(100, 400));
        assert_eq!(b.cur_ns, 100);
        b.fail();
        assert_eq!(b.cur_ns, 200);
        b.fail();
        assert_eq!(b.cur_ns, 400);
        b.fail();
        assert_eq!(b.cur_ns, 400, "capped at max");
    }

    #[test]
    fn enabled_backoff_actually_waits() {
        let mut b = Backoff::new(BackoffCfg::exponential(200_000, 1_600_000));
        let t = Instant::now();
        for _ in 0..4 {
            b.fail(); // 200µs + 400µs + 800µs + 1.6ms = 3ms
        }
        assert!(t.elapsed() >= Duration::from_micros(2800));
    }

    #[test]
    fn spin_wait_is_roughly_accurate() {
        let t = Instant::now();
        spin_wait(Duration::from_micros(500));
        let e = t.elapsed();
        assert!(e >= Duration::from_micros(500));
    }
}
