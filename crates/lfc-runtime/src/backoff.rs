//! Exponential backoff, as used in the paper's evaluation (§6):
//!
//! > "every time a thread failed to acquire the lock or, in case of the
//! > lock-free objects, failed to insert or remove an element due to a
//! > conflict, the time it waited before trying again was doubled."

use crate::rng::SmallRng;
use std::time::{Duration, Instant};

/// Backoff configuration. `start_ns == 0` disables waiting entirely (a bare
/// spin hint is still issued so tight retry loops stay polite).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffCfg {
    /// Initial wait in nanoseconds (0 disables backoff).
    pub start_ns: u32,
    /// Cap on the wait in nanoseconds.
    pub max_ns: u32,
}

impl BackoffCfg {
    /// No backoff: retry immediately (with a spin hint).
    pub const NONE: BackoffCfg = BackoffCfg {
        start_ns: 0,
        max_ns: 0,
    };

    /// Doubling backoff between `start_ns` and `max_ns` nanoseconds.
    pub const fn exponential(start_ns: u32, max_ns: u32) -> Self {
        BackoffCfg { start_ns, max_ns }
    }

    /// Whether this configuration actually waits.
    pub const fn is_enabled(&self) -> bool {
        self.start_ns != 0
    }
}

impl Default for BackoffCfg {
    fn default() -> Self {
        BackoffCfg::NONE
    }
}

/// Per-attempt backoff state; create one per operation invocation.
#[derive(Debug)]
pub struct Backoff {
    cfg: BackoffCfg,
    cur_ns: u32,
    failures: u32,
    /// Present iff this instance jitters (see [`Backoff::new_jittered`]).
    rng: Option<SmallRng>,
}

impl Backoff {
    /// Fresh state for one operation attempt sequence.
    pub fn new(cfg: BackoffCfg) -> Self {
        Backoff {
            cur_ns: cfg.start_ns,
            cfg,
            failures: 0,
            rng: None,
        }
    }

    /// As [`Backoff::new`], with jitter: each wait is drawn uniformly
    /// from `[cur/2, cur]` before the doubling step. Threads that failed
    /// on the same conflict at the same instant (a shed burst, an OOM
    /// wave hitting every shard at once) would otherwise retry in
    /// lockstep and collide again; the jitter decorrelates the herd while
    /// keeping the same expected wait envelope.
    pub fn new_jittered(cfg: BackoffCfg, seed: u64) -> Self {
        Backoff {
            cur_ns: cfg.start_ns,
            cfg,
            failures: 0,
            rng: Some(SmallRng::seed_from_u64(seed)),
        }
    }

    /// Number of times [`Backoff::fail`] has been called.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Record a failed attempt and wait (doubling, jittered when
    /// constructed so) if backoff is enabled.
    pub fn fail(&mut self) {
        self.failures += 1;
        if !self.cfg.is_enabled() {
            crate::sync::spin_loop();
            return;
        }
        let wait_ns = match &mut self.rng {
            Some(rng) => {
                let half = (self.cur_ns / 2).max(1) as u64;
                half + rng.below(half + 1)
            }
            None => self.cur_ns as u64,
        };
        spin_wait(Duration::from_nanos(wait_ns));
        self.cur_ns = self.cur_ns.saturating_mul(2).min(self.cfg.max_ns);
    }
}

/// Cap on [`Snooze`]'s doubling spin budget: past this, every tick yields
/// the quantum instead of growing the spin.
const SNOOZE_SPIN_CAP: u32 = 1024;

/// The spin→yield ladder for *infallible* retry loops: entry points that
/// cannot report `Overloaded` to a caller (a batch gate absorbing an OOM
/// on its infallible surface, a service retry loop that has decided to
/// wait pressure out) and so must wait in place without blocking anyone.
/// Each [`tick`](Snooze::tick) spins a doubling budget of hint rounds;
/// once the budget saturates, ticks yield the quantum — on an
/// oversubscribed core the rival whose progress we are waiting on only
/// runs if we give the core up.
///
/// Spin hints and yields come from the virtual-atomics facade, so under
/// the model checker every tick is a scheduling point and bounded
/// exploration never livelocks in a snooze loop.
#[derive(Debug)]
pub struct Snooze {
    spins: u32,
}

impl Default for Snooze {
    fn default() -> Self {
        Self::new()
    }
}

impl Snooze {
    /// Fresh ladder (one per retry sequence).
    pub const fn new() -> Self {
        Snooze { spins: 1 }
    }

    /// One failed round: spin the current budget, then double it — or
    /// yield once the budget is saturated.
    pub fn tick(&mut self) {
        for _ in 0..self.spins {
            crate::sync::spin_loop();
        }
        if self.spins < SNOOZE_SPIN_CAP {
            self.spins <<= 1;
        } else {
            crate::sync::yield_now();
        }
    }

    /// Whether the ladder has escalated past spinning into yielding.
    pub fn is_yielding(&self) -> bool {
        self.spins >= SNOOZE_SPIN_CAP
    }
}

/// One round of a *camped* wait — a bounded rendezvous window (an
/// elimination slot waiting for its partner, a quiesce gate waiting for
/// in-flight operations to drain) where the partner must actually run
/// for the wait to end: yields every fourth round so an oversubscribed
/// core hands the partner its quantum, spins otherwise to catch a fast
/// partner without paying the scheduler.
#[inline]
pub fn camp_round(i: u32) {
    if i % 4 == 3 {
        crate::sync::yield_now();
    } else {
        crate::sync::spin_loop();
    }
}

/// Busy-wait for roughly `d`. Sub-microsecond waits cannot be delegated to
/// the OS scheduler, so we spin on the monotonic clock.
pub fn spin_wait(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        crate::sync::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled() {
        assert!(!BackoffCfg::NONE.is_enabled());
        assert!(BackoffCfg::exponential(100, 1000).is_enabled());
    }

    #[test]
    fn disabled_backoff_does_not_sleep() {
        let mut b = Backoff::new(BackoffCfg::NONE);
        let t = Instant::now();
        for _ in 0..1000 {
            b.fail();
        }
        assert!(t.elapsed() < Duration::from_millis(50));
        assert_eq!(b.failures(), 1000);
    }

    #[test]
    fn waits_double_up_to_max() {
        let mut b = Backoff::new(BackoffCfg::exponential(100, 400));
        assert_eq!(b.cur_ns, 100);
        b.fail();
        assert_eq!(b.cur_ns, 200);
        b.fail();
        assert_eq!(b.cur_ns, 400);
        b.fail();
        assert_eq!(b.cur_ns, 400, "capped at max");
    }

    #[test]
    fn enabled_backoff_actually_waits() {
        let mut b = Backoff::new(BackoffCfg::exponential(200_000, 1_600_000));
        let t = Instant::now();
        for _ in 0..4 {
            b.fail(); // 200µs + 400µs + 800µs + 1.6ms = 3ms
        }
        assert!(t.elapsed() >= Duration::from_micros(2800));
    }

    #[test]
    fn jittered_waits_stay_inside_the_envelope() {
        // Deterministic: the jitter draw is seeded. Each wait must land in
        // [cur/2, cur] and the ladder must still double up to the cap.
        let mut b = Backoff::new_jittered(BackoffCfg::exponential(100, 400), 7);
        assert_eq!(b.cur_ns, 100);
        b.fail();
        assert_eq!(b.cur_ns, 200);
        b.fail();
        assert_eq!(b.cur_ns, 400);
        b.fail();
        assert_eq!(b.cur_ns, 400, "capped at max");
        assert_eq!(b.failures(), 3);
    }

    #[test]
    fn snooze_escalates_from_spinning_to_yielding() {
        let mut s = Snooze::new();
        assert!(!s.is_yielding());
        // 1+2+4+...+512 spin rounds, then the cap is reached.
        for _ in 0..10 {
            s.tick();
        }
        assert!(s.is_yielding(), "budget must saturate into yields");
        // Saturated ticks stay cheap (yield, no unbounded spin growth).
        let t = Instant::now();
        for _ in 0..100 {
            s.tick();
        }
        assert!(t.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn camp_round_mixes_spins_and_yields() {
        // Smoke: must not panic or wait unboundedly for any round index.
        for i in 0..16 {
            camp_round(i);
        }
    }

    #[test]
    fn spin_wait_is_roughly_accurate() {
        let t = Instant::now();
        spin_wait(Duration::from_micros(500));
        let e = t.elapsed();
        assert!(e >= Duration::from_micros(500));
    }
}
