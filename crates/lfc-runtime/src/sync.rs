//! The virtual-atomics facade: the single switch point between real
//! `std::sync::atomic` and the `lfc-model` shadow-memory implementation.
//!
//! Every protocol atomic in `lfc-runtime`, `lfc-dcas`, `lfc-hazard` and
//! `lfc-structures` goes through this module (the other crates re-export it
//! as their own crate-local `sync`). In a normal build it re-exports `std`
//! verbatim — zero cost by construction, verified by the tracked
//! `reproduce bench` numbers. Under `RUSTFLAGS="--cfg lfc_model"` it
//! re-exports [`lfc_model::atomic`], whose types pass through to `std`
//! until a model execution is live on the calling thread and are fully
//! instrumented (scheduling points, vector clocks, SC constraint graph,
//! freed-block detection) inside one.
//!
//! Spin hints and yields in protocol loops must also come from here:
//! under the model they are scheduling points that hand the baton to
//! another runnable thread, which is both what a spinning thread is
//! waiting for and what keeps bounded exploration free of livelocked
//! branches.
//!
//! Deliberately *not* routed through the facade: pure diagnostic counters
//! (`lfc-dcas::counters`, the hazard domain's retired/reclaimed totals'
//! consumers assert on them but no protocol decision reads them in a
//! racy way) would only multiply scheduling points; they stay on plain
//! `std` atomics where noted at their definitions.

#[cfg(not(lfc_model))]
pub use std::hint::spin_loop;
#[cfg(not(lfc_model))]
pub use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicUsize, Ordering};
#[cfg(not(lfc_model))]
pub use std::thread::yield_now;

#[cfg(lfc_model)]
pub use lfc_model::atomic::{
    fence, spin_loop, yield_now, AtomicBool, AtomicPtr, AtomicUsize, Ordering,
};
