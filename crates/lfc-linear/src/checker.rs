//! The Wing–Gong linearizability search with Lowe-style memoization.
//!
//! At each step, the only operations that may linearize next are the
//! pending ones not preceded (in real time) by another pending operation:
//! `o` is eligible iff no un-linearized `p` has `ret(p) < invoke(o)`.
//! The search memoizes visited (linearized-set, abstract-state) pairs, the
//! optimization that makes the exponential search practical on the history
//! sizes the test-suite uses.

use crate::history::Entry;
use crate::Spec;
use std::collections::HashSet;

/// Verdict of [`check_linearizable`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckResult {
    /// A witness linearization order (indices into the history).
    Linearizable(Vec<usize>),
    /// No legal sequential order exists.
    NotLinearizable,
}

impl CheckResult {
    /// True for [`CheckResult::Linearizable`].
    pub fn is_linearizable(&self) -> bool {
        matches!(self, CheckResult::Linearizable(_))
    }
}

/// Decide whether `history` is linearizable with respect to `spec`.
///
/// # Panics
///
/// Panics if the history holds more than 128 entries (the search uses a
/// 128-bit linearized-set).
pub fn check_linearizable<S: Spec>(spec: &S, history: &[Entry<S::Op>]) -> CheckResult {
    let n = history.len();
    assert!(
        n <= 128,
        "checker supports histories of at most 128 operations"
    );
    if n == 0 {
        return CheckResult::Linearizable(Vec::new());
    }
    let full: u128 = if n == 128 { !0 } else { (1u128 << n) - 1 };
    let mut visited: HashSet<(u128, S::State)> = HashSet::new();
    let mut witness = Vec::with_capacity(n);
    if dfs(
        spec,
        history,
        0,
        &spec.init(),
        full,
        &mut visited,
        &mut witness,
    ) {
        CheckResult::Linearizable(witness)
    } else {
        CheckResult::NotLinearizable
    }
}

fn dfs<S: Spec>(
    spec: &S,
    history: &[Entry<S::Op>],
    done: u128,
    state: &S::State,
    full: u128,
    visited: &mut HashSet<(u128, S::State)>,
    witness: &mut Vec<usize>,
) -> bool {
    if done == full {
        return true;
    }
    if !visited.insert((done, state.clone())) {
        return false;
    }
    // Earliest response among pending operations bounds eligibility.
    let mut min_ret = u64::MAX;
    for (i, e) in history.iter().enumerate() {
        if done & (1 << i) == 0 {
            min_ret = min_ret.min(e.ret);
        }
    }
    for (i, e) in history.iter().enumerate() {
        if done & (1 << i) != 0 || e.invoke > min_ret {
            continue;
        }
        if let Some(next) = spec.apply(state, &e.op) {
            witness.push(i);
            if dfs(
                spec,
                history,
                done | (1 << i),
                &next,
                full,
                visited,
                witness,
            ) {
                return true;
            }
            witness.pop();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{QueueOp, QueueSpec};

    fn e(op: QueueOp, invoke: u64, ret: u64) -> Entry<QueueOp> {
        Entry::new(op, invoke, ret)
    }

    #[test]
    fn empty_history_is_linearizable() {
        let r = check_linearizable(&QueueSpec, &[]);
        assert!(r.is_linearizable());
    }

    #[test]
    fn sequential_fifo_accepted() {
        let h = vec![
            e(QueueOp::Enq(1), 0, 1),
            e(QueueOp::Enq(2), 2, 3),
            e(QueueOp::Deq(Some(1)), 4, 5),
            e(QueueOp::Deq(Some(2)), 6, 7),
            e(QueueOp::Deq(None), 8, 9),
        ];
        assert!(check_linearizable(&QueueSpec, &h).is_linearizable());
    }

    #[test]
    fn sequential_fifo_violation_rejected() {
        // Two sequential enqueues, then the *second* value dequeued first.
        let h = vec![
            e(QueueOp::Enq(1), 0, 1),
            e(QueueOp::Enq(2), 2, 3),
            e(QueueOp::Deq(Some(2)), 4, 5),
        ];
        assert_eq!(
            check_linearizable(&QueueSpec, &h),
            CheckResult::NotLinearizable
        );
    }

    #[test]
    fn paper_figure_1_example_accepted() {
        // The paper's Figure 1a: A = enqueue(x) then B = enqueue(y) by one
        // process (sequential); C = dequeue -> y and D = dequeue -> x... C
        // and D overlap, so the order [A,B,D,C] is a valid witness even
        // though C (returning the *second* element) responds first.
        let h = vec![
            e(QueueOp::Enq(10), 0, 1),       // A
            e(QueueOp::Enq(20), 2, 3),       // B
            e(QueueOp::Deq(Some(20)), 4, 9), // C (overlaps D)
            e(QueueOp::Deq(Some(10)), 5, 8), // D
        ];
        let r = check_linearizable(&QueueSpec, &h);
        assert!(r.is_linearizable(), "concurrent C/D may linearize as D,C");
    }

    #[test]
    fn real_time_order_is_respected() {
        // Same values, but C finishes *before* D starts: now the FIFO
        // inversion is real and must be rejected.
        let h = vec![
            e(QueueOp::Enq(10), 0, 1),
            e(QueueOp::Enq(20), 2, 3),
            e(QueueOp::Deq(Some(20)), 4, 5),
            e(QueueOp::Deq(Some(10)), 6, 7),
        ];
        assert_eq!(
            check_linearizable(&QueueSpec, &h),
            CheckResult::NotLinearizable
        );
    }

    #[test]
    fn dequeue_of_never_enqueued_value_rejected() {
        let h = vec![e(QueueOp::Enq(1), 0, 1), e(QueueOp::Deq(Some(9)), 2, 3)];
        assert_eq!(
            check_linearizable(&QueueSpec, &h),
            CheckResult::NotLinearizable
        );
    }

    #[test]
    fn witness_is_a_valid_sequential_execution() {
        let h = vec![
            e(QueueOp::Enq(1), 0, 10),
            e(QueueOp::Enq(2), 1, 9),
            e(QueueOp::Deq(Some(2)), 2, 8),
        ];
        match check_linearizable(&QueueSpec, &h) {
            CheckResult::Linearizable(order) => {
                // Replay the witness through the spec.
                let spec = QueueSpec;
                let mut st = crate::Spec::init(&spec);
                for &i in &order {
                    st = crate::Spec::apply(&spec, &st, &h[i].op).expect("witness must replay");
                }
            }
            CheckResult::NotLinearizable => panic!("history is linearizable"),
        }
    }
}
