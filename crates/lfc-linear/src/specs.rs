//! Sequential specifications: FIFO queue, LIFO stack, and the *composed
//! pair* specification in which a move is a single atomic action — the
//! property the paper's methodology provides.

use crate::Spec;
use std::collections::VecDeque;

/// Queue operations with observed outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueOp {
    /// `enqueue(v)`.
    Enq(u32),
    /// `dequeue() -> v?`.
    Deq(Option<u32>),
}

/// FIFO queue specification.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueSpec;

impl Spec for QueueSpec {
    type State = VecDeque<u32>;
    type Op = QueueOp;

    fn init(&self) -> Self::State {
        VecDeque::new()
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> Option<Self::State> {
        let mut s = state.clone();
        match op {
            QueueOp::Enq(v) => {
                s.push_back(*v);
                Some(s)
            }
            QueueOp::Deq(expected) => {
                let got = s.pop_front();
                (got == *expected).then_some(s)
            }
        }
    }
}

/// Stack operations with observed outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackOp {
    /// `push(v)`.
    Push(u32),
    /// `pop() -> v?`.
    Pop(Option<u32>),
}

/// LIFO stack specification.
#[derive(Clone, Copy, Debug, Default)]
pub struct StackSpec;

impl Spec for StackSpec {
    type State = Vec<u32>;
    type Op = StackOp;

    fn init(&self) -> Self::State {
        Vec::new()
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> Option<Self::State> {
        let mut s = state.clone();
        match op {
            StackOp::Push(v) => {
                s.push(*v);
                Some(s)
            }
            StackOp::Pop(expected) => {
                let got = s.pop();
                (got == *expected).then_some(s)
            }
        }
    }
}

/// Container discipline for one side of a composed pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cont {
    /// FIFO (queue) semantics.
    Fifo,
    /// LIFO (stack) semantics.
    Lifo,
}

/// A container state with either discipline.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ContState {
    kind: Cont,
    items: VecDeque<u32>,
}

impl ContState {
    fn new(kind: Cont) -> Self {
        ContState {
            kind,
            items: VecDeque::new(),
        }
    }

    fn insert(&mut self, v: u32) {
        self.items.push_back(v);
    }

    fn remove(&mut self) -> Option<u32> {
        match self.kind {
            Cont::Fifo => self.items.pop_front(),
            Cont::Lifo => self.items.pop_back(),
        }
    }
}

/// Observed outcome of a composed swap (one element each way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwapResult {
    /// Both removes found an element; they changed places atomically.
    Swapped,
    /// The first container was observed empty (second untouched).
    FirstEmpty,
    /// The first container held an element but the second was empty.
    SecondEmpty,
}

/// Operations on a pair of containers (A, B) with an atomic move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairOp {
    /// Insert into A.
    InsA(u32),
    /// Remove from A with the observed outcome.
    RemA(Option<u32>),
    /// Insert into B.
    InsB(u32),
    /// Remove from B with the observed outcome.
    RemB(Option<u32>),
    /// Composed move; `true` if an element moved, `false` if the source was
    /// observed empty. The move is ONE action in the sequential history —
    /// the linearization-point unification the paper provides.
    MoveAB(bool),
    /// Move in the other direction.
    MoveBA(bool),
    /// Composed swap (A's removal inserted into B and vice versa): four
    /// linearization points, ONE action in the sequential history.
    Swap(SwapResult),
}

/// Specification of two containers composed with an atomic move.
#[derive(Clone, Copy, Debug)]
pub struct PairSpec {
    /// Discipline of container A.
    pub a: Cont,
    /// Discipline of container B.
    pub b: Cont,
}

impl Spec for PairSpec {
    type State = (ContState, ContState);
    type Op = PairOp;

    fn init(&self) -> Self::State {
        (ContState::new(self.a), ContState::new(self.b))
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> Option<Self::State> {
        let (mut a, mut b) = state.clone();
        match op {
            PairOp::InsA(v) => {
                a.insert(*v);
                Some((a, b))
            }
            PairOp::InsB(v) => {
                b.insert(*v);
                Some((a, b))
            }
            PairOp::RemA(expected) => {
                let got = a.remove();
                (got == *expected).then_some((a, b))
            }
            PairOp::RemB(expected) => {
                let got = b.remove();
                (got == *expected).then_some((a, b))
            }
            PairOp::MoveAB(moved) => match (a.remove(), moved) {
                (Some(v), true) => {
                    b.insert(v);
                    Some((a, b))
                }
                (None, false) => Some((a, b)),
                _ => None,
            },
            PairOp::MoveBA(moved) => match (b.remove(), moved) {
                (Some(v), true) => {
                    a.insert(v);
                    Some((a, b))
                }
                (None, false) => Some((a, b)),
                _ => None,
            },
            PairOp::Swap(r) => match r {
                // Empty outcomes change nothing; they are legal exactly
                // when the observed emptiness holds in `state`.
                SwapResult::FirstEmpty => a.remove().is_none().then(|| state.clone()),
                SwapResult::SecondEmpty => {
                    (a.remove().is_some() && b.remove().is_none()).then(|| state.clone())
                }
                SwapResult::Swapped => match (a.remove(), b.remove()) {
                    (Some(x), Some(y)) => {
                        a.insert(y);
                        b.insert(x);
                        Some((a, b))
                    }
                    _ => None,
                },
            },
        }
    }
}

/// Operations on a pair of *keyed* containers (A, B) with an atomic keyed
/// move — the §1.1 hash-map/list scenario. Values are the keys themselves
/// (set semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyedPairOp {
    /// Insert key into A; observed acceptance (false = duplicate).
    InsA(u32, bool),
    /// Insert key into B; observed acceptance.
    InsB(u32, bool),
    /// Remove key from A; observed presence.
    RemA(u32, bool),
    /// Remove key from B; observed presence.
    RemB(u32, bool),
    /// Move key from A to B; the recorded [`KeyedMoveResult`].
    MoveAB(u32, KeyedMoveResult),
    /// Move key from B to A.
    MoveBA(u32, KeyedMoveResult),
}

/// Observed outcome of a keyed move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyedMoveResult {
    /// Key left the source and arrived in the target atomically.
    Moved,
    /// Key was absent from the source.
    Absent,
    /// Target already held the key; nothing changed.
    Duplicate,
}

/// Specification of two keyed sets composed with an atomic keyed move.
#[derive(Clone, Copy, Debug, Default)]
pub struct KeyedPairSpec;

impl Spec for KeyedPairSpec {
    type State = (
        std::collections::BTreeSet<u32>,
        std::collections::BTreeSet<u32>,
    );
    type Op = KeyedPairOp;

    fn init(&self) -> Self::State {
        (Default::default(), Default::default())
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> Option<Self::State> {
        let (mut a, mut b) = state.clone();
        let ok = match *op {
            KeyedPairOp::InsA(k, accepted) => a.insert(k) == accepted,
            KeyedPairOp::InsB(k, accepted) => b.insert(k) == accepted,
            KeyedPairOp::RemA(k, present) => a.remove(&k) == present,
            KeyedPairOp::RemB(k, present) => b.remove(&k) == present,
            KeyedPairOp::MoveAB(k, r) => match r {
                KeyedMoveResult::Moved => a.remove(&k) && b.insert(k),
                KeyedMoveResult::Absent => !a.contains(&k),
                KeyedMoveResult::Duplicate => a.contains(&k) && b.contains(&k),
            },
            KeyedPairOp::MoveBA(k, r) => match r {
                KeyedMoveResult::Moved => b.remove(&k) && a.insert(k),
                KeyedMoveResult::Absent => !b.contains(&k),
                KeyedMoveResult::Duplicate => b.contains(&k) && a.contains(&k),
            },
        };
        ok.then_some((a, b))
    }
}

/// Operations on a single keyed map (insert-if-absent semantics, as the
/// `LfHashMap` structure implements them) with observed outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapOp {
    /// `insert(k, v)`; observed acceptance (`false` = key was present).
    Insert(u32, u32, bool),
    /// `remove(k) -> v?`.
    Remove(u32, Option<u32>),
    /// `get(k) -> v?` (a read-only observer).
    Get(u32, Option<u32>),
}

/// Sequential specification of a keyed map with insert-if-absent.
#[derive(Clone, Copy, Debug, Default)]
pub struct MapSpec;

impl Spec for MapSpec {
    type State = std::collections::BTreeMap<u32, u32>;
    type Op = MapOp;

    fn init(&self) -> Self::State {
        Default::default()
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> Option<Self::State> {
        let mut s = state.clone();
        let ok = match *op {
            MapOp::Insert(k, v, accepted) => match s.entry(k) {
                std::collections::btree_map::Entry::Occupied(_) => !accepted,
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v);
                    accepted
                }
            },
            MapOp::Remove(k, expected) => s.remove(&k) == expected,
            MapOp::Get(k, expected) => s.get(&k).copied() == expected,
        };
        ok.then_some(s)
    }
}

/// Operations on a bounded one-element slot with observed outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotOp {
    /// `put(v)`; observed acceptance (`false` = slot was occupied — the
    /// bounded-container rejection that exercises move aborts).
    Put(u32, bool),
    /// `take() -> v?`.
    Take(Option<u32>),
    /// `peek() -> v?` (non-destructive observer).
    Peek(Option<u32>),
}

/// Sequential specification of a one-element slot.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlotSpec;

impl Spec for SlotSpec {
    type State = Option<u32>;
    type Op = SlotOp;

    fn init(&self) -> Self::State {
        None
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> Option<Self::State> {
        match *op {
            SlotOp::Put(v, accepted) => match (state, accepted) {
                (None, true) => Some(Some(v)),
                (Some(_), false) => Some(*state),
                _ => None,
            },
            SlotOp::Take(expected) => (*state == expected).then_some(None),
            SlotOp::Peek(expected) => (*state == expected).then_some(*state),
        }
    }
}

/// Operations on a source container A broadcast-composed with two targets
/// (B, C) — the sequential specification of `move_to_all` with two targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrioOp {
    /// Insert into the source A.
    InsA(u32),
    /// Remove from A with the observed outcome.
    RemA(Option<u32>),
    /// Remove from target B.
    RemB(Option<u32>),
    /// Remove from target C.
    RemC(Option<u32>),
    /// Composed broadcast A → {B, C}; `true` if an element moved (a clone
    /// arrives in BOTH targets at the same single action), `false` if A was
    /// observed empty. An observer must never see the element in a strict
    /// subset of the targets.
    Broadcast(bool),
}

/// Specification of a source and two targets composed with `move_to_all`.
#[derive(Clone, Copy, Debug)]
pub struct TrioSpec {
    /// Discipline of the source A.
    pub a: Cont,
    /// Discipline of target B.
    pub b: Cont,
    /// Discipline of target C.
    pub c: Cont,
}

impl Spec for TrioSpec {
    type State = (ContState, ContState, ContState);
    type Op = TrioOp;

    fn init(&self) -> Self::State {
        (
            ContState::new(self.a),
            ContState::new(self.b),
            ContState::new(self.c),
        )
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> Option<Self::State> {
        let (mut a, mut b, mut c) = state.clone();
        match op {
            TrioOp::InsA(v) => {
                a.insert(*v);
                Some((a, b, c))
            }
            TrioOp::RemA(expected) => (a.remove() == *expected).then_some((a, b, c)),
            TrioOp::RemB(expected) => (b.remove() == *expected).then_some((a, b, c)),
            TrioOp::RemC(expected) => (c.remove() == *expected).then_some((a, b, c)),
            TrioOp::Broadcast(moved) => match (a.remove(), moved) {
                (Some(v), true) => {
                    b.insert(v);
                    c.insert(v);
                    Some((a, b, c))
                }
                (None, false) => Some((a, b, c)),
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check_linearizable, CheckResult};
    use crate::history::Entry;

    fn e(op: PairOp, invoke: u64, ret: u64) -> Entry<PairOp> {
        Entry::new(op, invoke, ret)
    }

    #[test]
    fn queue_spec_fifo() {
        let s = QueueSpec;
        let st = s.init();
        let st = s.apply(&st, &QueueOp::Enq(1)).unwrap();
        let st = s.apply(&st, &QueueOp::Enq(2)).unwrap();
        assert!(s.apply(&st, &QueueOp::Deq(Some(2))).is_none());
        let st = s.apply(&st, &QueueOp::Deq(Some(1))).unwrap();
        let st = s.apply(&st, &QueueOp::Deq(Some(2))).unwrap();
        assert!(s.apply(&st, &QueueOp::Deq(Some(0))).is_none());
        assert!(s.apply(&st, &QueueOp::Deq(None)).is_some());
    }

    #[test]
    fn stack_spec_lifo() {
        let s = StackSpec;
        let st = s.init();
        let st = s.apply(&st, &StackOp::Push(1)).unwrap();
        let st = s.apply(&st, &StackOp::Push(2)).unwrap();
        assert!(s.apply(&st, &StackOp::Pop(Some(1))).is_none());
        let st = s.apply(&st, &StackOp::Pop(Some(2))).unwrap();
        assert!(s.apply(&st, &StackOp::Pop(None)).is_none());
        assert!(s.apply(&st, &StackOp::Pop(Some(1))).is_some());
    }

    #[test]
    fn pair_move_transfers_respecting_disciplines() {
        let spec = PairSpec {
            a: Cont::Fifo,
            b: Cont::Lifo,
        };
        let st = spec.init();
        let st = spec.apply(&st, &PairOp::InsA(1)).unwrap();
        let st = spec.apply(&st, &PairOp::InsA(2)).unwrap();
        // Move takes A's FIFO head (1) and pushes it on B.
        let st = spec.apply(&st, &PairOp::MoveAB(true)).unwrap();
        let st = spec.apply(&st, &PairOp::RemB(Some(1))).unwrap();
        let st = spec.apply(&st, &PairOp::RemA(Some(2))).unwrap();
        assert!(spec.apply(&st, &PairOp::MoveAB(true)).is_none(), "A empty");
        assert!(spec.apply(&st, &PairOp::MoveAB(false)).is_some());
    }

    #[test]
    fn absent_from_both_during_move_is_not_linearizable() {
        // One element in A. A successful move A->B spans the whole window.
        // Inside it, RemB -> None completes strictly before RemA -> None
        // begins. RemB=None forces the move to linearize after RemB; RemA=None
        // forces it before RemA; but RemB finished before RemA started, so
        // there is no single point for the move: the element would have been
        // absent from both containers — exactly the intermediate state the
        // paper's Figure 1c shows and the methodology eliminates.
        let spec = PairSpec {
            a: Cont::Fifo,
            b: Cont::Fifo,
        };
        let h = vec![
            e(PairOp::InsA(7), 0, 1),
            e(PairOp::MoveAB(true), 2, 20),
            e(PairOp::RemA(None), 3, 5),
            e(PairOp::RemB(None), 6, 8),
        ];
        // RemA=None needs move-before-RemA; RemB=None needs move-after-RemB;
        // RemA precedes RemB in real time -> contradiction.
        assert_eq!(check_linearizable(&spec, &h), CheckResult::NotLinearizable);
    }

    #[test]
    fn present_in_exactly_one_is_linearizable() {
        // Same window, but the observers see a consistent single location:
        // RemB->None (before the move linearizes) then RemA->Some(7) would
        // conflict with the move succeeding; instead observe RemB->None and
        // let the move linearize afterwards.
        let spec = PairSpec {
            a: Cont::Fifo,
            b: Cont::Fifo,
        };
        let h = vec![
            e(PairOp::InsA(7), 0, 1),
            e(PairOp::MoveAB(true), 2, 20),
            e(PairOp::RemB(None), 3, 5),
            e(PairOp::RemB(Some(7)), 6, 19),
        ];
        assert!(check_linearizable(&spec, &h).is_linearizable());
    }

    #[test]
    fn swap_spec_semantics() {
        let spec = PairSpec {
            a: Cont::Fifo,
            b: Cont::Fifo,
        };
        let st = spec.init();
        assert!(spec
            .apply(&st, &PairOp::Swap(SwapResult::Swapped))
            .is_none());
        let st = spec
            .apply(&st, &PairOp::Swap(SwapResult::FirstEmpty))
            .unwrap();
        let st = spec.apply(&st, &PairOp::InsA(1)).unwrap();
        assert!(spec
            .apply(&st, &PairOp::Swap(SwapResult::FirstEmpty))
            .is_none());
        let st = spec
            .apply(&st, &PairOp::Swap(SwapResult::SecondEmpty))
            .unwrap();
        let st = spec.apply(&st, &PairOp::InsB(2)).unwrap();
        let st = spec.apply(&st, &PairOp::Swap(SwapResult::Swapped)).unwrap();
        let st = spec.apply(&st, &PairOp::RemA(Some(2))).unwrap();
        let st = spec.apply(&st, &PairOp::RemB(Some(1))).unwrap();
        let _ = st;
    }

    #[test]
    fn torn_swap_is_not_linearizable() {
        // a=[1], b=[2]; a successful swap spans the window. Inside it an
        // observer removes 1 from a and then 2 from a — but 2 can only be
        // in a after the swap, and the swap needs 1 still in a: no single
        // point exists.
        let spec = PairSpec {
            a: Cont::Fifo,
            b: Cont::Fifo,
        };
        let h = vec![
            e(PairOp::InsA(1), 0, 1),
            e(PairOp::InsB(2), 2, 3),
            e(PairOp::Swap(SwapResult::Swapped), 4, 20),
            e(PairOp::RemA(Some(1)), 5, 7),
            e(PairOp::RemA(Some(2)), 8, 10),
        ];
        assert_eq!(check_linearizable(&spec, &h), CheckResult::NotLinearizable);
        // Control: observing only the post-swap head is linearizable.
        let h = vec![
            e(PairOp::InsA(1), 0, 1),
            e(PairOp::InsB(2), 2, 3),
            e(PairOp::Swap(SwapResult::Swapped), 4, 20),
            e(PairOp::RemA(Some(2)), 5, 7),
        ];
        assert!(check_linearizable(&spec, &h).is_linearizable());
    }

    #[test]
    fn trio_broadcast_in_strict_subset_is_not_linearizable() {
        // One element in A; a successful broadcast spans the window. An
        // observer sees it arrive in B while C is still observed empty
        // *after* B's removal completed: the element was visible in a
        // strict subset of the targets — exactly what move_to_all forbids.
        let spec = TrioSpec {
            a: Cont::Fifo,
            b: Cont::Fifo,
            c: Cont::Fifo,
        };
        let te = Entry::new;
        let h = vec![
            te(TrioOp::InsA(7), 0, 1),
            te(TrioOp::Broadcast(true), 2, 20),
            te(TrioOp::RemB(Some(7)), 3, 5),
            te(TrioOp::RemC(None), 6, 8),
        ];
        assert_eq!(check_linearizable(&spec, &h), CheckResult::NotLinearizable);
        // Control: both targets observed consistently.
        let h = vec![
            te(TrioOp::InsA(7), 0, 1),
            te(TrioOp::Broadcast(true), 2, 20),
            te(TrioOp::RemB(Some(7)), 3, 5),
            te(TrioOp::RemC(Some(7)), 6, 8),
            te(TrioOp::RemA(None), 9, 11),
        ];
        assert!(check_linearizable(&spec, &h).is_linearizable());
    }

    #[test]
    fn keyed_pair_spec_semantics() {
        let spec = KeyedPairSpec;
        let st = spec.init();
        let st = spec.apply(&st, &KeyedPairOp::InsA(1, true)).unwrap();
        assert!(spec.apply(&st, &KeyedPairOp::InsA(1, true)).is_none());
        let st = spec.apply(&st, &KeyedPairOp::InsA(1, false)).unwrap();
        let st = spec
            .apply(&st, &KeyedPairOp::MoveAB(1, KeyedMoveResult::Moved))
            .unwrap();
        assert!(spec
            .apply(&st, &KeyedPairOp::MoveAB(1, KeyedMoveResult::Moved))
            .is_none());
        let st = spec
            .apply(&st, &KeyedPairOp::MoveAB(1, KeyedMoveResult::Absent))
            .unwrap();
        let st = spec.apply(&st, &KeyedPairOp::InsA(1, true)).unwrap();
        let st = spec
            .apply(&st, &KeyedPairOp::MoveAB(1, KeyedMoveResult::Duplicate))
            .unwrap();
        let st = spec.apply(&st, &KeyedPairOp::RemB(1, true)).unwrap();
        assert!(spec.apply(&st, &KeyedPairOp::RemB(1, true)).is_none());
        let _ = st;
    }

    #[test]
    fn keyed_limbo_state_is_not_linearizable() {
        // Key 5 in A; a successful keyed move spans the window; inside it,
        // an observer sees the key in NEITHER container (RemA=false then
        // RemB=false, sequentially). No single move point exists.
        let spec = KeyedPairSpec;
        let h = vec![
            Entry::new(KeyedPairOp::InsA(5, true), 0, 1),
            Entry::new(KeyedPairOp::MoveAB(5, KeyedMoveResult::Moved), 2, 20),
            Entry::new(KeyedPairOp::RemA(5, false), 3, 5),
            Entry::new(KeyedPairOp::RemB(5, false), 6, 8),
        ];
        assert_eq!(check_linearizable(&spec, &h), CheckResult::NotLinearizable);
    }

    #[test]
    fn map_spec_insert_if_absent() {
        let spec = MapSpec;
        let st = spec.init();
        let st = spec.apply(&st, &MapOp::Insert(1, 10, true)).unwrap();
        assert!(spec.apply(&st, &MapOp::Insert(1, 11, true)).is_none());
        let st = spec.apply(&st, &MapOp::Insert(1, 11, false)).unwrap();
        let st = spec.apply(&st, &MapOp::Get(1, Some(10))).unwrap();
        assert!(spec.apply(&st, &MapOp::Get(1, Some(11))).is_none());
        let st = spec.apply(&st, &MapOp::Remove(1, Some(10))).unwrap();
        let st = spec.apply(&st, &MapOp::Remove(1, None)).unwrap();
        assert!(spec.apply(&st, &MapOp::Get(1, Some(10))).is_none());
        let _ = st;
    }

    #[test]
    fn slot_spec_bounded_capacity() {
        let spec = SlotSpec;
        let st = spec.init();
        assert!(
            spec.apply(&st, &SlotOp::Put(1, false)).is_none(),
            "empty accepts"
        );
        let st = spec.apply(&st, &SlotOp::Put(1, true)).unwrap();
        assert!(
            spec.apply(&st, &SlotOp::Put(2, true)).is_none(),
            "occupied rejects"
        );
        let st = spec.apply(&st, &SlotOp::Put(2, false)).unwrap();
        let st = spec.apply(&st, &SlotOp::Peek(Some(1))).unwrap();
        let st = spec.apply(&st, &SlotOp::Take(Some(1))).unwrap();
        let st = spec.apply(&st, &SlotOp::Take(None)).unwrap();
        let _ = st;
    }

    #[test]
    fn slot_full_rejection_window_is_checked() {
        // put(2)->false (rejected) completing before take(1) starts forces
        // the rejection to linearize while the slot still holds 1 — legal;
        // but a rejection after the take completed is not.
        let spec = SlotSpec;
        let h = vec![
            Entry::new(SlotOp::Put(1, true), 0, 1),
            Entry::new(SlotOp::Put(2, false), 2, 3),
            Entry::new(SlotOp::Take(Some(1)), 4, 5),
        ];
        assert!(check_linearizable(&spec, &h).is_linearizable());
        let h = vec![
            Entry::new(SlotOp::Put(1, true), 0, 1),
            Entry::new(SlotOp::Take(Some(1)), 2, 3),
            Entry::new(SlotOp::Put(2, false), 4, 5),
        ];
        assert_eq!(check_linearizable(&spec, &h), CheckResult::NotLinearizable);
    }

    #[test]
    fn duplicated_element_is_not_linearizable() {
        // The element observed in BOTH containers: impossible.
        let spec = PairSpec {
            a: Cont::Fifo,
            b: Cont::Fifo,
        };
        let h = vec![
            e(PairOp::InsA(7), 0, 1),
            e(PairOp::MoveAB(true), 2, 20),
            e(PairOp::RemB(Some(7)), 3, 5),
            e(PairOp::RemA(Some(7)), 6, 8),
        ];
        assert_eq!(check_linearizable(&spec, &h), CheckResult::NotLinearizable);
    }
}
