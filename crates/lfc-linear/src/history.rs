//! Concurrent history recording.
//!
//! Invocation/response instants are drawn from one process-wide atomic
//! counter, so timestamps are unique and totally ordered, and the recorded
//! precedence relation is exactly the real-time order linearizability must
//! respect.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One completed operation: its op-with-outcome, its interval, and the
/// recording lane (one lane per recording thread — what the counterexample
/// timeline renders as a column).
#[derive(Clone, Debug)]
pub struct Entry<O> {
    /// The operation, including its observed result.
    pub op: O,
    /// Invocation timestamp.
    pub invoke: u64,
    /// Response timestamp (`invoke < ret`).
    pub ret: u64,
    /// Recording lane (dense per-recorder thread index; 0 for hand-built
    /// histories).
    pub lane: u16,
}

impl<O> Entry<O> {
    /// Hand-built entry on lane 0 (spec tests, golden histories).
    pub fn new(op: O, invoke: u64, ret: u64) -> Self {
        Entry {
            op,
            invoke,
            ret,
            lane: 0,
        }
    }
}

/// Records a concurrent history across threads.
#[derive(Debug, Default)]
pub struct Recorder<O> {
    clock: AtomicU64,
    entries: Mutex<Vec<Entry<O>>>,
    lanes: Mutex<Vec<std::thread::ThreadId>>,
}

impl<O> Recorder<O> {
    /// Fresh recorder.
    pub fn new() -> Self {
        Recorder {
            clock: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
            lanes: Mutex::new(Vec::new()),
        }
    }

    /// A unique, monotonically increasing timestamp.
    pub fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Dense lane index of the calling thread (first use assigns the next
    /// free lane).
    pub fn lane(&self) -> u16 {
        let id = std::thread::current().id();
        let mut lanes = self.lanes.lock().unwrap();
        match lanes.iter().position(|&l| l == id) {
            Some(i) => i as u16,
            None => {
                lanes.push(id);
                (lanes.len() - 1) as u16
            }
        }
    }

    /// Run `f`, recording its interval; `f` returns the op-with-outcome to
    /// log (so the outcome can be derived from the operation's own result).
    pub fn record<F: FnOnce() -> O>(&self, f: F) -> &Self {
        let lane = self.lane();
        let invoke = self.now();
        let op = f();
        let ret = self.now();
        self.entries.lock().unwrap().push(Entry {
            op,
            invoke,
            ret,
            lane,
        });
        self
    }

    /// Log a pre-timed entry (when the caller measured the interval itself).
    pub fn push(&self, op: O, invoke: u64, ret: u64) {
        debug_assert!(invoke < ret);
        let lane = self.lane();
        self.entries.lock().unwrap().push(Entry {
            op,
            invoke,
            ret,
            lane,
        });
    }

    /// Extract the history, sorted by invocation.
    pub fn finish(self) -> Vec<Entry<O>> {
        let mut v = self.entries.into_inner().unwrap();
        v.sort_by_key(|e| e.invoke);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_unique_and_ordered() {
        let r: Recorder<u32> = Recorder::new();
        let a = r.now();
        let b = r.now();
        assert!(a < b);
    }

    #[test]
    fn record_produces_proper_intervals() {
        let r: Recorder<u32> = Recorder::new();
        r.record(|| 1);
        r.record(|| 2);
        let h = r.finish();
        assert_eq!(h.len(), 2);
        assert!(h[0].invoke < h[0].ret);
        assert!(h[0].ret < h[1].invoke, "sequential ops do not overlap");
    }

    #[test]
    fn concurrent_records_interleave() {
        let r: Recorder<u32> = Recorder::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..50 {
                        r.record(|| t * 100 + i);
                    }
                });
            }
        });
        let h = r.finish();
        assert_eq!(h.len(), 200);
        for w in h.windows(2) {
            assert!(w[0].invoke < w[1].invoke);
        }
    }
}
