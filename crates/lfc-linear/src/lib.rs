//! Linearizability checking toolkit.
//!
//! Linearizability (Herlihy & Wing; the paper's §2 correctness criterion)
//! demands that every concurrent history be equivalent to some sequential
//! history that respects real-time order: an operation that finished before
//! another was invoked must appear first. The composed move operation's
//! whole point is that the pair (remove, insert) occupies a *single* point
//! in that sequential order.
//!
//! This crate records concurrent histories ([`Recorder`]) and decides
//! linearizability against a sequential specification ([`Spec`]) with a
//! Wing–Gong-style exhaustive search, memoized on (linearized-set, state)
//! pairs as in Lowe's checker. Counterexamples render as aligned
//! per-thread timelines ([`render_history`]) instead of raw entry dumps. Specifications for queues, stacks, and —
//! crucially — *pairs of containers with an atomic move* live in [`specs`].

#![warn(missing_docs)]

pub mod checker;
pub mod history;
pub mod report;
pub mod specs;

pub use checker::{check_linearizable, CheckResult};
pub use history::{Entry, Recorder};
pub use report::render_history;
pub use specs::{
    Cont, KeyedMoveResult, KeyedPairOp, KeyedPairSpec, MapOp, MapSpec, PairOp, PairSpec, QueueOp,
    QueueSpec, SlotOp, SlotSpec, StackOp, StackSpec, SwapResult, TrioOp, TrioSpec,
};

use std::hash::Hash;

/// A sequential specification.
///
/// `Op` carries the operation *and its observed outcome* (e.g.
/// `Deq(Some(3))`); [`Spec::apply`] returns the successor state if that
/// outcome is legal in `state`, or `None` if it is impossible.
pub trait Spec {
    /// Abstract state (hashed for search memoization).
    type State: Clone + Eq + Hash;
    /// Operation-with-outcome.
    type Op: Clone;

    /// Initial abstract state.
    fn init(&self) -> Self::State;

    /// Apply `op`; `None` when the recorded outcome contradicts `state`.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> Option<Self::State>;
}
