//! Readable counterexample rendering: an aligned per-thread timeline of a
//! recorded history, so a failing (or shrunk) history can be understood
//! without a debugger — previously failures dumped the raw `Entry` debug
//! list.
//!
//! Rows are ordered by invocation; each recording thread (lane) gets a
//! column; the `[invoke..ret]` interval prefix makes real-time overlap
//! visible at a glance (two rows overlap iff their intervals do).

use crate::history::Entry;

/// Render `history` as an aligned per-lane timeline.
///
/// ```
/// use lfc_linear::{specs::QueueOp, Entry, report::render_history};
/// let h = vec![
///     Entry::new(QueueOp::Enq(1), 0, 1),
///     Entry { op: QueueOp::Deq(Some(1)), invoke: 2, ret: 5, lane: 1 },
/// ];
/// let s = render_history(&h);
/// assert!(s.contains("thread 0") && s.contains("thread 1"));
/// assert!(s.contains("[  2..  5] Deq(Some(1))"));
/// ```
pub fn render_history<O: std::fmt::Debug>(history: &[Entry<O>]) -> String {
    if history.is_empty() {
        return "  (empty history)\n".to_string();
    }
    let lanes = history
        .iter()
        .map(|e| e.lane as usize + 1)
        .max()
        .unwrap_or(1);
    let mut order: Vec<usize> = (0..history.len()).collect();
    order.sort_by_key(|&i| history[i].invoke);
    let texts: Vec<String> = history
        .iter()
        .map(|e| format!("[{:>3}..{:>3}] {:?}", e.invoke, e.ret, e.op))
        .collect();
    let mut width = vec!["thread 0".len() + 2; lanes];
    for (e, t) in history.iter().zip(&texts) {
        let l = e.lane as usize;
        width[l] = width[l].max(t.len() + 2);
    }
    let mut out = String::new();
    out.push_str("  ");
    for (l, w) in width.iter().enumerate() {
        out.push_str(&format!("| {:<w$}", format!("thread {l}"), w = w));
    }
    out.push('\n');
    for &i in &order {
        let lane = history[i].lane as usize;
        out.push_str("  ");
        for (l, w) in width.iter().enumerate() {
            if l == lane {
                out.push_str(&format!("| {:<w$}", texts[i], w = w));
            } else {
                out.push_str(&format!("| {:<w$}", "", w = w));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::QueueOp;

    #[test]
    fn timeline_has_one_column_per_lane_and_sorted_rows() {
        let h = vec![
            Entry {
                op: QueueOp::Deq(None),
                invoke: 4,
                ret: 6,
                lane: 1,
            },
            Entry {
                op: QueueOp::Enq(7),
                invoke: 0,
                ret: 2,
                lane: 0,
            },
        ];
        let s = render_history(&h);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows");
        assert!(lines[0].contains("thread 0") && lines[0].contains("thread 1"));
        // Sorted by invocation: the enqueue row comes first.
        assert!(lines[1].contains("Enq(7)"));
        assert!(lines[2].contains("Deq(None)"));
        // Lane separation: Deq sits in the second column.
        let deq_col = lines[2].rfind('|').unwrap();
        assert!(lines[2][deq_col..].contains("Deq"));
        assert!(!lines[2][..deq_col].contains("Deq"));
    }

    #[test]
    fn empty_history_renders_placeholder() {
        let h: Vec<Entry<QueueOp>> = Vec::new();
        assert!(render_history(&h).contains("empty"));
    }
}
