//! Conservation stress for the *composed* operations under forced epoch
//! advances — the companion to `epoch_stress.rs` for `swap` and
//! `move_keyed_to_all` (ISSUE 4 satellite): while worker threads run
//! swaps between two queues and keyed broadcasts from an ordered set into
//! two hash maps, an adversary thread forces global-epoch advances and
//! reclamation scans, so records are tagged and freed across generation
//! boundaries mid-operation. The item-count invariant is checked after
//! **every round**: swaps conserve the total across the queue pair;
//! a keyed broadcast consumes one source key and produces one clone per
//! target, atomically — a key is either still in the source or in *all*
//! targets.

use lfc_core::{move_keyed_to_all, swap, MoveOutcome, SwapOutcome};
use lfc_structures::{LfHashMap, MsQueue, OrderedSet};
use std::sync::atomic::{AtomicUsize, Ordering};

const ROUNDS: usize = 20;
const SWAPS_PER_ROUND: usize = 400;
const KEYS_PER_ROUND: u64 = 64;

#[test]
#[ignore = "stress: run with --release -- --ignored stress"]
fn stress_swap_conserves_under_forced_epoch_advances() {
    let a: MsQueue<u64> = MsQueue::new();
    let b: MsQueue<u64> = MsQueue::new();
    const TOTAL: usize = 32;
    for i in 0..TOTAL as u64 {
        if i % 2 == 0 {
            a.enqueue(i);
        } else {
            b.enqueue(i);
        }
    }
    for round in 0..ROUNDS {
        let done = AtomicUsize::new(0);
        std::thread::scope(|sc| {
            // The adversary: advance the epoch and scan as fast as
            // possible, so retire tags race operation entries. Exits once
            // both workers report done.
            let done_ref = &done;
            sc.spawn(move || {
                while done_ref.load(Ordering::Relaxed) < 2 {
                    lfc_hazard::advance_epoch();
                    lfc_hazard::flush();
                    std::thread::yield_now();
                }
            });
            for t in 0..2 {
                let (a, b) = (&a, &b);
                let done_ref = &done;
                sc.spawn(move || {
                    for i in 0..SWAPS_PER_ROUND {
                        let r = if (i + t) % 2 == 0 {
                            swap(a, b)
                        } else {
                            swap(b, a)
                        };
                        assert!(
                            matches!(
                                r,
                                SwapOutcome::Swapped
                                    | SwapOutcome::FirstEmpty
                                    | SwapOutcome::SecondEmpty
                            ),
                            "unbounded distinct queues cannot reject/alias: {r:?}"
                        );
                    }
                    done_ref.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // Item-count invariant after every round: swaps move elements
        // between the queues but never create or destroy them.
        let count = |q: &MsQueue<u64>| {
            let mut n = 0;
            let mut held = Vec::new();
            while let Some(v) = q.dequeue() {
                n += 1;
                held.push(v);
            }
            for v in held {
                q.enqueue(v);
            }
            n
        };
        let total = count(&a) + count(&b);
        assert_eq!(
            total, TOTAL,
            "round {round}: swap leaked or duplicated elements"
        );
    }
}

#[test]
#[ignore = "stress: run with --release -- --ignored stress"]
fn stress_keyed_broadcast_conserves_under_forced_epoch_advances() {
    for round in 0..ROUNDS {
        let src: OrderedSet<u64, u64> = OrderedSet::new();
        let d1: LfHashMap<u64, u64> = LfHashMap::with_buckets(8);
        let d2: LfHashMap<u64, u64> = LfHashMap::with_buckets(8);
        for k in 0..KEYS_PER_ROUND {
            src.insert(k, k * 10);
        }
        let done = AtomicUsize::new(0);
        std::thread::scope(|sc| {
            let done_ref = &done;
            sc.spawn(move || {
                while done_ref.load(Ordering::Relaxed) < 2 {
                    lfc_hazard::advance_epoch();
                    lfc_hazard::flush();
                    std::thread::yield_now();
                }
            });
            for t in 0..2u64 {
                let (src, d1, d2) = (&src, &d1, &d2);
                let done_ref = &done;
                sc.spawn(move || {
                    for k in 0..KEYS_PER_ROUND {
                        let key = (k + t * 31) % KEYS_PER_ROUND;
                        match move_keyed_to_all(src, &key, &[d1, d2]) {
                            MoveOutcome::Moved => {
                                // The broadcast is atomic: the key must be
                                // in BOTH targets now (nobody removes).
                                assert!(
                                    d1.contains(&key) && d2.contains(&key),
                                    "round {round}: key {key} in a strict subset of targets"
                                );
                            }
                            MoveOutcome::SourceEmpty
                            | MoveOutcome::TargetRejected
                            | MoveOutcome::WouldAlias => {}
                        }
                    }
                    done_ref.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // Item-count invariant after the round: each of the KEYS keys was
        // broadcast exactly once (two movers raced, one per key wins) —
        // every key left the source and is present in both targets.
        for k in 0..KEYS_PER_ROUND {
            assert!(
                !src.contains(&k),
                "round {round}: key {k} still in source after broadcast round"
            );
            assert!(
                d1.contains(&k) && d2.contains(&k),
                "round {round}: key {k} missing from a target (torn broadcast)"
            );
        }
        assert_eq!(d1.count(), KEYS_PER_ROUND as usize, "round {round}");
        assert_eq!(d2.count(), KEYS_PER_ROUND as usize, "round {round}");
    }
    // Everything retired during the rounds must eventually reclaim.
    lfc_hazard::flush();
}
