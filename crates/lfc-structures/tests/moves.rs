//! Composed moves across the paper's case-study objects (§5): the
//! Michael–Scott queue and the Treiber stack, in all pairings the evaluation
//! uses (queue/queue, stack/stack, queue/stack), plus the stamped stack and
//! the bounded slot.

use lfc_core::{move_one, MoveOutcome};
use lfc_structures::{MsQueue, OneSlot, StampedStack, TreiberStack};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

#[test]
fn queue_to_stack_move() {
    let q: MsQueue<u64> = MsQueue::new();
    let s: TreiberStack<u64> = TreiberStack::new();
    q.enqueue(1);
    q.enqueue(2);
    assert_eq!(move_one(&q, &s), MoveOutcome::Moved);
    assert_eq!(s.pop(), Some(1), "FIFO source: head moved first");
    assert_eq!(q.dequeue(), Some(2));
    assert_eq!(move_one(&q, &s), MoveOutcome::SourceEmpty);
}

#[test]
fn stack_to_queue_move() {
    let q: MsQueue<u64> = MsQueue::new();
    let s: TreiberStack<u64> = TreiberStack::new();
    s.push(1);
    s.push(2);
    assert_eq!(move_one(&s, &q), MoveOutcome::Moved);
    assert_eq!(q.dequeue(), Some(2), "LIFO source: top moved first");
    assert_eq!(s.pop(), Some(1));
}

#[test]
fn queue_to_queue_move() {
    let a: MsQueue<u64> = MsQueue::new();
    let b: MsQueue<u64> = MsQueue::new();
    for i in 0..10 {
        a.enqueue(i);
    }
    for _ in 0..10 {
        assert_eq!(move_one(&a, &b), MoveOutcome::Moved);
    }
    assert_eq!(move_one(&a, &b), MoveOutcome::SourceEmpty);
    for i in 0..10 {
        assert_eq!(b.dequeue(), Some(i), "order preserved through moves");
    }
}

#[test]
fn stack_to_stack_move() {
    let a: TreiberStack<u64> = TreiberStack::new();
    let b: TreiberStack<u64> = TreiberStack::new();
    a.push(1);
    a.push(2);
    assert_eq!(move_one(&a, &b), MoveOutcome::Moved); // moves 2
    assert_eq!(move_one(&a, &b), MoveOutcome::Moved); // moves 1
    assert_eq!(b.pop(), Some(1));
    assert_eq!(b.pop(), Some(2));
}

#[test]
fn stack_self_move_reports_aliasing() {
    // Both linearization points are the same `top` word: a two-word CAS
    // cannot express it and the move layer must report WouldAlias instead
    // of spinning forever.
    let s: TreiberStack<u64> = TreiberStack::new();
    s.push(7);
    assert_eq!(move_one(&s, &s), MoveOutcome::WouldAlias);
    assert_eq!(s.count(), 1, "stack untouched");
    assert_eq!(s.pop(), Some(7));
}

#[test]
fn queue_self_move_rotates() {
    // A queue's remove CAS targets `head`, its insert CAS targets the tail
    // node's `next`: distinct words, so a self-move is a legal rotation.
    let q: MsQueue<u64> = MsQueue::new();
    for i in 0..4 {
        q.enqueue(i);
    }
    assert_eq!(move_one(&q, &q), MoveOutcome::Moved);
    let drained: Vec<u64> = std::iter::from_fn(|| q.dequeue()).collect();
    assert_eq!(drained, vec![1, 2, 3, 0], "head rotated to the tail");
}

#[test]
fn move_to_full_slot_rejects_and_preserves() {
    let q: MsQueue<u64> = MsQueue::new();
    let slot: OneSlot<u64> = OneSlot::new();
    q.enqueue(10);
    slot.put(99);
    assert_eq!(move_one(&q, &slot), MoveOutcome::TargetRejected);
    assert_eq!(q.count(), 1, "abort left the source untouched");
    assert_eq!(slot.take(), Some(99));
    // Now the slot is free: the same move succeeds.
    assert_eq!(move_one(&q, &slot), MoveOutcome::Moved);
    assert_eq!(slot.take(), Some(10));
    assert!(q.is_empty());
}

#[test]
fn stamped_stack_participates_in_moves() {
    let a: StampedStack<u64> = StampedStack::new();
    let q: MsQueue<u64> = MsQueue::new();
    a.push(5);
    assert_eq!(move_one(&a, &q), MoveOutcome::Moved);
    assert_eq!(move_one(&q, &a), MoveOutcome::Moved);
    assert_eq!(a.pop(), Some(5));
    // Stamped self-move also aliases on `top`.
    a.push(6);
    assert_eq!(move_one(&a, &a), MoveOutcome::WouldAlias);
    assert_eq!(a.pop(), Some(6));
}

#[test]
fn concurrent_queue_stack_traffic_conserves_elements() {
    // The paper's mixed workload shape: threads randomly move between a
    // queue and a stack while others insert/remove. Total element count and
    // value multiset must be conserved.
    const SEED_PER_SIDE: u64 = 200;
    let q: MsQueue<u64> = MsQueue::new();
    let s: TreiberStack<u64> = TreiberStack::new();
    for i in 0..SEED_PER_SIDE {
        q.enqueue(i);
        s.push(SEED_PER_SIDE + i);
    }
    let moves = AtomicUsize::new(0);

    std::thread::scope(|sc| {
        for t in 0..4u64 {
            let q = &q;
            let s = &s;
            let moves = &moves;
            sc.spawn(move || {
                let mut x = t * 2 + 1;
                for _ in 0..5_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    match x % 4 {
                        0 => {
                            if move_one(q, s) == MoveOutcome::Moved {
                                moves.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            if move_one(s, q) == MoveOutcome::Moved {
                                moves.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        2 => {
                            // rotate through a remove+insert pair
                            if let Some(v) = q.dequeue() {
                                s.push(v);
                            }
                        }
                        _ => {
                            if let Some(v) = s.pop() {
                                q.enqueue(v);
                            }
                        }
                    }
                }
            });
        }
    });

    assert!(moves.load(Ordering::Relaxed) > 0, "moves actually happened");
    let mut survivors: Vec<u64> = Vec::new();
    while let Some(v) = q.dequeue() {
        survivors.push(v);
    }
    while let Some(v) = s.pop() {
        survivors.push(v);
    }
    survivors.sort_unstable();
    assert_eq!(
        survivors,
        (0..2 * SEED_PER_SIDE).collect::<Vec<u64>>(),
        "every element exactly once after arbitrary concurrent moves"
    );
}

#[test]
fn concurrent_queue_queue_movers_preserve_count() {
    let a: MsQueue<u64> = MsQueue::new();
    let b: MsQueue<u64> = MsQueue::new();
    const N: u64 = 400;
    for i in 0..N {
        a.enqueue(i);
    }
    std::thread::scope(|sc| {
        for dir in 0..2 {
            for _ in 0..2 {
                let a = &a;
                let b = &b;
                sc.spawn(move || {
                    for _ in 0..3_000 {
                        if dir == 0 {
                            let _ = move_one(a, b);
                        } else {
                            let _ = move_one(b, a);
                        }
                    }
                });
            }
        }
    });
    let mut all: Vec<u64> = Vec::new();
    while let Some(v) = a.dequeue() {
        all.push(v);
    }
    while let Some(v) = b.dequeue() {
        all.push(v);
    }
    all.sort_unstable();
    assert_eq!(all, (0..N).collect::<Vec<u64>>());
}

#[test]
fn concurrent_stack_stack_movers_preserve_count() {
    // The configuration the paper's §7 singles out for ABA-driven false
    // helping: elements bouncing between two stacks.
    let a: TreiberStack<u64> = TreiberStack::new();
    let b: TreiberStack<u64> = TreiberStack::new();
    const N: u64 = 100;
    for i in 0..N {
        a.push(i);
    }
    std::thread::scope(|sc| {
        for dir in 0..2 {
            for _ in 0..2 {
                let a = &a;
                let b = &b;
                sc.spawn(move || {
                    for _ in 0..4_000 {
                        if dir == 0 {
                            let _ = move_one(a, b);
                        } else {
                            let _ = move_one(b, a);
                        }
                    }
                });
            }
        }
    });
    let mut all: Vec<u64> = Vec::new();
    while let Some(v) = a.pop() {
        all.push(v);
    }
    while let Some(v) = b.pop() {
        all.push(v);
    }
    all.sort_unstable();
    assert_eq!(all, (0..N).collect::<Vec<u64>>());
}

#[test]
fn movers_race_direct_consumers_for_exactly_once_delivery() {
    // Producer enqueues N distinct values into the queue; movers shuttle
    // them to the stack; consumers pop from *both* ends. Every value must be
    // consumed exactly once.
    const N: u64 = 20_000;
    let q: MsQueue<u64> = MsQueue::new();
    let s: TreiberStack<u64> = TreiberStack::new();
    let consumed = AtomicU64::new(0);
    let seen = std::sync::Mutex::new(vec![false; N as usize]);

    std::thread::scope(|sc| {
        let q_ref = &q;
        let s_ref = &s;
        let consumed = &consumed;
        let seen = &seen;
        sc.spawn(move || {
            for v in 0..N {
                q_ref.enqueue(v);
            }
        });
        for _ in 0..2 {
            sc.spawn(move || {
                while consumed.load(Ordering::Relaxed) < N {
                    let _ = move_one(q_ref, s_ref);
                }
            });
        }
        for src in 0..2 {
            sc.spawn(move || {
                let mut local = Vec::new();
                while consumed.load(Ordering::Relaxed) < N {
                    let got = if src == 0 {
                        q_ref.dequeue()
                    } else {
                        s_ref.pop()
                    };
                    if let Some(v) = got {
                        local.push(v);
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let mut seen = seen.lock().unwrap();
                for v in local {
                    assert!(!seen[v as usize], "value {v} delivered twice");
                    seen[v as usize] = true;
                }
            });
        }
    });

    let seen = seen.lock().unwrap();
    assert!(seen.iter().all(|&b| b), "every value delivered");
    assert!(q.is_empty());
    assert!(s.is_empty());
}

#[test]
fn structures_do_not_leak_blocks() {
    let before = lfc_alloc::outstanding();
    {
        let q: MsQueue<u64> = MsQueue::new();
        let s: TreiberStack<u64> = TreiberStack::new();
        for i in 0..2_000 {
            q.enqueue(i);
            s.push(i);
        }
        for _ in 0..500 {
            let _ = move_one(&q, &s);
            let _ = move_one(&s, &q);
        }
        while q.dequeue().is_some() {}
        while s.pop().is_some() {}
    }
    lfc_hazard::flush();
    let after = lfc_alloc::outstanding();
    // Everything except a bounded number of still-hazarded stragglers must
    // be back in the pool.
    assert!(
        after <= before + 64,
        "outstanding blocks grew {before} -> {after}"
    );
}
