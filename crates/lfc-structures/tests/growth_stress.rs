//! Conservation stress for the split-ordered hash map's incremental
//! resize (PR 5): worker threads churn keyed inserts/removes and composed
//! keyed moves between two maps that start at ONE bucket, while an
//! adversary thread forces directory doublings, global-epoch advances and
//! reclamation scans — so bucket dummies are threaded into chains that
//! are concurrently traversed, captured by composed moves, and swept by
//! tagging scans. Invariants checked per round: the insert/remove/move
//! balance equals the observable occupancy of each map (a move that
//! reported `Moved` debited its source and credited its target exactly
//! once — a torn or duplicated move diverges one of the balances), and
//! every resident key holds its exact value. (A key *may* legitimately be
//! in both maps at once: a fresh insert into A races a copy parked in B
//! by an earlier move — the maps are independent sets.)

use lfc_core::{move_keyed, MoveOutcome};
use lfc_structures::LfHashMap;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

const ROUNDS: usize = 8;
const OPS_PER_THREAD: usize = 25_000;
const WORKERS: u64 = 4;
const KEY_SPACE: u64 = 256;

#[test]
#[ignore = "stress: run with --release -- --ignored stress"]
fn stress_growth_under_churn_conserves_keys() {
    let a: LfHashMap<u64, u64> = LfHashMap::with_buckets(1);
    let b: LfHashMap<u64, u64> = LfHashMap::with_buckets(1);
    // balance = inserts that won − removes that won, per map (moves are a
    // −1/+1 pair applied atomically, so they cancel across the pair).
    let bal_a = AtomicI64::new(0);
    let bal_b = AtomicI64::new(0);

    for round in 0..ROUNDS {
        let done = AtomicUsize::new(0);
        std::thread::scope(|sc| {
            let done_ref = &done;
            let (a, b) = (&a, &b);
            // The adversary: force doublings (until the heuristic takes
            // over), epoch advances and scans while the workers run.
            sc.spawn(move || {
                while done_ref.load(Ordering::Acquire) < WORKERS as usize {
                    // `force_grow` self-clamps at `grow_bound()` (PR 6), so
                    // hammering it is safe: the directory can no longer
                    // balloon past what the item count justifies.
                    a.force_grow();
                    b.force_grow();
                    lfc_hazard::advance_epoch();
                    lfc_hazard::flush();
                    std::thread::yield_now();
                }
            });
            for t in 0..WORKERS {
                let (bal_a, bal_b) = (&bal_a, &bal_b);
                let done_ref = &done;
                sc.spawn(move || {
                    let mut rng =
                        lfc_runtime::SmallRng::seed_from_u64(0x9807 + round as u64 * 131 + t * 17);
                    for _ in 0..OPS_PER_THREAD {
                        let k = rng.below(KEY_SPACE);
                        match rng.below(6) {
                            0 | 1 => {
                                if a.insert(k, k * 7) {
                                    bal_a.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            2 => {
                                if a.remove(&k).is_some() {
                                    bal_a.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            3 => {
                                if b.remove(&k).is_some() {
                                    bal_b.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            4 => {
                                if move_keyed(a, &k, b) == MoveOutcome::Moved {
                                    bal_a.fetch_sub(1, Ordering::Relaxed);
                                    bal_b.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            _ => {
                                if move_keyed(b, &k, a) == MoveOutcome::Moved {
                                    bal_b.fetch_sub(1, Ordering::Relaxed);
                                    bal_a.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    done_ref.fetch_add(1, Ordering::Release);
                });
            }
        });

        // Quiescent checks after every round.
        assert_eq!(
            bal_a.load(Ordering::Relaxed),
            a.count() as i64,
            "round {round}: map A occupancy diverged from its op balance"
        );
        assert_eq!(
            bal_b.load(Ordering::Relaxed),
            b.count() as i64,
            "round {round}: map B occupancy diverged from its op balance"
        );
        for k in 0..KEY_SPACE {
            for v in [a.get(&k), b.get(&k)].into_iter().flatten() {
                assert_eq!(v, k * 7, "round {round}: key {k} lost its value");
            }
        }
    }
    assert!(
        a.capacity() > 1 && b.capacity() > 1,
        "the stress must actually have grown the directories (a: {}, b: {})",
        a.capacity(),
        b.capacity()
    );
    assert!(
        a.capacity() <= a.grow_bound() && b.capacity() <= b.grow_bound(),
        "the adversary's unthrottled force_grow loop must stay clamped \
         (a: {} / {}, b: {} / {})",
        a.capacity(),
        a.grow_bound(),
        b.capacity(),
        b.grow_bound()
    );
}

/// Regression (PR 6): `force_grow` used to double unconditionally up to
/// `max_size`, so any caller looping it — the adversary above needed a
/// hand-written cap — ballooned the directory far past what the item count
/// justifies, lazily materializing segments for the whole range. It now
/// clamps at `grow_bound()`, a small multiple of the live item count.
#[test]
fn force_grow_is_clamped_by_item_count() {
    let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(1);
    for k in 0..10 {
        assert!(m.insert(k, k * 7));
    }
    for _ in 0..50 {
        m.force_grow();
    }
    // 10 items: bound = (10+1).next_power_of_two() << 2 = 64 buckets.
    assert_eq!(m.grow_bound(), 64);
    assert!(
        m.capacity() <= m.grow_bound(),
        "50 forced doublings on 10 items must clamp at the bound \
         (capacity {}, bound {})",
        m.capacity(),
        m.grow_bound()
    );

    // The clamp tracks the item count: more items re-open headroom.
    let before = m.capacity();
    for k in 10..1_000 {
        assert!(m.insert(k, k * 7));
    }
    for _ in 0..50 {
        m.force_grow();
    }
    assert!(
        m.capacity() > before,
        "growth must resume once the item count justifies it"
    );
    assert!(m.capacity() <= m.grow_bound());
    for k in 0..1_000 {
        assert_eq!(m.get(&k), Some(k * 7), "key {k} lost across growth");
    }
}
