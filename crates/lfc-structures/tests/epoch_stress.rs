//! Release-mode stress of the unified reclamation domain at the structure
//! level (`--ignored stress`, run by CI's release stress step): readers
//! traverse an [`OrderedSet`] and an [`LfHashMap`] through epoch-protected
//! `find` walks while writers churn inserts/removes (retiring nodes), and
//! a mover runs composed keyed moves between the two. Every value instance
//! ever created must drop exactly once after the structures are gone and
//! the domain is flushed.

use lfc_core::{move_keyed, MoveOutcome};
use lfc_structures::{LfHashMap, OrderedSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Drop-audited value: `CREATED` counts constructions *and* clones,
/// `DROPPED` counts drops; the difference is live instances.
struct Audited(u64);

static CREATED: AtomicUsize = AtomicUsize::new(0);
static DROPPED: AtomicUsize = AtomicUsize::new(0);

impl Audited {
    fn new(v: u64) -> Self {
        CREATED.fetch_add(1, Ordering::SeqCst);
        Audited(v)
    }
}

impl Clone for Audited {
    fn clone(&self) -> Self {
        CREATED.fetch_add(1, Ordering::SeqCst);
        Audited(self.0)
    }
}

impl Drop for Audited {
    fn drop(&mut self) {
        DROPPED.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
#[ignore = "stress: run with --release -- --ignored stress"]
fn stress_traverse_while_retiring_structures() {
    const READERS: usize = 2;
    const WRITER_OPS: u64 = 30_000;
    const KEYSPACE: u64 = 128;

    {
        let set: OrderedSet<u64, Audited> = OrderedSet::new();
        let map: LfHashMap<u64, Audited> = LfHashMap::with_buckets(16);
        for k in 0..KEYSPACE / 2 {
            set.insert(k, Audited::new(k));
            map.insert(k + KEYSPACE, Audited::new(k));
        }
        let stop = AtomicUsize::new(0);

        std::thread::scope(|sc| {
            for r in 0..READERS {
                let (set, map, stop) = (&set, &map, &stop);
                sc.spawn(move || {
                    let mut k = r as u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        // Fence-free traversals: each walks the live chain
                        // under one operation epoch. A hit must observe the
                        // value that was stored under the key.
                        if let Some(v) = set.get(&(k % KEYSPACE)) {
                            assert_eq!(v.0, k % KEYSPACE, "value under key must match");
                        }
                        let _ = map.contains(&(k % (2 * KEYSPACE)));
                        k = k
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(r as u64 + 1);
                    }
                });
            }
            {
                let (set, stop) = (&set, &stop);
                sc.spawn(move || {
                    for i in 0..WRITER_OPS {
                        let k = (i * 7) % KEYSPACE;
                        if i % 2 == 0 {
                            let _ = set.insert(k, Audited::new(k));
                        } else {
                            let _ = set.remove(&k);
                        }
                    }
                    stop.fetch_add(1, Ordering::Relaxed);
                });
            }
            {
                let (set, map, stop) = (&set, &map, &stop);
                sc.spawn(move || {
                    for i in 0..WRITER_OPS / 4 {
                        // Composed keyed moves run ENTRY promotions and the
                        // commit machinery against the same epochs.
                        let k = (i * 3) % KEYSPACE;
                        match move_keyed(set, &k, map) {
                            MoveOutcome::Moved => {
                                let _ = move_keyed(map, &k, set);
                            }
                            _ => {
                                let _ = map.remove(&k);
                            }
                        }
                    }
                    stop.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }

    // Structures are dropped; every created instance must drop after the
    // domain quiesces (flush adopts orphans and sweeps the bins).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while CREATED.load(Ordering::SeqCst) != DROPPED.load(Ordering::SeqCst)
        && std::time::Instant::now() < deadline
    {
        lfc_hazard::flush();
        std::thread::yield_now();
    }
    assert_eq!(
        CREATED.load(Ordering::SeqCst),
        DROPPED.load(Ordering::SeqCst),
        "every Audited instance must drop exactly once after flush"
    );
}
