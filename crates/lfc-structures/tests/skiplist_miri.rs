//! Miri smoke for the traversal kernel and the skip list (PR 9):
//! single-threaded walks through every unsafe path the kernel and the
//! tower machinery add — `find_pos` hops/unlink-helping/winner-retire
//! (through all three structures that share it), tower build (stage +
//! link + healing check), top-down tower freeze and sweep, per-level
//! reference releases down to the retire, composed keyed moves whose
//! LinPoint sits on a level-0 word, range walks over marked nodes, and
//! teardown with towers still linked. Small iteration counts: Miri runs
//! this with full aliasing checks in CI
//! (`cargo miri test -p lfc-structures --test skiplist_miri`).

use lfc_core::{move_keyed, MoveOutcome};
use lfc_structures::{LfSkipMap, OrderedSet};

#[test]
fn towers_walk_every_unsafe_path() {
    let m: LfSkipMap<u64, String> = LfSkipMap::new();
    // Enough inserts that the deterministic height sequence produces
    // several multi-level towers (tickets 1, 2, 5, 9, 10, ... are tall).
    for k in 0..32u64 {
        assert!(m.insert(k, format!("v{k}")));
        assert!(!m.insert(k, "dup".into()), "duplicate rejected");
    }
    for k in 0..32u64 {
        assert_eq!(m.get(&k).as_deref(), Some(format!("v{k}").as_str()));
    }
    // Remove odd keys: level-0 logical delete, top-down tower freeze,
    // sweep unlinks at every level, per-level ref releases, retire.
    for k in (1..32u64).step_by(2) {
        assert_eq!(m.remove(&k).as_deref(), Some(format!("v{k}").as_str()));
    }
    assert_eq!(m.count(), 16);
    // Ordered views over a chain that still holds marked nodes.
    let snap = m.to_vec();
    assert_eq!(snap.len(), 16);
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
    assert_eq!(m.range(10..20).len(), 5);
    // Reinsert over the same key space: fresh towers splice between
    // frozen remains of the old ones (builder healing paths).
    for k in (1..32u64).step_by(2) {
        assert!(m.insert(k, format!("w{k}")));
    }
    assert_eq!(m.count(), 32);
    lfc_hazard::flush();
}

#[test]
fn composed_moves_through_skip_maps() {
    // Keyed moves in both directions between a skip map and a kernel
    // sibling: captures promote level-0 predecessor allocations (header,
    // interior node) into ENTRY hazards and the towers ride along.
    let a: LfSkipMap<u64, u64> = LfSkipMap::new();
    let b: OrderedSet<u64, u64> = OrderedSet::new();
    for k in 0..12u64 {
        assert!(a.insert(k, k * 5));
    }
    for k in 0..12u64 {
        assert_eq!(move_keyed(&a, &k, &b), MoveOutcome::Moved);
    }
    assert_eq!(a.count(), 0);
    for k in 0..12u64 {
        assert_eq!(move_keyed(&b, &k, &a), MoveOutcome::Moved);
        assert_eq!(a.get(&k), Some(k * 5));
    }
    assert_eq!(move_keyed(&a, &99, &b), MoveOutcome::SourceEmpty);
    lfc_hazard::flush();
}

#[test]
fn teardown_with_linked_towers_reclaims_everything() {
    // Drop with a mix of live tall nodes, removed-but-swept nodes and a
    // marked straggler: every node must release one ref per linked level
    // and retire exactly once (Miri would flag any double-free or leak
    // of the tower-hosting allocations).
    let m: LfSkipMap<u64, Box<u64>> = LfSkipMap::new();
    for k in 0..24u64 {
        assert!(m.insert(k, Box::new(k)));
    }
    for k in (0..24u64).step_by(3) {
        assert_eq!(m.remove(&k).as_deref(), Some(&k));
    }
    drop(m);
    lfc_hazard::flush();
}
