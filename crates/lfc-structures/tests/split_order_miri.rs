//! Miri smoke for the split-ordered hash map (PR 5): single-threaded
//! walks through every unsafe path the resize machinery adds — lazy
//! segment allocation, recursive dummy threading across several
//! doublings, the length-header segment reclaimer, composed keyed moves
//! whose predecessor word lives in a dummy, and teardown with
//! marked-but-unlinked nodes. Small iteration counts: Miri runs this with
//! full aliasing checks in CI (`cargo miri test -p lfc-structures --test
//! split_order_miri`).

use lfc_core::{move_keyed, MoveOutcome};
use lfc_structures::LfHashMap;

#[test]
fn growth_walks_every_unsafe_path() {
    let m: LfHashMap<u64, String> = LfHashMap::with_buckets(1);
    // Enough keys to cross several doublings from a 1-bucket start, so
    // init_bucket recurses through parents and allocates fresh segments.
    for k in 0..48u64 {
        assert!(m.insert(k, format!("v{k}")));
        assert!(!m.insert(k, "dup".into()), "duplicate rejected");
    }
    assert!(m.capacity() > 1, "map grew");
    for k in 0..48u64 {
        assert_eq!(m.get(&k).as_deref(), Some(format!("v{k}").as_str()));
    }
    // Remove odd keys: exercises logical delete + physical unlink + retire
    // while dummies stay threaded between the survivors.
    for k in (1..48u64).step_by(2) {
        assert_eq!(m.remove(&k).as_deref(), Some(format!("v{k}").as_str()));
    }
    assert_eq!(m.count(), 24);
    // Force a few more doublings and re-verify reachability through the
    // finer dummies.
    m.force_grow();
    m.force_grow();
    for k in (0..48u64).step_by(2) {
        assert!(m.contains(&k));
    }
    lfc_hazard::flush();
}

#[test]
fn composed_moves_across_growing_maps() {
    let a: LfHashMap<u64, u64> = LfHashMap::with_buckets(1);
    let b: LfHashMap<u64, u64> = LfHashMap::with_buckets(1);
    for k in 0..12u64 {
        assert!(a.insert(k, k * 5));
    }
    a.force_grow();
    // Keyed moves whose captures may sit behind dummy-hosted predecessor
    // words, crossing a resize boundary on the source and growing the
    // target as elements arrive.
    for k in 0..12u64 {
        assert_eq!(move_keyed(&a, &k, &b), MoveOutcome::Moved);
        b.force_grow();
    }
    assert_eq!(a.count(), 0);
    assert_eq!(b.count(), 12);
    for k in 0..12u64 {
        assert_eq!(b.get(&k), Some(k * 5));
        assert_eq!(move_keyed(&a, &k, &b), MoveOutcome::SourceEmpty);
    }
    lfc_hazard::flush();
}

#[test]
fn teardown_reclaims_marked_but_linked_nodes() {
    // A remove that loses its physical-unlink CAS leaves a marked node in
    // the chain for later cleanup; dropping the map right away must still
    // reclaim it (and every dummy, segment and the header) exactly once.
    let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(1);
    for k in 0..16u64 {
        m.insert(k, k);
    }
    for k in 0..16u64 {
        m.remove(&k);
    }
    drop(m);
    lfc_hazard::flush();
}
