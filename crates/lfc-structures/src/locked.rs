//! Blocking baselines for the paper's evaluation (§6): node-based queue and
//! stack protected by a test-test-and-set lock, and a lock-based composed
//! move that must acquire *both* objects' locks:
//!
//! > "both the remove and the insert operations would have to acquire a lock
//! > before executing, in order to ensure that they are not executed
//! > concurrently with the composed move operation" (paper §1.1)
//!
//! To keep the comparison about *synchronization* — the quantity the paper
//! plots — the blocking objects are linked-list structures that allocate one
//! node per element from the same pooling memory manager as the lock-free
//! objects ("All implementations used the same lock-free memory manager",
//! §6). No hazard pointers are needed: nodes are only touched under the lock.
//!
//! [`lock_move`] acquires the two locks in address order, the standard
//! deadlock-avoidance discipline a careful programmer would use.

use lfc_runtime::{BackoffCfg, TtasLock};
use std::alloc::Layout;
use std::cell::UnsafeCell;

struct LNode<T> {
    val: T,
    next: *mut LNode<T>,
}

fn lnode_layout<T>() -> Layout {
    Layout::new::<LNode<T>>()
}

fn alloc_lnode<T>(val: T) -> *mut LNode<T> {
    let p = lfc_alloc::alloc_block(lnode_layout::<T>()).cast::<LNode<T>>();
    // Safety: fresh block of the right layout.
    unsafe {
        p.as_ptr().write(LNode {
            val,
            next: std::ptr::null_mut(),
        });
    }
    p.as_ptr()
}

/// Take the value out and return the block to the pool.
///
/// # Safety
///
/// `p` must be a live node uniquely owned by the caller.
unsafe fn take_lnode<T>(p: *mut LNode<T>) -> T {
    // Safety: unique owner.
    unsafe {
        let v = std::ptr::read(&(*p).val);
        lfc_alloc::free_block(p as *mut u8, lnode_layout::<T>());
        v
    }
}

struct ListState<T> {
    head: *mut LNode<T>,
    tail: *mut LNode<T>,
    len: usize,
}

/// A container whose operations are serialized by a [`TtasLock`]; the trait
/// the lock-based composed move is generic over.
pub trait Locked<T> {
    /// The object's lock.
    fn raw_lock(&self) -> &TtasLock;
    /// The backoff policy for failed acquisitions.
    fn lock_backoff(&self) -> BackoffCfg;
    /// Insert while holding the lock.
    ///
    /// # Safety
    ///
    /// Caller must hold `raw_lock`.
    unsafe fn insert_locked(&self, v: T) -> bool;
    /// Remove while holding the lock.
    ///
    /// # Safety
    ///
    /// Caller must hold `raw_lock`.
    unsafe fn remove_locked(&self) -> Option<T>;
}

/// FIFO queue (linked list, pooled nodes) under a test-test-and-set lock.
pub struct LockQueue<T> {
    lock: TtasLock,
    backoff: BackoffCfg,
    inner: UnsafeCell<ListState<T>>,
}

// Safety: `inner` is only touched under `lock`.
unsafe impl<T: Send> Send for LockQueue<T> {}
unsafe impl<T: Send> Sync for LockQueue<T> {}

impl<T> LockQueue<T> {
    /// Empty queue; failed lock acquisitions retry immediately.
    pub fn new() -> Self {
        Self::with_backoff(BackoffCfg::NONE)
    }

    /// Empty queue with doubling backoff on failed lock acquisitions.
    pub fn with_backoff(backoff: BackoffCfg) -> Self {
        LockQueue {
            lock: TtasLock::new(),
            backoff,
            inner: UnsafeCell::new(ListState {
                head: std::ptr::null_mut(),
                tail: std::ptr::null_mut(),
                len: 0,
            }),
        }
    }

    /// Append at the tail (blocking).
    pub fn enqueue(&self, v: T) {
        let _g = self.lock.lock(self.backoff);
        // Safety: lock held.
        unsafe { self.push_back(v) };
    }

    /// Remove from the head (blocking).
    pub fn dequeue(&self) -> Option<T> {
        let _g = self.lock.lock(self.backoff);
        // Safety: lock held.
        unsafe { self.pop_front() }
    }

    /// Observed emptiness (blocking).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length (blocking).
    pub fn len(&self) -> usize {
        let _g = self.lock.lock(self.backoff);
        // Safety: lock held.
        unsafe { (*self.inner.get()).len }
    }

    unsafe fn push_back(&self, v: T) {
        // Safety: lock held by caller.
        let st = unsafe { &mut *self.inner.get() };
        let node = alloc_lnode(v);
        if st.tail.is_null() {
            st.head = node;
        } else {
            // Safety: tail is a live node.
            unsafe { (*st.tail).next = node };
        }
        st.tail = node;
        st.len += 1;
    }

    unsafe fn pop_front(&self) -> Option<T> {
        // Safety: lock held by caller.
        let st = unsafe { &mut *self.inner.get() };
        if st.head.is_null() {
            return None;
        }
        let node = st.head;
        // Safety: head is live.
        st.head = unsafe { (*node).next };
        if st.head.is_null() {
            st.tail = std::ptr::null_mut();
        }
        st.len -= 1;
        // Safety: unlinked under the lock.
        Some(unsafe { take_lnode(node) })
    }
}

impl<T> Default for LockQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for LockQueue<T> {
    fn drop(&mut self) {
        // Safety: exclusive access.
        unsafe {
            let st = &mut *self.inner.get();
            let mut cur = st.head;
            while !cur.is_null() {
                let next = (*cur).next;
                drop(take_lnode(cur));
                cur = next;
            }
        }
    }
}

impl<T> Locked<T> for LockQueue<T> {
    fn raw_lock(&self) -> &TtasLock {
        &self.lock
    }
    fn lock_backoff(&self) -> BackoffCfg {
        self.backoff
    }
    unsafe fn insert_locked(&self, v: T) -> bool {
        // Safety: forwarded contract (lock held).
        unsafe { self.push_back(v) };
        true
    }
    unsafe fn remove_locked(&self) -> Option<T> {
        // Safety: forwarded contract (lock held).
        unsafe { self.pop_front() }
    }
}

/// LIFO stack (linked list, pooled nodes) under a test-test-and-set lock.
pub struct LockStack<T> {
    lock: TtasLock,
    backoff: BackoffCfg,
    inner: UnsafeCell<ListState<T>>,
}

// Safety: `inner` is only touched under `lock`.
unsafe impl<T: Send> Send for LockStack<T> {}
unsafe impl<T: Send> Sync for LockStack<T> {}

impl<T> LockStack<T> {
    /// Empty stack; failed lock acquisitions retry immediately.
    pub fn new() -> Self {
        Self::with_backoff(BackoffCfg::NONE)
    }

    /// Empty stack with doubling backoff on failed lock acquisitions.
    pub fn with_backoff(backoff: BackoffCfg) -> Self {
        LockStack {
            lock: TtasLock::new(),
            backoff,
            inner: UnsafeCell::new(ListState {
                head: std::ptr::null_mut(),
                tail: std::ptr::null_mut(),
                len: 0,
            }),
        }
    }

    /// Push (blocking).
    pub fn push(&self, v: T) {
        let _g = self.lock.lock(self.backoff);
        // Safety: lock held.
        unsafe { self.push_top(v) };
    }

    /// Pop (blocking).
    pub fn pop(&self) -> Option<T> {
        let _g = self.lock.lock(self.backoff);
        // Safety: lock held.
        unsafe { self.pop_top() }
    }

    /// Observed emptiness (blocking).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length (blocking).
    pub fn len(&self) -> usize {
        let _g = self.lock.lock(self.backoff);
        // Safety: lock held.
        unsafe { (*self.inner.get()).len }
    }

    unsafe fn push_top(&self, v: T) {
        // Safety: lock held by caller.
        let st = unsafe { &mut *self.inner.get() };
        let node = alloc_lnode(v);
        // Safety: node is fresh.
        unsafe { (*node).next = st.head };
        st.head = node;
        st.len += 1;
    }

    unsafe fn pop_top(&self) -> Option<T> {
        // Safety: lock held by caller.
        let st = unsafe { &mut *self.inner.get() };
        if st.head.is_null() {
            return None;
        }
        let node = st.head;
        // Safety: head is live.
        st.head = unsafe { (*node).next };
        st.len -= 1;
        // Safety: unlinked under the lock.
        Some(unsafe { take_lnode(node) })
    }
}

impl<T> Default for LockStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for LockStack<T> {
    fn drop(&mut self) {
        // Safety: exclusive access.
        unsafe {
            let st = &mut *self.inner.get();
            let mut cur = st.head;
            while !cur.is_null() {
                let next = (*cur).next;
                drop(take_lnode(cur));
                cur = next;
            }
        }
    }
}

impl<T> Locked<T> for LockStack<T> {
    fn raw_lock(&self) -> &TtasLock {
        &self.lock
    }
    fn lock_backoff(&self) -> BackoffCfg {
        self.backoff
    }
    unsafe fn insert_locked(&self, v: T) -> bool {
        // Safety: forwarded contract (lock held).
        unsafe { self.push_top(v) };
        true
    }
    unsafe fn remove_locked(&self) -> Option<T> {
        // Safety: forwarded contract (lock held).
        unsafe { self.pop_top() }
    }
}

/// Blocking composed move: locks both objects (in address order), then
/// removes from `src` and inserts into `dst`. Atomic, but serializes against
/// *every* operation on either object — the composition cost the paper's
/// evaluation quantifies.
pub fn lock_move<T, S: Locked<T> + ?Sized, D: Locked<T> + ?Sized>(src: &S, dst: &D) -> bool {
    let a = src.raw_lock() as *const TtasLock;
    let b = dst.raw_lock() as *const TtasLock;
    if a == b {
        let _g = src.raw_lock().lock(src.lock_backoff());
        // Safety: lock held for both roles (same object).
        unsafe {
            match src.remove_locked() {
                Some(v) => {
                    dst.insert_locked(v);
                    true
                }
                None => false,
            }
        }
    } else {
        // Address-ordered acquisition prevents deadlock between concurrent
        // moves in opposite directions.
        let (first, first_bo, second, second_bo) = if (a as usize) < (b as usize) {
            (
                src.raw_lock(),
                src.lock_backoff(),
                dst.raw_lock(),
                dst.lock_backoff(),
            )
        } else {
            (
                dst.raw_lock(),
                dst.lock_backoff(),
                src.raw_lock(),
                src.lock_backoff(),
            )
        };
        let _g1 = first.lock(first_bo);
        let _g2 = second.lock(second_bo);
        // Safety: both locks held.
        unsafe {
            match src.remove_locked() {
                Some(v) => {
                    dst.insert_locked(v);
                    true
                }
                None => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_fifo() {
        let q = LockQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn stack_lifo() {
        let s = LockStack::new();
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn drop_frees_remaining_values() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let before = DROPS.load(Ordering::SeqCst);
        {
            let q = LockQueue::new();
            q.enqueue(D);
            q.enqueue(D);
            let s = LockStack::new();
            s.push(D);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 3);
    }

    #[test]
    fn move_queue_to_stack() {
        let q = LockQueue::new();
        let s = LockStack::new();
        q.enqueue(7);
        assert!(lock_move(&q, &s));
        assert_eq!(s.pop(), Some(7));
        assert!(!lock_move(&q, &s), "source empty");
    }

    #[test]
    fn self_move_does_not_deadlock() {
        let s = LockStack::new();
        s.push(5);
        assert!(lock_move(&s, &s));
        assert_eq!(s.pop(), Some(5));
    }

    #[test]
    fn opposite_direction_moves_do_not_deadlock() {
        let a = std::sync::Arc::new(LockStack::new());
        let b = std::sync::Arc::new(LockStack::new());
        for i in 0..100 {
            a.push(i);
            b.push(1000 + i);
        }
        std::thread::scope(|sc| {
            for dir in 0..2 {
                let a = a.clone();
                let b = b.clone();
                sc.spawn(move || {
                    for _ in 0..10_000 {
                        if dir == 0 {
                            lock_move(&*a, &*b);
                        } else {
                            lock_move(&*b, &*a);
                        }
                    }
                });
            }
        });
        assert_eq!(a.len() + b.len(), 200, "moves conserve elements");
    }

    #[test]
    fn concurrent_movers_conserve_count() {
        let q = std::sync::Arc::new(LockQueue::new());
        let s = std::sync::Arc::new(LockStack::new());
        for i in 0..500 {
            q.enqueue(i);
        }
        let moved = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let q = q.clone();
                let s = s.clone();
                let moved = moved.clone();
                sc.spawn(move || {
                    while lock_move(&*q, &*s) {
                        moved.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(moved.load(Ordering::Relaxed), 500);
        assert_eq!(s.len(), 500);
        assert!(q.is_empty());
    }

    #[test]
    fn mixed_ops_under_lock_are_consistent() {
        let q = std::sync::Arc::new(LockQueue::new());
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let q = q.clone();
                sc.spawn(move || {
                    for i in 0..2_500 {
                        q.enqueue(t * 2_500 + i);
                        if i % 2 == 0 {
                            let _ = q.dequeue();
                        }
                    }
                });
            }
        });
        // 10k enqueues, 5k dequeues.
        assert_eq!(q.len(), 5_000);
    }
}
