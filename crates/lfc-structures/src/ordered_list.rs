//! A lock-free sorted linked-list set (Harris/Michael style) made
//! move-ready — the "linked list" half of the paper's §1.1 motivating
//! scenario (moving elements between a hash map and a list).
//!
//! Traversal is fence-free (PR 3): `find` runs under an operation epoch
//! ([`lfc_hazard::pin_op`], one fence at entry) and hops nodes with plain
//! acquire reads — no per-node hazard publication or validation re-read.
//! Hazards reappear only at the composition handoff: a captured
//! linearization entry's allocation is promoted into an `ENTRY*` slot by
//! the engine at capture time.
//!
//! Deletion is two-phase, as in Harris’s list (the paper’s reference \[8\]): the
//! *logical* delete marks the victim's `next` word (bit 2 of a raw protocol
//! word, disjoint from the descriptor kind bits), and that marking CAS is
//! the remove's linearization point — executed by the invoking thread, on a
//! pointer word, with the element read beforehand, so the list is a
//! move-candidate (paper Definition 1). Physical unlinking is cleanup,
//! performed by the remover or by any later traversal.

use crate::node::{alloc_solo_header, retire_solo_header, SoloHeader};
use crate::traverse::{self, is_deleted, without_mark, ChainNode, Position, DEL_MARK};
use lfc_core::{
    InsertCtx, InsertOutcome, KeyedMoveSource, KeyedMoveTarget, LinPoint, NormalCas, RemoveCtx,
    RemoveOutcome, ScasResult,
};
use lfc_dcas::DAtomic;
use lfc_hazard::{pin, pin_op, Guard, OpGuard};
use std::alloc::Layout;
use std::cell::UnsafeCell;
use std::ptr::NonNull;

struct LNode<K, T> {
    next: DAtomic,
    key: K,
    val: UnsafeCell<Option<T>>,
    /// Birth era (PR 6): written before publication, read at retire.
    birth: usize,
}

fn lnode_layout<K, T>() -> Layout {
    Layout::new::<LNode<K, T>>()
}

fn alloc_lnode<K, T>(key: K, val: T) -> *mut LNode<K, T> {
    let p = lfc_alloc::alloc_block(lnode_layout::<K, T>()).cast::<LNode<K, T>>();
    // Safety: fresh block of the right layout.
    unsafe {
        p.as_ptr().write(LNode {
            next: DAtomic::new(0),
            key,
            val: UnsafeCell::new(Some(val)),
            birth: lfc_hazard::birth_era(),
        });
    }
    debug_assert_eq!(p.as_ptr() as usize & 0b111, 0);
    p.as_ptr()
}

unsafe fn reclaim_lnode<K, T>(p: *mut u8) {
    // Safety: retire contract.
    unsafe {
        std::ptr::drop_in_place(p as *mut LNode<K, T>);
        lfc_alloc::free_block(p, lnode_layout::<K, T>());
    }
}

/// Zombie-tier fallback: pool the block without dropping key/value (see
/// `divert_node` in `node.rs`).
unsafe fn divert_lnode<K, T>(p: *mut u8) {
    // Safety: retire contract; contents intentionally not dropped.
    unsafe { lfc_alloc::free_block(p, lnode_layout::<K, T>()) };
}

unsafe fn retire_lnode<K, T>(p: *mut LNode<K, T>) {
    // Safety: unlinked but live; single retire call reads the plain field.
    let birth = unsafe { (*p).birth };
    // Safety: forwarded.
    unsafe {
        lfc_hazard::retire_with(
            p as *mut u8,
            reclaim_lnode::<K, T>,
            lfc_hazard::RetireInfo {
                bytes: std::mem::size_of::<LNode<K, T>>(),
                birth,
                divert: Some(divert_lnode::<K, T>),
            },
        )
    };
}

unsafe fn free_unpublished_lnode<K, T>(p: *mut LNode<K, T>) {
    // Safety: unique owner.
    unsafe { reclaim_lnode::<K, T>(p as *mut u8) };
}

// Safety: `next` is the marked chain word; unlinked nodes are hazard-retired.
unsafe impl<K, T> ChainNode for LNode<K, T> {
    #[inline]
    fn chain_word(&self) -> &DAtomic {
        &self.next
    }

    unsafe fn retire_unlinked(p: *mut Self) {
        // Safety: forwarded contract.
        unsafe { retire_lnode(p) };
    }
}

/// A move-ready lock-free sorted set with unique keys.
pub struct OrderedSet<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    header: NonNull<SoloHeader>,
    _marker: std::marker::PhantomData<(K, T)>,
}

// Safety: handle to hazard-managed shared state; see MsQueue.
unsafe impl<K, T> Send for OrderedSet<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
}
unsafe impl<K, T> Sync for OrderedSet<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
}

impl<K, T> OrderedSet<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    /// Empty set.
    pub fn new() -> Self {
        OrderedSet {
            header: alloc_solo_header(0),
            _marker: std::marker::PhantomData,
        }
    }

    #[inline]
    fn head(&self) -> &DAtomic {
        // Safety: header lives until Drop.
        &unsafe { self.header.as_ref() }.word
    }

    /// Locate `key` via the shared traversal kernel
    /// ([`crate::traverse::find_pos`]): anchored at the list head, under
    /// the caller's operation epoch (`pin_op` — the repin restart point
    /// lives inside the kernel), ordered by `node.key >= key`.
    fn find(&self, key: &K, g: &mut OpGuard) -> Position<LNode<K, T>> {
        let anchor = |_: &Guard| (self.head() as *const DAtomic, self.header.as_ptr() as usize);
        // Safety: cur epoch-protected; keys are immutable.
        let at_or_after = |cur: *mut LNode<K, T>| unsafe { &(*cur).key } >= key;
        // Safety: the head word lives in the owned header (protected by
        // the `&self` borrow); nodes are LNodes by construction.
        unsafe { traverse::find_pos(g, anchor, at_or_after) }
    }

    /// Insert `val` under `key`; false if the key is already present.
    pub fn insert(&self, key: K, val: T) -> bool {
        self.insert_key_with(key, val, &mut NormalCas) == InsertOutcome::Inserted
    }

    /// Remove the element under `key`.
    pub fn remove(&self, key: &K) -> Option<T> {
        match self.remove_key_with(key, &mut NormalCas) {
            RemoveOutcome::Removed(v) => Some(v),
            RemoveOutcome::Empty => None,
            RemoveOutcome::Aborted => unreachable!("NormalCas never aborts"),
        }
    }

    /// Clone the element under `key`, if present.
    pub fn get(&self, key: &K) -> Option<T> {
        let mut g = pin_op();
        let pos = self.find(key, &mut g);
        if pos.cur.is_null() {
            None
        } else {
            // Safety: cur epoch-protected by the op guard.
            let node = pos.cur;
            if unsafe { &(*node).key } == key {
                // Safety: value immutable, node epoch-protected.
                unsafe { (*(*node).val.get()).clone() }
            } else {
                None
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Racy O(n) length (quiescent use only).
    pub fn count(&self) -> usize {
        let g = pin_op();
        let mut n = 0;
        let mut cur = self.head().read(&g);
        while cur != 0 {
            // Safety: quiescent per the docs.
            let next = unsafe { &(*(cur as *mut LNode<K, T>)).next }.read_acquire(&g);
            if !is_deleted(next) {
                n += 1;
            }
            cur = without_mark(next);
        }
        n
    }
}

impl<K, T> Default for OrderedSet<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, T> KeyedMoveTarget<K, T> for OrderedSet<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn insert_key_with<C: InsertCtx>(&self, key: K, elem: T, ctx: &mut C) -> InsertOutcome {
        let mut g = pin_op();
        let node = alloc_lnode(key, elem);
        loop {
            // Ejection check (PR 6): if a scan marked us stalled, re-enter
            // at a fresh era and redo the find — `node` is unpublished and
            // ours, so it survives the restart; every `pos` from a prior
            // iteration is dead either way.
            g.repin_if_ejected();
            // Safety: node is ours until published.
            let key_ref = unsafe { &(*node).key };
            let pos = self.find(key_ref, &mut g);
            if !pos.cur.is_null() {
                // Safety: cur epoch-protected by find's op guard.
                if unsafe { &(*pos.cur).key } == key_ref {
                    // Duplicate key: genuine rejection (fails a move).
                    // Safety: never published.
                    unsafe { free_unpublished_lnode(node) };
                    return InsertOutcome::Rejected;
                }
            }
            // Safety: unpublished node.
            unsafe { &(*node).next }.store_word(pos.cur as usize);
            let r = ctx.scas(LinPoint {
                // Safety: prev allocation epoch-protected; a composed
                // capture promotes `hp` into an ENTRY hazard slot before
                // the commit so the protection outlives this epoch.
                word: unsafe { &*pos.prev_word },
                old: pos.cur as usize,
                new: node as usize,
                hp: pos.prev_alloc,
            });
            match r {
                ScasResult::Success => return InsertOutcome::Inserted,
                ScasResult::Fail => continue,
                ScasResult::Abort => {
                    // Safety: never published.
                    unsafe { free_unpublished_lnode(node) };
                    return InsertOutcome::Rejected;
                }
            }
        }
    }
}

impl<K, T> KeyedMoveSource<K, T> for OrderedSet<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn remove_key_with<C: RemoveCtx<T>>(&self, key: &K, ctx: &mut C) -> RemoveOutcome<T> {
        let mut g = pin_op();
        loop {
            // Ejection check (PR 6): see `insert_key_with`.
            g.repin_if_ejected();
            let pos = self.find(key, &mut g);
            let cur = pos.cur;
            // Safety: cur epoch-protected by find's op guard (non-null).
            if cur.is_null() || unsafe { &(*cur).key } != key {
                return RemoveOutcome::Empty;
            }
            // Safety: cur epoch-protected.
            let succ_w = unsafe { &(*cur).next }.read(&g);
            if is_deleted(succ_w) {
                continue; // someone else is removing it; re-find
            }
            // Element accessible before the linearization point (req. 4).
            // Safety: value immutable; cur epoch-protected.
            let val = match unsafe { (*(*cur).val.get()).as_ref() } {
                Some(v) => v.clone(),
                None => unreachable!("list nodes always hold a value"),
            };
            // The linearization point: the logical-delete marking CAS.
            let r = ctx.scas(
                LinPoint {
                    // Safety: cur epoch-protected; composed captures promote
                    // `hp` into an ENTRY hazard slot before the commit.
                    word: unsafe { &(*cur).next },
                    old: succ_w,
                    new: succ_w | DEL_MARK,
                    hp: cur as usize,
                },
                &val,
            );
            match r {
                ScasResult::Success => {
                    // Cleanup: try to unlink physically; a traversal will
                    // otherwise do it later.
                    if unsafe { &*pos.prev_word }.cas_word(cur as usize, succ_w) {
                        // Safety: unlinked.
                        unsafe { retire_lnode(cur) };
                    }
                    return RemoveOutcome::Removed(val);
                }
                ScasResult::Fail => continue,
                ScasResult::Abort => return RemoveOutcome::Aborted,
            }
        }
    }
}

impl<K, T> Drop for OrderedSet<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn drop(&mut self) {
        let g = pin();
        let mut cur = self.head().read(&g);
        while cur != 0 {
            let node = cur as *mut LNode<K, T>;
            // Safety: exclusive teardown.
            let next = unsafe { &(*node).next }.read(&g);
            unsafe { retire_lnode(node) };
            cur = without_mark(next);
        }
        // Safety: unique teardown.
        unsafe { retire_solo_header(self.header) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_unique_inserts() {
        let s: OrderedSet<u64, u64> = OrderedSet::new();
        assert!(s.insert(5, 50));
        assert!(s.insert(1, 10));
        assert!(s.insert(3, 30));
        assert!(!s.insert(3, 31), "duplicate key rejected");
        assert_eq!(s.count(), 3);
        assert_eq!(s.get(&1), Some(10));
        assert_eq!(s.get(&3), Some(30));
        assert_eq!(s.get(&5), Some(50));
        assert_eq!(s.get(&4), None);
    }

    #[test]
    fn remove_by_key() {
        let s: OrderedSet<u64, String> = OrderedSet::new();
        s.insert(2, "two".into());
        s.insert(1, "one".into());
        assert_eq!(s.remove(&2).as_deref(), Some("two"));
        assert_eq!(s.remove(&2), None);
        assert!(s.contains(&1));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn reinsert_after_remove() {
        let s: OrderedSet<u64, u64> = OrderedSet::new();
        for round in 0..10 {
            assert!(s.insert(7, round));
            assert_eq!(s.remove(&7), Some(round));
        }
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn concurrent_disjoint_key_ranges() {
        let s: OrderedSet<u64, u64> = OrderedSet::new();
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = &s;
                sc.spawn(move || {
                    for k in 0..300 {
                        let key = t * 1_000 + k;
                        assert!(s.insert(key, key * 2));
                    }
                    for k in 0..300 {
                        let key = t * 1_000 + k;
                        assert_eq!(s.remove(&key), Some(key * 2));
                    }
                });
            }
        });
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn concurrent_same_key_contention() {
        // Many threads fight over one key: at most one insert wins per
        // occupancy period; inserts+removes must balance.
        use std::sync::atomic::{AtomicI64, Ordering};
        let s: OrderedSet<u64, u64> = OrderedSet::new();
        let balance = AtomicI64::new(0);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let s = &s;
                let balance = &balance;
                sc.spawn(move || {
                    for i in 0..2_000 {
                        if i % 2 == 0 {
                            if s.insert(42, i) {
                                balance.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if s.remove(&42).is_some() {
                            balance.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let residual = balance.load(Ordering::Relaxed);
        assert_eq!(
            residual,
            s.count() as i64,
            "insert/remove balance equals final occupancy"
        );
        assert!(residual == 0 || residual == 1);
    }

    #[test]
    fn drop_reclaims_values() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let before = DROPS.load(Ordering::SeqCst);
        {
            let s: OrderedSet<u64, D> = OrderedSet::new();
            for k in 0..30 {
                s.insert(k, D);
            }
        }
        crate::test_util::flush_until(|| DROPS.load(Ordering::SeqCst) - before == 30);
        assert_eq!(DROPS.load(Ordering::SeqCst) - before, 30);
    }
}
