//! The lock-free queue of Michael & Scott, made move-ready exactly as the
//! paper's §5.1 / Algorithm 5 prescribes:
//!
//! * the linearization-point CASes (lines Q14 and Q34) are `scas` calls —
//!   here, calls into the linearization context;
//! * the enqueue can abort (lines Q15–Q17), freeing its node;
//! * every read of `head`, `tail` or a node's `next` goes through the DCAS
//!   `read` operation (lines Q6–Q10, Q23–Q28) — interior hops through the
//!   fence-free `read_acquire` variant;
//! * reclamation protection is epoch-batched (PR 3): one `pin_op` per
//!   operation instead of per-node hazard publication; the composition
//!   engine promotes each captured linearization entry into an `ENTRY*`
//!   hazard slot at capture time, which also preserves the paper's
//!   requirement that a move's insert cannot overwrite its remove's
//!   protections (the entries own disjoint slots by construction).
//!
//! The queue is a verified move-candidate (paper Lemma 8): the linearization
//! points of successful enqueue/dequeue are successful CASes on pointer
//! words executed by the invoking thread, and the dequeued value is read at
//! line Q33, before the linearization point.

use crate::node::{
    alloc_node, alloc_pair_header, clone_val, free_unpublished_node, retire_node,
    retire_pair_header, try_alloc_node, try_alloc_pair_header, Node, PairHeader,
};
use lfc_core::{
    InsertCtx, InsertOutcome, LinPoint, MoveSource, MoveTarget, NormalCas, RemoveCtx,
    RemoveOutcome, ScasResult,
};
use lfc_hazard::{pin, pin_op};
use lfc_runtime::{Backoff, BackoffCfg};
use std::ptr::NonNull;

/// A move-ready Michael–Scott lock-free FIFO queue.
///
/// `enqueue`/`dequeue` are the object's ordinary operations; the queue also
/// implements [`MoveSource`] and [`MoveTarget`], so elements can be moved
/// atomically between it and any other move-ready object with
/// [`lfc_core::move_one`].
pub struct MsQueue<T: Clone + Send + Sync + 'static> {
    header: NonNull<PairHeader>,
    backoff: BackoffCfg,
    _marker: std::marker::PhantomData<T>,
}

// Safety: the queue is a handle to hazard-managed shared state; values are
// cloned out through shared references (hence `T: Sync`) and sent between
// threads (hence `T: Send`).
unsafe impl<T: Clone + Send + Sync + 'static> Send for MsQueue<T> {}
unsafe impl<T: Clone + Send + Sync + 'static> Sync for MsQueue<T> {}

impl<T: Clone + Send + Sync + 'static> MsQueue<T> {
    /// Empty queue (no backoff on contention, as in the paper's primary runs).
    pub fn new() -> Self {
        Self::with_backoff(BackoffCfg::NONE)
    }

    /// Empty queue whose operations run `cfg` backoff on failed CASes.
    pub fn with_backoff(cfg: BackoffCfg) -> Self {
        let dummy = alloc_node::<T>(None);
        MsQueue {
            header: alloc_pair_header(dummy as usize, dummy as usize),
            backoff: cfg,
            _marker: std::marker::PhantomData,
        }
    }

    /// Fallible [`MsQueue::new`]: surfaces dummy-node or header allocation
    /// failure (genuine exhaustion, or the `structures.node` /
    /// `structures.header` fault sites) as `Err` instead of panicking.
    pub fn try_new() -> Result<Self, lfc_alloc::AllocError> {
        let dummy = match try_alloc_node::<T>(None) {
            Ok(n) => n,
            Err((_, e)) => return Err(e),
        };
        match try_alloc_pair_header(dummy as usize, dummy as usize) {
            Ok(header) => Ok(MsQueue {
                header,
                backoff: BackoffCfg::NONE,
                _marker: std::marker::PhantomData,
            }),
            Err(e) => {
                // Safety: the dummy was never published.
                unsafe { free_unpublished_node(dummy) };
                Err(e)
            }
        }
    }

    #[inline]
    fn h(&self) -> &PairHeader {
        // Safety: the header lives until Drop retires it.
        unsafe { self.header.as_ref() }
    }

    #[inline]
    fn head(&self) -> &lfc_dcas::DAtomic {
        &self.h().first
    }

    #[inline]
    fn tail(&self) -> &lfc_dcas::DAtomic {
        &self.h().second
    }

    #[inline]
    fn header_addr(&self) -> usize {
        self.header.as_ptr() as usize
    }

    /// Append `v` at the tail. Lock-free; never fails on an unbounded queue.
    pub fn enqueue(&self, v: T) {
        let r = self.insert_with(v, &mut NormalCas);
        debug_assert_eq!(r, InsertOutcome::Inserted);
    }

    /// Fallible [`MsQueue::enqueue`]: a node-allocation failure (genuine
    /// exhaustion, or the `structures.node` fault site) surfaces as `Err`
    /// with the element handed back and the queue untouched.
    pub fn try_enqueue(&self, v: T) -> Result<(), (T, lfc_alloc::AllocError)> {
        let node = match try_alloc_node(Some(v)) {
            Ok(n) => n,
            Err((v, e)) => return Err((v.expect("value handed back on failure"), e)),
        };
        let r = self.insert_node(node, &mut NormalCas);
        debug_assert_eq!(r, InsertOutcome::Inserted);
        Ok(())
    }

    /// Remove and return the element at the head, if any. Lock-free.
    pub fn dequeue(&self) -> Option<T> {
        match self.remove_with(&mut NormalCas) {
            RemoveOutcome::Removed(v) => Some(v),
            RemoveOutcome::Empty => None,
            RemoveOutcome::Aborted => unreachable!("NormalCas never aborts"),
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        let g = pin_op();
        let lhead = self.head().read(&g);
        let node = lhead as *mut Node<T>;
        // Safety: lhead was reachable through `head` inside this epoch.
        let lnext = unsafe { &(*node).next }.read_acquire(&g);
        lnext == 0
    }

    /// Racy O(n) node count; only meaningful on a quiescent queue (tests).
    pub fn count(&self) -> usize {
        let g = pin_op();
        let mut n = 0;
        let mut cur = self.head().read(&g);
        loop {
            let node = cur as *mut Node<T>;
            // Safety: only called on quiescent queues per the docs.
            let next = unsafe { &(*node).next }.read_acquire(&g);
            if next == 0 {
                return n;
            }
            n += 1;
            cur = next;
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Default for MsQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + Send + Sync + 'static> MsQueue<T> {
    /// Algorithm 5, `enqueue` (lines Q5–Q20), on an already-allocated node:
    /// the shared tail of the infallible ([`MoveTarget::insert_with`]) and
    /// fallible ([`MsQueue::try_enqueue`]) insert paths.
    fn insert_node<C: InsertCtx>(&self, node: *mut Node<T>, ctx: &mut C) -> InsertOutcome {
        let mut g = pin_op();
        let mut bo = Backoff::new(self.backoff);
        loop {
            // Ejection check (PR 6): nothing from a prior iteration is
            // live here; `node` is unpublished and survives the re-entry.
            g.repin_if_ejected();
            let ltail = self.tail().read(&g); // Q6
            let tail_node = ltail as *mut Node<T>;
            // Safety: ltail was reachable through `tail` inside this epoch,
            // so the allocation outlives the operation even if the node is
            // dequeued concurrently.
            let next_word = unsafe { &(*tail_node).next };
            let lnext = next_word.read_acquire(&g); // Q8
            if lnext != 0 {
                // Q11–Q13: tail lags; help it forward.
                self.tail().cas_word(ltail, lnext);
                continue;
            }
            // Q14: the linearization point. A `next` word is written once
            // (0 → successor) in a node's lifetime and nodes cannot be
            // recycled inside our epoch, so success proves `ltail` was
            // still the last node — no Q10 re-validation needed.
            match ctx.scas(LinPoint {
                word: next_word,
                old: 0,
                new: node as usize,
                hp: ltail, // allocation containing the CAS word
            }) {
                ScasResult::Abort => {
                    // Q15–Q17.
                    // Safety: never published.
                    unsafe { free_unpublished_node(node) };
                    return InsertOutcome::Rejected;
                }
                ScasResult::Success => {
                    // Q18–Q20: cleanup phase — swing the tail.
                    self.tail().cas_word(ltail, node as usize);
                    return InsertOutcome::Inserted;
                }
                ScasResult::Fail => bo.fail(),
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> MoveTarget<T> for MsQueue<T> {
    /// Algorithm 5, `enqueue` (lines Q1–Q20). Fence-free since PR 3: the
    /// operation epoch replaces the Q7/Q9 hazard publications and the
    /// Q10 validation re-read — a stale `ltail` simply fails the Q14 CAS.
    fn insert_with<C: InsertCtx>(&self, elem: T, ctx: &mut C) -> InsertOutcome {
        let node = alloc_node(Some(elem)); // Q2–Q4 (next = 0)
        self.insert_node(node, ctx)
    }
}

impl<T: Clone + Send + Sync + 'static> MoveSource<T> for MsQueue<T> {
    /// Algorithm 5, `dequeue` (lines Q21–Q36). Fence-free since PR 3: the
    /// operation epoch replaces the Q24/Q27 hazard publications and the
    /// Q28 validation re-read.
    fn remove_with<C: RemoveCtx<T>>(&self, ctx: &mut C) -> RemoveOutcome<T> {
        let mut g = pin_op();
        let mut bo = Backoff::new(self.backoff);
        loop {
            // Ejection check (PR 6): see `insert_with`.
            g.repin_if_ejected();
            let lhead = self.head().read(&g); // Q23
            let ltail = self.tail().read(&g); // Q25
            let head_node = lhead as *mut Node<T>;
            // Safety: lhead was reachable through `head` inside this epoch.
            let lnext = unsafe { &(*head_node).next }.read_acquire(&g); // Q26
            if lnext == 0 {
                // Q29: empty. A `next` word is written once (0 → successor)
                // and `head` only ever swings to a non-null successor, so
                // reading 0 here proves `lhead` was still the head (and
                // last node) at the Q26 read — the linearization point of
                // the empty return.
                return RemoveOutcome::Empty;
            }
            if lhead == ltail {
                // Q30–Q32: help the lagging tail.
                self.tail().cas_word(ltail, lnext);
                continue;
            }
            // Q33: the element is accessible before the linearization point.
            // Safety: lnext's node is retired no earlier than `head` swings
            // past it, which requires the (epoch-pinned) unlink of lhead
            // first; values are immutable.
            let val = unsafe { clone_val(lnext as *mut Node<T>) };
            // Q34: the linearization point.
            let r = ctx.scas(
                LinPoint {
                    word: self.head(),
                    old: lhead,
                    new: lnext,
                    hp: self.header_addr(), // head lives in the header block
                },
                &val,
            );
            match r {
                ScasResult::Success => {
                    // Q35–Q36: cleanup phase — retire the old dummy.
                    // Safety: lhead is now unlinked; traversals entering
                    // after this retire cannot reach it, and stale hazard
                    // readers fail validation.
                    unsafe { retire_node(head_node) };
                    return RemoveOutcome::Removed(val);
                }
                ScasResult::Fail => bo.fail(),
                ScasResult::Abort => {
                    // Only reachable through a move whose insert was
                    // rejected; the queue itself is untouched.
                    return RemoveOutcome::Aborted;
                }
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for MsQueue<T> {
    fn drop(&mut self) {
        let g = pin();
        // `read` resolves any stale descriptor leftovers before we walk.
        let mut cur = self.head().read(&g);
        while cur != 0 {
            let node = cur as *mut Node<T>;
            // Safety: exclusive access (&mut self); helpers of long-decided
            // moves may still hold hazards on these nodes, which is exactly
            // why we retire instead of freeing.
            let next = unsafe { &(*node).next }.read(&g);
            unsafe { retire_node(node) };
            cur = next;
        }
        // Safety: unique teardown.
        unsafe { retire_pair_header(self.header) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q: MsQueue<u64> = MsQueue::new();
        assert!(q.is_empty());
        for i in 0..100 {
            q.enqueue(i);
        }
        assert!(!q.is_empty());
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_enq_deq() {
        let q: MsQueue<u64> = MsQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.dequeue(), Some(1));
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn count_matches() {
        let q: MsQueue<u64> = MsQueue::new();
        for i in 0..17 {
            q.enqueue(i);
        }
        assert_eq!(q.count(), 17);
        q.dequeue();
        assert_eq!(q.count(), 16);
    }

    #[test]
    fn drop_reclaims_values() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone)]
        struct D(#[allow(dead_code)] u64);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let before = DROPS.load(Ordering::SeqCst);
        {
            let q: MsQueue<D> = MsQueue::new();
            for i in 0..50 {
                q.enqueue(D(i));
            }
            for _ in 0..10 {
                drop(q.dequeue()); // each dequeue drops one clone
            }
        }
        // 50 originals + 10 clones.
        crate::test_util::flush_until(|| DROPS.load(Ordering::SeqCst) - before == 60);
        assert_eq!(DROPS.load(Ordering::SeqCst) - before, 60);
    }

    #[test]
    fn mpmc_all_values_exactly_once() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        const PRODUCERS: u64 = 3;
        const PER: u64 = 5_000;
        let q: MsQueue<u64> = MsQueue::new();
        let seen = Mutex::new(HashSet::new());
        let taken = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER {
                        q.enqueue(p * PER + i);
                    }
                });
            }
            let taken = &taken;
            for _ in 0..3 {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    let mut got = Vec::new();
                    while taken.load(std::sync::atomic::Ordering::Relaxed) < PRODUCERS * PER {
                        if let Some(v) = q.dequeue() {
                            got.push(v);
                            taken.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    let mut s = seen.lock().unwrap();
                    for v in got {
                        assert!(s.insert(v), "duplicate {v}");
                    }
                });
            }
        });
        let total = seen.lock().unwrap().len() as u64 + q.count() as u64;
        assert_eq!(total, PRODUCERS * PER, "no values lost");
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // FIFO per producer: consumer must see each producer's values in order.
        let q: MsQueue<(u8, u64)> = MsQueue::new();
        std::thread::scope(|s| {
            for p in 0..2u8 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        q.enqueue((p, i));
                    }
                });
            }
            let q = &q;
            s.spawn(move || {
                let mut last = [0i64; 2];
                let mut got = 0;
                while got < 20_000 {
                    if let Some((p, i)) = q.dequeue() {
                        assert!(
                            (i as i64) > last[p as usize] - 1 && last[p as usize] <= i as i64,
                            "producer {p} reordered: {i} after {}",
                            last[p as usize]
                        );
                        last[p as usize] = i as i64 + 1;
                        got += 1;
                    }
                }
            });
        });
    }
}
