//! A lock-free hash map with move-ready keyed operations — the "hash-map"
//! half of the paper's §1.1 motivating scenario.
//!
//! A fixed array of [`OrderedSet`] buckets: each operation hashes the key
//! and delegates to one bucket, so the map inherits the list's
//! move-candidate properties verbatim (its linearization points *are* the
//! bucket list's). Elements can therefore be moved atomically between a map
//! and a list — or between two maps — with [`lfc_core::move_keyed`].

use crate::ordered_list::OrderedSet;
use lfc_core::{
    InsertCtx, InsertOutcome, KeyedMoveSource, KeyedMoveTarget, NormalCas, RemoveCtx, RemoveOutcome,
};
use std::hash::{Hash, Hasher};

/// A move-ready lock-free hash map (fixed bucket count, unique keys).
pub struct LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    buckets: Vec<OrderedSet<K, T>>,
}

impl<K, T> LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    /// Map with a default bucket count.
    pub fn new() -> Self {
        Self::with_buckets(64)
    }

    /// Map with `n` buckets (rounded up to at least 1).
    pub fn with_buckets(n: usize) -> Self {
        LfHashMap {
            buckets: (0..n.max(1)).map(|_| OrderedSet::new()).collect(),
        }
    }

    fn bucket(&self, key: &K) -> &OrderedSet<K, T> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.buckets[(h.finish() as usize) % self.buckets.len()]
    }

    /// Insert `val` under `key`; false if the key is present.
    pub fn insert(&self, key: K, val: T) -> bool {
        self.insert_key_with(key, val, &mut NormalCas) == InsertOutcome::Inserted
    }

    /// Remove the element under `key`.
    pub fn remove(&self, key: &K) -> Option<T> {
        match self.remove_key_with(key, &mut NormalCas) {
            RemoveOutcome::Removed(v) => Some(v),
            RemoveOutcome::Empty => None,
            RemoveOutcome::Aborted => unreachable!("NormalCas never aborts"),
        }
    }

    /// Clone the element under `key`.
    pub fn get(&self, key: &K) -> Option<T> {
        self.bucket(key).get(key)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.bucket(key).contains(key)
    }

    /// Racy O(n) size (quiescent use only).
    pub fn count(&self) -> usize {
        self.buckets.iter().map(|b| b.count()).sum()
    }
}

impl<K, T> Default for LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, T> KeyedMoveTarget<K, T> for LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn insert_key_with<C: InsertCtx>(&self, key: K, elem: T, ctx: &mut C) -> InsertOutcome {
        self.bucket(&key).insert_key_with(key, elem, ctx)
    }
}

impl<K, T> KeyedMoveSource<K, T> for LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn remove_key_with<C: RemoveCtx<T>>(&self, key: &K, ctx: &mut C) -> RemoveOutcome<T> {
        self.bucket(key).remove_key_with(key, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let m: LfHashMap<String, u64> = LfHashMap::new();
        assert!(m.insert("a".into(), 1));
        assert!(m.insert("b".into(), 2));
        assert!(!m.insert("a".into(), 3), "duplicate");
        assert_eq!(m.get(&"a".into()), Some(1));
        assert_eq!(m.remove(&"a".into()), Some(1));
        assert_eq!(m.get(&"a".into()), None);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn many_keys_across_buckets() {
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(8);
        for k in 0..500 {
            assert!(m.insert(k, k * k));
        }
        assert_eq!(m.count(), 500);
        for k in 0..500 {
            assert_eq!(m.get(&k), Some(k * k));
        }
        for k in (0..500).step_by(2) {
            assert_eq!(m.remove(&k), Some(k * k));
        }
        assert_eq!(m.count(), 250);
    }

    #[test]
    fn concurrent_mixed_ops() {
        use std::sync::atomic::{AtomicI64, Ordering};
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(16);
        let balance = AtomicI64::new(0);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let m = &m;
                let balance = &balance;
                sc.spawn(move || {
                    for i in 0..1_500 {
                        let k = (t * 31 + i * 7) % 64;
                        if i % 2 == 0 {
                            if m.insert(k, i) {
                                balance.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if m.remove(&k).is_some() {
                            balance.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(balance.load(Ordering::Relaxed), m.count() as i64);
    }
}
