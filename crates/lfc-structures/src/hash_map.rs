//! A lock-free hash map with move-ready keyed operations — the "hash-map"
//! half of the paper's §1.1 motivating scenario.
//!
//! A fixed array of [`OrderedSet`] buckets: each operation hashes the key
//! and delegates to one bucket, so the map inherits the list's
//! move-candidate properties verbatim (its linearization points *are* the
//! bucket list's). Elements can therefore be moved atomically between a map
//! and a list — or between two maps — with [`lfc_core::move_keyed`].
//!
//! Bucket selection is an FxHash-style mixer over a power-of-two bucket
//! count (PR 3): one rotate-xor-multiply per key word plus a mask, instead
//! of a keyed SipHash and a `%` division per operation.

use crate::ordered_list::OrderedSet;
use lfc_core::{
    InsertCtx, InsertOutcome, KeyedMoveSource, KeyedMoveTarget, NormalCas, RemoveCtx, RemoveOutcome,
};
use std::hash::{Hash, Hasher};

/// An FxHash-style word-at-a-time mixer (rustc-hash's algorithm, std-only
/// re-implementation). `SipHash` (`DefaultHasher`) pays per-byte rounds and
/// keyed initialization on **every** map operation; bucket selection needs
/// dispersion, not DoS resistance, and this mixer is a single
/// rotate-xor-multiply per word.
struct FxHasher {
    hash: usize,
}

/// 2^64 / φ, the multiplicative-hashing constant rustc-hash uses.
const FX_SEED: usize = 0x51_7c_c1_b7_27_22_0a_95_u64 as usize;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: usize) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(std::mem::size_of::<usize>());
        for chunk in &mut chunks {
            self.add_to_hash(usize::from_ne_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            // Seed the fold with the remainder length so partial chunks
            // that differ only by leading zero bytes (e.g. "a" vs "\0a")
            // hash differently — a plain byte fold collapses them into a
            // deterministic collision family. len < word size, so the
            // shifted fold cannot overflow.
            let mut tail = rem.len();
            for &b in rem {
                tail = (tail << 8) | b as usize;
            }
            self.add_to_hash(tail);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as usize);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as usize);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as usize);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n as usize);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash as u64
    }
}

/// A move-ready lock-free hash map (fixed bucket count, unique keys).
///
/// # Hashing assumes non-adversarial keys
///
/// Bucket selection uses an unkeyed FxHash-style mixer (PR 3), not the
/// randomly keyed SipHash of `std`'s `HashMap`. It disperses well and is
/// far cheaper per operation, but it is **not HashDoS-resistant**: the
/// hash of every key is predictable, so an attacker who controls the keys
/// can craft arbitrarily many that land in one bucket, degrading every
/// operation on them to an O(n) traversal of a single bucket's list —
/// and focusing all contention on that bucket. Use this map with trusted
/// or internally generated keys; do not feed it attacker-chosen keys
/// (e.g. from network input) without an upstream defense.
pub struct LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    buckets: Vec<OrderedSet<K, T>>,
    /// `buckets.len() - 1`; the length is a power of two, so masking
    /// replaces the `%` division in bucket selection.
    mask: usize,
}

impl<K, T> LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    /// Map with a default bucket count.
    pub fn new() -> Self {
        Self::with_buckets(64)
    }

    /// Map with at least `n` buckets: `n` is rounded up to the next power
    /// of two (and to at least 1) so bucket selection is a mask, not a
    /// division.
    pub fn with_buckets(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        LfHashMap {
            buckets: (0..n).map(|_| OrderedSet::new()).collect(),
            mask: n - 1,
        }
    }

    fn bucket(&self, key: &K) -> &OrderedSet<K, T> {
        let mut h = FxHasher { hash: 0 };
        key.hash(&mut h);
        // Fold the high bits down: Fx's dispersion is strongest in the
        // upper bits (final multiply), while the mask keeps only low bits.
        let folded = (h.finish() >> 32) as usize ^ h.finish() as usize;
        &self.buckets[folded & self.mask]
    }

    /// Insert `val` under `key`; false if the key is present.
    pub fn insert(&self, key: K, val: T) -> bool {
        self.insert_key_with(key, val, &mut NormalCas) == InsertOutcome::Inserted
    }

    /// Remove the element under `key`.
    pub fn remove(&self, key: &K) -> Option<T> {
        match self.remove_key_with(key, &mut NormalCas) {
            RemoveOutcome::Removed(v) => Some(v),
            RemoveOutcome::Empty => None,
            RemoveOutcome::Aborted => unreachable!("NormalCas never aborts"),
        }
    }

    /// Clone the element under `key`.
    pub fn get(&self, key: &K) -> Option<T> {
        self.bucket(key).get(key)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.bucket(key).contains(key)
    }

    /// Racy O(n) size (quiescent use only).
    pub fn count(&self) -> usize {
        self.buckets.iter().map(|b| b.count()).sum()
    }
}

impl<K, T> Default for LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, T> KeyedMoveTarget<K, T> for LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn insert_key_with<C: InsertCtx>(&self, key: K, elem: T, ctx: &mut C) -> InsertOutcome {
        self.bucket(&key).insert_key_with(key, elem, ctx)
    }
}

impl<K, T> KeyedMoveSource<K, T> for LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn remove_key_with<C: RemoveCtx<T>>(&self, key: &K, ctx: &mut C) -> RemoveOutcome<T> {
        self.bucket(key).remove_key_with(key, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_zero_bytes_do_not_collide() {
        // A plain byte fold of the final partial chunk would hash "a",
        // "\0a", "\0\0a", ... identically (leading zeros vanish), pinning
        // the whole family to one bucket; the length-seeded fold keeps
        // them distinct.
        let hash = |s: &str| {
            let mut h = FxHasher { hash: 0 };
            s.hash(&mut h);
            h.finish()
        };
        let family: Vec<u64> = ["a", "\0a", "\0\0a", "\0\0\0a"]
            .iter()
            .map(|s| hash(s))
            .collect();
        for i in 0..family.len() {
            for j in i + 1..family.len() {
                assert_ne!(family[i], family[j], "keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn insert_get_remove() {
        let m: LfHashMap<String, u64> = LfHashMap::new();
        assert!(m.insert("a".into(), 1));
        assert!(m.insert("b".into(), 2));
        assert!(!m.insert("a".into(), 3), "duplicate");
        assert_eq!(m.get(&"a".into()), Some(1));
        assert_eq!(m.remove(&"a".into()), Some(1));
        assert_eq!(m.get(&"a".into()), None);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn many_keys_across_buckets() {
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(8);
        for k in 0..500 {
            assert!(m.insert(k, k * k));
        }
        assert_eq!(m.count(), 500);
        for k in 0..500 {
            assert_eq!(m.get(&k), Some(k * k));
        }
        for k in (0..500).step_by(2) {
            assert_eq!(m.remove(&k), Some(k * k));
        }
        assert_eq!(m.count(), 250);
    }

    #[test]
    fn with_buckets_rounds_up_to_power_of_two() {
        for (req, want) in [
            (0, 1),
            (1, 1),
            (2, 2),
            (3, 4),
            (48, 64),
            (64, 64),
            (65, 128),
        ] {
            let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(req);
            assert_eq!(m.buckets.len(), want, "with_buckets({req})");
            assert_eq!(m.mask, want - 1);
        }
    }

    #[test]
    fn fx_hash_disperses_sequential_keys() {
        // Sequential u64 keys must not collapse onto a few buckets (the
        // failure mode of a truncating or identity hash).
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(64);
        let mut used = std::collections::HashSet::new();
        for k in 0..512u64 {
            used.insert(m.bucket(&k) as *const _ as usize);
        }
        assert!(used.len() >= 48, "only {} of 64 buckets used", used.len());

        // String keys exercise the byte-chunk `write` path.
        let s: LfHashMap<String, u64> = LfHashMap::with_buckets(64);
        let mut used = std::collections::HashSet::new();
        for k in 0..512u64 {
            used.insert(s.bucket(&format!("key-{k}")) as *const _ as usize);
        }
        assert!(used.len() >= 48, "only {} of 64 buckets used", used.len());
    }

    #[test]
    fn concurrent_mixed_ops() {
        use std::sync::atomic::{AtomicI64, Ordering};
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(16);
        let balance = AtomicI64::new(0);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let m = &m;
                let balance = &balance;
                sc.spawn(move || {
                    for i in 0..1_500 {
                        let k = (t * 31 + i * 7) % 64;
                        if i % 2 == 0 {
                            if m.insert(k, i) {
                                balance.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if m.remove(&k).is_some() {
                            balance.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(balance.load(Ordering::Relaxed), m.count() as i64);
    }
}
