//! A lock-free hash map with **incremental lock-free resize** via recursive
//! split-ordering (Shalev & Shavit, *Split-Ordered Lists: Lock-Free
//! Extensible Hash Tables*) — the "hash-map" half of the paper's §1.1
//! motivating scenario, grown to serve unbounded key populations at flat
//! latency (PR 5; the fixed-bucket table degraded linearly in the load
//! factor).
//!
//! # Recursive split-ordering
//!
//! Every element lives in **one** epoch-protected ordered list (the same
//! two-phase Harris/Michael discipline as [`crate::OrderedSet`]), sorted by
//! *split-order key*: the bit-reversed hash, with the least-significant bit
//! forced to 1 for data nodes. Buckets are not containers but shortcut
//! pointers into that list: bucket `b`'s pointer names a *dummy node* whose
//! split-order key is the bit-reversal of `b` itself (LSB 0 — dummies and
//! data nodes can never collide on a split-order key). Because
//! `hash & (size-1) == b` pins the reversed hash's **top** bits to
//! `reverse(b)`'s, every key of bucket `b` sorts at-or-after `b`'s dummy and
//! before the next dummy — so an operation jumps to its bucket's dummy and
//! walks a bounded chain instead of the whole list.
//!
//! Doubling the table is **one CAS on the bucket-count word** and moves no
//! node: bucket `b` splits into `b` and `b + size` simply because keys whose
//! next hash bit is 1 already sort after `reverse(b + size)` — the position
//! where the new bucket's dummy gets threaded. Dummies are created lazily
//! (*per-operation amortized splitting*): the first operation to touch a
//! bucket whose dummy is missing initializes it, recursing to the bucket's
//! *parent* (the index with the top bit cleared) — so no thread ever stalls
//! on a stop-the-world rehash and latency stays flat through growth.
//!
//! The bucket directory itself is a segmented pointer table: a fixed array
//! of [`DIR_SLOTS`] segment pointers where segment *k* ≥ 1 covers buckets
//! `[init·2^(k-1), init·2^k)` (segment 0 covers `[0, init)`), allocated
//! lazily and published with a single CAS, so growth never copies or moves
//! directory state either.
//!
//! # Composition under resize
//!
//! The map inherits the list's move-candidate properties verbatim: keyed
//! insert/remove linearize at one CAS on a `next` word with the element
//! available beforehand, so [`lfc_core::move_keyed`] (and every composed
//! capture) keeps working **mid-resize** — a captured linearization point
//! is CAS-validated, and a bucket split that threads a dummy next to it
//! merely fails that CAS and re-runs the owning stage's init phase.
//!
//! **Invariant: dummy nodes are never linearization points.** A remove only
//! marks a node whose key matched (dummies carry no key), and an insert's
//! `new` value is always a freshly allocated data node — a dummy is never
//! the *subject* of a capture. A dummy **may** host the *predecessor word*
//! of a capture (`LinPoint::hp` then pins the dummy's allocation), which is
//! sound exactly like any predecessor pin: the allocation is epoch-covered
//! at capture time and promoted into an `ENTRY*` hazard slot by the engine.
//! Dummies and directory segments are unlinked only at `Drop` and flow
//! through the PR 3 unified epoch+hazard domain like every other block.
//!
//! Bucket selection hashes with an FxHash-style mixer over a power-of-two
//! bucket count (PR 3): one rotate-xor-multiply per key word plus a mask.

use crate::sync::{AtomicUsize, Ordering};
use crate::traverse::{self, is_deleted, without_mark, ChainNode, NoRepin, Position, DEL_MARK};
use lfc_core::{
    InsertCtx, InsertOutcome, KeyedMoveSource, KeyedMoveTarget, LinPoint, NormalCas, RemoveCtx,
    RemoveOutcome, ScasResult,
};
use lfc_dcas::DAtomic;
use lfc_hazard::{pin, pin_op, Guard};
use lfc_runtime::CachePadded;
use std::alloc::Layout;
use std::cell::UnsafeCell;
use std::hash::{Hash, Hasher};

/// An FxHash-style word-at-a-time mixer (rustc-hash's algorithm, std-only
/// re-implementation). `SipHash` (`DefaultHasher`) pays per-byte rounds and
/// keyed initialization on **every** map operation; bucket selection needs
/// dispersion, not DoS resistance, and this mixer is a single
/// rotate-xor-multiply per word.
struct FxHasher {
    hash: usize,
}

/// 2^64 / φ, the multiplicative-hashing constant rustc-hash uses.
const FX_SEED: usize = 0x51_7c_c1_b7_27_22_0a_95_u64 as usize;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: usize) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(std::mem::size_of::<usize>());
        for chunk in &mut chunks {
            self.add_to_hash(usize::from_ne_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            // Seed the fold with the remainder length so partial chunks
            // that differ only by leading zero bytes (e.g. "a" vs "\0a")
            // hash differently — a plain byte fold collapses them into a
            // deterministic collision family. len < word size, so the
            // shifted fold cannot overflow.
            let mut tail = rem.len();
            for &b in rem {
                tail = (tail << 8) | b as usize;
            }
            self.add_to_hash(tail);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as usize);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as usize);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as usize);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n as usize);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash as u64
    }
}

/// The bit forced on before reversal so every data key's split-order key
/// has LSB 1 (dummies reverse a bucket index `< 2^(BITS-1)`, so theirs is
/// always 0). One hash bit is sacrificed; full-hash collisions are broken
/// by the `Ord` tie-break on the key itself.
const DATA_TAG: usize = 1 << (usize::BITS - 1);

/// Split-order key of a data node with hash `h`.
#[inline]
fn so_data_key(h: usize) -> usize {
    (h | DATA_TAG).reverse_bits()
}

/// Split-order key of bucket `b`'s dummy node.
#[inline]
fn so_dummy_key(b: usize) -> usize {
    b.reverse_bits()
}

/// Parent of bucket `b > 0` in the recursive split: `b` with its highest
/// set bit cleared. Bucket 0 is the root (the global list head).
#[inline]
fn parent_bucket(b: usize) -> usize {
    debug_assert!(b > 0);
    b ^ (1 << b.ilog2())
}

/// Top-level directory slots. Segment *k* ≥ 1 covers buckets
/// `[init·2^(k-1), init·2^k)`; 32 slots cap the table at `init·2^31`
/// buckets — growth simply stops at the cap (chains then grow, correctness
/// is unaffected).
const DIR_SLOTS: usize = 32;

/// Double the bucket count when `items > size << GROW_SHIFT` (threshold
/// load factor 2): steady-state chains hold ≤ ~2 data nodes plus the
/// bucket dummy regardless of how many keys ever arrive.
const GROW_SHIFT: usize = 1;

/// A node of the split-ordered list: a bucket dummy (`key == None`) or a
/// data node (`key == Some`).
#[repr(C)]
struct SNode<K, T> {
    /// Successor word; may transiently hold a DCAS/CASN descriptor; bit 2
    /// of a raw value is the logical-deletion mark (never set on dummies).
    next: DAtomic,
    /// Split-order key (bit-reversed hash / bucket index). Immutable.
    so_key: usize,
    /// `Some` for data nodes, `None` for bucket dummies. Immutable.
    key: Option<K>,
    /// `Some` for data nodes; written once before publication.
    val: UnsafeCell<Option<T>>,
    /// Birth era (PR 6): written before publication, read at retire.
    birth: usize,
}

fn snode_layout<K, T>() -> Layout {
    Layout::new::<SNode<K, T>>()
}

fn alloc_snode<K, T>(so_key: usize, key: Option<K>, val: Option<T>) -> *mut SNode<K, T> {
    let p = lfc_alloc::alloc_block(snode_layout::<K, T>());
    unsafe { init_snode(p, so_key, key, val) }
}

/// Fallible [`alloc_snode`] (`structures.node` fault site): hands key and
/// value back on failure so the caller keeps ownership.
#[allow(clippy::type_complexity)]
fn try_alloc_snode<K, T>(
    so_key: usize,
    key: Option<K>,
    val: Option<T>,
) -> Result<*mut SNode<K, T>, (Option<K>, Option<T>, lfc_alloc::AllocError)> {
    if lfc_runtime::fault::check("structures.node") {
        return Err((key, val, lfc_alloc::AllocError));
    }
    match lfc_alloc::try_alloc_block(snode_layout::<K, T>()) {
        Ok(p) => Ok(unsafe { init_snode(p, so_key, key, val) }),
        Err(e) => Err((key, val, e)),
    }
}

/// # Safety
///
/// `p` must be a fresh block of `snode_layout::<K, T>()`.
unsafe fn init_snode<K, T>(
    p: std::ptr::NonNull<u8>,
    so_key: usize,
    key: Option<K>,
    val: Option<T>,
) -> *mut SNode<K, T> {
    let p = p.cast::<SNode<K, T>>();
    // Safety: fresh block of the right layout.
    unsafe {
        p.as_ptr().write(SNode {
            next: DAtomic::new(0),
            so_key,
            key,
            val: UnsafeCell::new(val),
            birth: lfc_hazard::birth_era(),
        });
    }
    debug_assert_eq!(p.as_ptr() as usize & 0b111, 0);
    p.as_ptr()
}

unsafe fn reclaim_snode<K, T>(p: *mut u8) {
    // Safety: retire contract.
    unsafe {
        std::ptr::drop_in_place(p as *mut SNode<K, T>);
        lfc_alloc::free_block(p, snode_layout::<K, T>());
    }
}

/// Zombie-tier fallback: pool the block without dropping key/value (see
/// `divert_node` in `node.rs`).
unsafe fn divert_snode<K, T>(p: *mut u8) {
    // Safety: retire contract; contents intentionally not dropped.
    unsafe { lfc_alloc::free_block(p, snode_layout::<K, T>()) };
}

unsafe fn retire_snode<K, T>(p: *mut SNode<K, T>) {
    // Safety: unlinked but live; single retire call reads the plain field.
    let birth = unsafe { (*p).birth };
    // Safety: forwarded.
    unsafe {
        lfc_hazard::retire_with(
            p as *mut u8,
            reclaim_snode::<K, T>,
            lfc_hazard::RetireInfo {
                bytes: std::mem::size_of::<SNode<K, T>>(),
                birth,
                divert: Some(divert_snode::<K, T>),
            },
        )
    };
}

unsafe fn free_unpublished_snode<K, T>(p: *mut SNode<K, T>) {
    // Safety: unique owner.
    unsafe { reclaim_snode::<K, T>(p as *mut u8) };
}

/// The map's mutable shared state, kept in its own pooled allocation like
/// every structure header in this crate (DESIGN.md §2): the struct itself
/// is movable (`Arc::new(LfHashMap::new())` moves it), so its atomics must
/// live at a stable heap address — both for the helpers that may touch
/// them after an operation returns and for the model checker's
/// address-keyed shadow memory.
#[repr(C)]
struct MapHeader {
    /// Current bucket count (power of two). Monotonic; doubled by a single
    /// CAS — the whole resize state. Padded: read by every operation,
    /// written only on growth.
    size: CachePadded<AtomicUsize>,
    /// Approximate live-item count driving the growth heuristic. Padded:
    /// bumped by every successful insert/remove.
    items: CachePadded<AtomicUsize>,
    /// Segment pointers (`*mut AtomicUsize` as usize; 0 = unallocated).
    /// Written once per segment with a CAS; read-mostly thereafter.
    dir: [AtomicUsize; DIR_SLOTS],
}

fn alloc_map_header(init: usize) -> std::ptr::NonNull<MapHeader> {
    let p = lfc_alloc::alloc_block(Layout::new::<MapHeader>()).cast::<MapHeader>();
    // Safety: fresh block of the right layout.
    unsafe {
        p.as_ptr().write(MapHeader {
            size: CachePadded::new(AtomicUsize::new(init)),
            items: CachePadded::new(AtomicUsize::new(0)),
            dir: std::array::from_fn(|_| AtomicUsize::new(0)),
        });
    }
    p
}

unsafe fn reclaim_map_header(p: *mut u8) {
    // No drop glue: the header is atomics all the way down.
    unsafe { lfc_alloc::free_block(p, Layout::new::<MapHeader>()) };
}

/// A directory segment is a raw `[AtomicUsize; len + 1]` block: word 0
/// holds `len` (so the type-erased reclaimer can rebuild the layout), words
/// `1..=len` are the bucket slots (0 = uninitialized, else a `*mut SNode`
/// dummy pointer). Slots are plain atomics, never DCAS targets: no
/// composed linearization point ever lands in the directory.
fn segment_layout(len: usize) -> Layout {
    Layout::array::<AtomicUsize>(len + 1).expect("segment fits in isize")
}

fn try_alloc_segment(len: usize) -> Result<*mut AtomicUsize, lfc_alloc::AllocError> {
    let p = lfc_alloc::try_alloc_block(segment_layout(len))?.cast::<AtomicUsize>();
    // Safety: fresh block sized for len + 1 atomics.
    unsafe {
        p.as_ptr().write(AtomicUsize::new(len));
        for i in 0..len {
            p.as_ptr().add(1 + i).write(AtomicUsize::new(0));
        }
    }
    Ok(p.as_ptr())
}

unsafe fn reclaim_segment(p: *mut u8) {
    let base = p as *mut AtomicUsize;
    // Safety: retire contract — the block is quiescent; word 0 is the
    // length header written at allocation.
    unsafe {
        let len = (*base).load(Ordering::Relaxed);
        lfc_alloc::free_block(p, segment_layout(len));
    }
}

// Safety: `next` is the marked chain word; unlinked nodes are hazard-retired.
unsafe impl<K, T> ChainNode for SNode<K, T> {
    #[inline]
    fn chain_word(&self) -> &DAtomic {
        &self.next
    }

    unsafe fn retire_unlinked(p: *mut Self) {
        // Safety: forwarded contract.
        unsafe { retire_snode(p) };
    }
}

/// A move-ready lock-free hash map with incremental lock-free resize
/// (split-ordered list + lazily split buckets; unique keys).
///
/// The bucket directory doubles automatically (one CAS) when the
/// item/bucket ratio crosses a threshold; no operation ever blocks on the
/// growth, and composed moves ([`lfc_core::move_keyed`] etc.) stay
/// linearizable across resize boundaries (see the module docs).
///
/// # Hashing assumes non-adversarial keys
///
/// Bucket selection uses an unkeyed FxHash-style mixer (PR 3), not the
/// randomly keyed SipHash of `std`'s `HashMap`. It disperses well and is
/// far cheaper per operation, but it is **not HashDoS-resistant**: the
/// hash of every key is predictable, so an attacker who controls the keys
/// can craft arbitrarily many that collide, degrading every operation on
/// them to an O(n) traversal of one chain — and focusing all contention
/// there. Use this map with trusted or internally generated keys; do not
/// feed it attacker-chosen keys (e.g. from network input) without an
/// upstream defense.
pub struct LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    /// The shared mutable state (size, item count, segment directory) in
    /// its own pooled allocation; see [`MapHeader`].
    header: std::ptr::NonNull<MapHeader>,
    /// Initial bucket count (power of two); fixes the segment geometry.
    /// Immutable after construction.
    init_size: usize,
    /// `init_size.trailing_zeros()`: bucket→segment mapping shifts by this
    /// instead of dividing by `init_size` (a runtime value the compiler
    /// cannot strength-reduce — the same divide-on-the-hot-path PR 3
    /// removed from bucket selection). Immutable.
    init_shift: u32,
    /// Growth cap: `init_size << (DIR_SLOTS - 1)`, clamped well below the
    /// split-order key space (`2^(BITS-1)` buckets). Immutable.
    max_size: usize,
    _marker: std::marker::PhantomData<(K, T)>,
}

// Safety: handle to hazard-managed shared state; see OrderedSet/MsQueue.
unsafe impl<K, T> Send for LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
}
unsafe impl<K, T> Sync for LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
}

impl<K, T> LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    /// Map with a default initial capacity.
    pub fn new() -> Self {
        Self::with_buckets(64)
    }

    /// Map with an initial capacity *hint* of `n` buckets (rounded up to a
    /// power of two, at least 1).
    ///
    /// Since PR 5 the bucket count is **not** a fixed sizing contract: the
    /// directory doubles automatically as items arrive, so the hint only
    /// pre-sizes the first segment and saves the first few doublings.
    /// Callers that previously tuned `with_buckets` against an expected
    /// load factor can simply stop — any hint now yields the same flat
    /// steady-state chain length.
    pub fn with_buckets(n: usize) -> Self {
        let init = n.clamp(1, 1 << 24).next_power_of_two();
        // Cap growth below the split-order key space (bucket indices must
        // stay under 2^(BITS-1) so dummy keys keep LSB 0).
        let max_size = ((init as u128) << (DIR_SLOTS - 1)).min(1u128 << (usize::BITS - 2)) as usize;
        let map = LfHashMap {
            header: alloc_map_header(init),
            init_size: init,
            init_shift: init.trailing_zeros(),
            max_size,
            _marker: std::marker::PhantomData,
        };
        // Segment 0 and the bucket-0 dummy (the global list head, split
        // order key 0 — the minimum) exist from birth, so `dummy_of`'s
        // recursion always terminates.
        let seg = map.segment(0);
        let head = alloc_snode::<K, T>(so_dummy_key(0), None, None);
        // Safety: slot 0 of the freshly allocated segment; Release pairs
        // with the Acquire slot loads of every later operation.
        unsafe { &*seg.add(1) }.store(head as usize, Ordering::Release);
        map
    }

    #[inline]
    fn hdr(&self) -> &MapHeader {
        // Safety: the header lives until Drop retires it.
        unsafe { self.header.as_ref() }
    }

    /// Hash a key: Fx mix, then fold the high bits down (Fx's dispersion is
    /// strongest in the upper bits, while bucket selection keeps low bits).
    fn hash(key: &K) -> usize {
        let mut h = FxHasher { hash: 0 };
        key.hash(&mut h);
        (h.finish() >> 32) as usize ^ h.finish() as usize
    }

    /// (segment index, offset) of bucket `b` in the directory geometry.
    #[inline]
    fn seg_coords(&self, b: usize) -> (usize, usize) {
        if b < self.init_size {
            (0, b)
        } else {
            let k = (b >> self.init_shift).ilog2() as usize + 1;
            (k, b - (self.init_size << (k - 1)))
        }
    }

    /// Slot count of segment `k`.
    #[inline]
    fn seg_len(&self, k: usize) -> usize {
        if k == 0 {
            self.init_size
        } else {
            self.init_size << (k - 1)
        }
    }

    /// Segment `k`'s base pointer, allocating (and racing to publish) it on
    /// first touch.
    fn segment(&self, k: usize) -> *mut AtomicUsize {
        match self.try_segment(k, false) {
            Some(p) => p,
            // try_segment(_, false) only fails through `try_alloc_block`,
            // which the infallible path escalates.
            None => panic!("lfc-structures: directory segment allocation failed"),
        }
    }

    /// [`segment`](Self::segment), degrading instead of panicking: `None`
    /// when the segment is unallocated and allocating it failed (genuine
    /// exhaustion, or — with `faultable` — the `map.segment` site). The
    /// caller falls back to an ancestor bucket's dummy; the directory heals
    /// on a later touch once memory returns.
    fn try_segment(&self, k: usize, faultable: bool) -> Option<*mut AtomicUsize> {
        // Acquire (audited): pairs with the Release publication below so a
        // reader that sees the pointer sees the zeroed slots + len header.
        let p = self.hdr().dir[k].load(Ordering::Acquire);
        if p != 0 {
            return Some(p as *mut AtomicUsize);
        }
        if faultable && lfc_runtime::fault::check("map.segment") {
            return None;
        }
        let fresh = try_alloc_segment(self.seg_len(k)).ok()?;
        match self.hdr().dir[k].compare_exchange(
            0,
            fresh as usize,
            // Release publishes the segment's initialization; Acquire on
            // failure pairs with the winner's Release for the same reason.
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Some(fresh),
            Err(won) => {
                // Safety: our segment was never published; unique owner.
                unsafe { lfc_alloc::free_block(fresh as *mut u8, segment_layout(self.seg_len(k))) };
                Some(won as *mut AtomicUsize)
            }
        }
    }

    /// Bucket `b`'s directory slot.
    #[inline]
    fn bucket_slot(&self, b: usize) -> &AtomicUsize {
        let (k, off) = self.seg_coords(b);
        // Safety: `segment` returns a live segment of `seg_len(k)` slots
        // (freed only at Drop), and `off < seg_len(k)` by construction.
        unsafe { &*self.segment(k).add(1 + off) }
    }

    /// Bucket `b`'s slot if its segment is (or can be made) resident;
    /// `None` degrades the caller to an ancestor bucket.
    #[inline]
    fn try_bucket_slot(&self, b: usize) -> Option<&AtomicUsize> {
        let (k, off) = self.seg_coords(b);
        let seg = self.try_segment(k, true)?;
        // Safety: as in `bucket_slot`.
        Some(unsafe { &*seg.add(1 + off) })
    }

    /// Bucket `b`'s dummy node, lazily threading it (and its ancestors)
    /// into the list on first touch — the per-operation amortized split.
    ///
    /// Degrades under memory pressure instead of failing: if the bucket's
    /// directory segment or dummy node cannot be allocated (or the
    /// `map.segment` / `map.dummy` fault sites fire), the *parent* bucket's
    /// dummy is returned. That is always correct — every key of bucket `b`
    /// sorts inside its parent's chain — it merely lengthens the walk until
    /// a later operation succeeds in materializing the split.
    fn dummy_of(&self, b: usize, g: &Guard) -> *mut SNode<K, T> {
        let Some(slot) = self.try_bucket_slot(b) else {
            debug_assert!(b > 0, "segment 0 is allocated at construction");
            return self.dummy_of(parent_bucket(b), g);
        };
        // Acquire (audited): pairs with the Release slot store below (and
        // in `with_buckets`), publishing the dummy's immutable fields.
        let p = slot.load(Ordering::Acquire);
        if p != 0 {
            return p as *mut SNode<K, T>;
        }
        self.init_bucket(b, g)
    }

    /// Initialize bucket `b`: ensure the parent's dummy exists (recursing
    /// up the split tree), thread a dummy for `b` into the list, and
    /// publish it in the directory. Concurrent initializers converge on
    /// the single list-resident dummy: the list admits one node per
    /// split-order key, and dummies are never unlinked while the map
    /// lives, so whoever loses the insertion race adopts the winner's
    /// node.
    #[cold]
    fn init_bucket(&self, b: usize, g: &Guard) -> *mut SNode<K, T> {
        let parent = self.dummy_of(parent_bucket(b), g);
        let dkey = so_dummy_key(b);
        if lfc_runtime::fault::check("map.dummy") {
            // Degrade: no dummy for `b` this time; the operation starts
            // from the parent's chain (see `dummy_of`).
            return parent;
        }
        let mut fresh: *mut SNode<K, T> = std::ptr::null_mut();
        let dummy = loop {
            let pos = self.find_from(parent, dkey, None, g);
            if !pos.cur.is_null() {
                // Safety: cur is epoch-protected by the caller's op guard;
                // so_key is immutable.
                if unsafe { (*pos.cur).so_key } == dkey {
                    break pos.cur; // another initializer won the thread race
                }
            }
            if fresh.is_null() {
                fresh = match try_alloc_snode::<K, T>(dkey, None, None) {
                    Ok(p) => p,
                    // Genuine exhaustion: same degrade as the fault site.
                    Err(_) => return parent,
                };
            }
            // Safety: fresh is ours until published.
            unsafe { &(*fresh).next }.store_word(pos.cur as usize);
            // Safety: prev allocation epoch-protected; a raw CAS suffices —
            // dummy threading is structural, not a linearization point (the
            // map's observable state is unchanged by it).
            if unsafe { &*pos.prev_word }.cas_word(pos.cur as usize, fresh as usize) {
                let d = fresh;
                fresh = std::ptr::null_mut();
                break d;
            }
        };
        if !fresh.is_null() {
            // Safety: never published.
            unsafe { free_unpublished_snode(fresh) };
        }
        // Publish the (unique) list dummy in the directory. A CAS failure
        // means another initializer published first — necessarily the same
        // pointer, since both found the one list-resident dummy for `dkey`.
        // Release pairs with `dummy_of`'s Acquire.
        let slot = self.bucket_slot(b);
        if slot
            .compare_exchange(0, dummy as usize, Ordering::Release, Ordering::Acquire)
            .is_err()
        {
            debug_assert_eq!(slot.load(Ordering::Acquire), dummy as usize);
        }
        dummy
    }

    /// The bucket dummy to start a search for hash `h` from, under the
    /// current (possibly concurrently growing) bucket count. A stale size
    /// read is harmless: it selects a coarser (ancestor) dummy whose chain
    /// still contains the key's position, just with a longer walk.
    #[inline]
    fn start_for(&self, h: usize, g: &Guard) -> *mut SNode<K, T> {
        // Relaxed (audited): `size` only doubles, and every value selects a
        // correct start dummy (see above); no other state rides on it.
        let size = self.hdr().size.load(Ordering::Relaxed);
        self.dummy_of(h & (size - 1), g)
    }

    /// Whether `cur` sorts at-or-after the target `(so, key)`. Split-order
    /// keys differ between dummies and data nodes (LSB), so an equal
    /// `so_key` implies the same kind; equal data keys (a full-hash
    /// collision) fall back to the `Ord` tie-break.
    #[inline]
    fn at_or_after(cur_so: usize, cur_key: Option<&K>, so: usize, key: Option<&K>) -> bool {
        if cur_so != so {
            return cur_so > so;
        }
        match (key, cur_key) {
            // Dummy target: equal split-order key means "found".
            (None, _) => true,
            // Data target vs dummy node: unreachable (LSBs differ).
            (Some(_), None) => true,
            (Some(k), Some(ck)) => ck >= k,
        }
    }

    /// Locate `(so, key)` starting from the bucket dummy `start`, via the
    /// shared traversal kernel ([`crate::traverse::find_pos`]). `start` is
    /// a dummy — reachable for the map's whole lifetime (dummies are
    /// unlinked only at `Drop`) and never logically deleted — so the same
    /// anchor stays sound across restarts and the walk runs under a plain
    /// [`Guard`] ([`NoRepin`]: no ejection-repin point needed).
    fn find_from(
        &self,
        start: *mut SNode<K, T>,
        so: usize,
        key: Option<&K>,
        g: &Guard,
    ) -> Position<SNode<K, T>> {
        // Safety: start is epoch-protected (a live dummy).
        let anchor = |_: &Guard| (unsafe { &(*start).next } as *const DAtomic, start as usize);
        // Safety: cur epoch-protected; so_key/key are immutable.
        let at_or_after = |cur: *mut SNode<K, T>| {
            let (cur_so, cur_key) = unsafe { ((*cur).so_key, (*cur).key.as_ref()) };
            Self::at_or_after(cur_so, cur_key, so, key)
        };
        // Safety: anchor contract per above; nodes are SNodes by
        // construction.
        unsafe { traverse::find_pos(&mut NoRepin(g), anchor, at_or_after) }
    }

    /// Growth heuristic after a successful insert: double the bucket count
    /// (one CAS, no node moves) when the item/bucket ratio crosses the
    /// threshold. Bucket dummies for the new half materialize lazily on
    /// first touch.
    #[inline]
    fn note_inserted(&self) {
        // Relaxed (audited): the counter is a heuristic; the split-order
        // invariants hold at every size, so a missed or doubled increment
        // only shifts *when* growth happens.
        let items = self.hdr().items.fetch_add(1, Ordering::Relaxed) + 1;
        let size = self.hdr().size.load(Ordering::Relaxed);
        if items > size << GROW_SHIFT && size < self.max_size {
            // Degrade under memory pressure (`map.grow` fault site): skip
            // the doubling — growth is an optimization, never a correctness
            // requirement, so the map simply runs at a higher load factor
            // (longer chains) until the pressure lifts. The heuristic
            // re-fires on every later insert, so growth resumes by itself.
            if lfc_runtime::fault::check("map.grow") {
                return;
            }
            // Relaxed CAS (audited): doubling publishes nothing — new
            // buckets' dummies are created lazily by their first toucher,
            // whose directory/list publications carry their own
            // Release/Acquire pairs. Failure means someone else doubled.
            let _ = self.hdr().size.compare_exchange(
                size,
                size << 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// Force one doubling of the bucket directory (tests, benchmarks, and
    /// capacity pre-warming). Safe at any time: growth is the same single
    /// CAS the heuristic performs, and operations racing it simply keep
    /// using their (coarser) start dummy. Returns the bucket count after
    /// the attempt.
    ///
    /// Every doubling lets subsequent operations lazily materialize
    /// directory segments proportional to the new bucket range, so growth
    /// is **clamped to a bound derived from the item count** (PR 6, fixing
    /// the hazard documented in PR 5): the doubling is refused once the
    /// bucket count reaches [`Self::grow_bound`] — a few doublings past
    /// where the load-factor heuristic would stop — so a force-grow loop
    /// can pre-warm real capacity but can never balloon the directory far
    /// past what the resident items justify. (Use
    /// [`LfHashMap::with_buckets`] to start big instead.)
    pub fn force_grow(&self) -> usize {
        let size = self.hdr().size.load(Ordering::Relaxed);
        if size < self.max_size && size < self.grow_bound() {
            let _ = self.hdr().size.compare_exchange(
                size,
                size << 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
        self.hdr().size.load(Ordering::Relaxed)
    }

    /// Largest bucket count [`force_grow`](Self::force_grow) may reach at
    /// the current item count: two doublings past the load-factor
    /// heuristic's own stopping point (`items > size << GROW_SHIFT`), and
    /// never below the construction-time bucket count.
    pub fn grow_bound(&self) -> usize {
        // Relaxed (audited): a racy item count only shifts the clamp by a
        // doubling; the directory-memory bound is asymptotic, not exact.
        let items = self.hdr().items.load(Ordering::Relaxed);
        (items + 1)
            .next_power_of_two()
            .checked_shl(GROW_SHIFT as u32 + 1)
            .unwrap_or(usize::MAX)
            .max(self.init_size)
            .min(self.max_size)
    }

    /// Current bucket count (power of two). Grows over time; racy by
    /// nature.
    pub fn capacity(&self) -> usize {
        self.hdr().size.load(Ordering::Relaxed)
    }

    /// The bucket `key` selects under the current directory size.
    /// Diagnostics/tests only: lets model-checker scenarios pick keys with
    /// known split relationships (e.g. a key whose bucket dummy threads
    /// into another key's chain on the next doubling).
    #[doc(hidden)]
    pub fn bucket_index(&self, key: &K) -> usize {
        Self::hash(key) & (self.hdr().size.load(Ordering::Relaxed) - 1)
    }

    /// Insert `val` under `key`; false if the key is present.
    pub fn insert(&self, key: K, val: T) -> bool {
        self.insert_key_with(key, val, &mut NormalCas) == InsertOutcome::Inserted
    }

    /// Fallible [`LfHashMap::insert`]: a node-allocation failure (genuine
    /// exhaustion, or the `structures.node` fault site) surfaces as `Err`
    /// with the key/value pair handed back and the map untouched. Directory
    /// growth never fails an insert — under pressure the map degrades to
    /// no-resize instead (see `map.grow` / `map.segment` / `map.dummy`).
    #[allow(clippy::type_complexity)]
    pub fn try_insert(&self, key: K, val: T) -> Result<bool, ((K, T), lfc_alloc::AllocError)> {
        let h = Self::hash(&key);
        let node = match try_alloc_snode(so_data_key(h), Some(key), Some(val)) {
            Ok(n) => n,
            Err((k, v, e)) => {
                return Err((
                    (
                        k.expect("key handed back on failure"),
                        v.expect("value handed back on failure"),
                    ),
                    e,
                ));
            }
        };
        Ok(self.insert_snode(h, node, &mut NormalCas) == InsertOutcome::Inserted)
    }

    /// Remove the element under `key`.
    pub fn remove(&self, key: &K) -> Option<T> {
        match self.remove_key_with(key, &mut NormalCas) {
            RemoveOutcome::Removed(v) => Some(v),
            RemoveOutcome::Empty => None,
            RemoveOutcome::Aborted => unreachable!("NormalCas never aborts"),
        }
    }

    /// Clone the element under `key`.
    pub fn get(&self, key: &K) -> Option<T> {
        let g = pin_op();
        let h = Self::hash(key);
        let start = self.start_for(h, &g);
        let pos = self.find_from(start, so_data_key(h), Some(key), &g);
        if pos.cur.is_null() {
            return None;
        }
        // Safety: cur epoch-protected by the op guard; fields immutable.
        let node = pos.cur;
        if unsafe { (*node).so_key } == so_data_key(h)
            && unsafe { (*node).key.as_ref() } == Some(key)
        {
            // Safety: value immutable, node epoch-protected.
            unsafe { (*(*node).val.get()).clone() }
        } else {
            None
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Racy O(n) size (quiescent use only): walks the whole split-ordered
    /// list counting live data nodes (dummies excluded).
    pub fn count(&self) -> usize {
        let g = pin_op();
        // Safety: the bucket-0 dummy exists from birth; epoch-protected
        // walk as in find_from.
        let head = self.bucket_slot(0).load(Ordering::Acquire) as *mut SNode<K, T>;
        let mut n = 0;
        let mut cur = unsafe { &(*head).next }.read(&g);
        while cur != 0 {
            let node = cur as *mut SNode<K, T>;
            // Safety: quiescent per the docs.
            let next = unsafe { &(*node).next }.read_acquire(&g);
            if !is_deleted(next) && unsafe { (*node).key.is_some() } {
                n += 1;
            }
            cur = without_mark(next);
        }
        n
    }
}

impl<K, T> Default for LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, T> LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    /// The insert loop on an already-allocated data node: the shared tail
    /// of the infallible ([`KeyedMoveTarget::insert_key_with`]) and
    /// fallible ([`LfHashMap::try_insert`]) insert paths.
    fn insert_snode<C: InsertCtx>(
        &self,
        h: usize,
        node: *mut SNode<K, T>,
        ctx: &mut C,
    ) -> InsertOutcome {
        let mut g = pin_op();
        let so = so_data_key(h);
        loop {
            // Ejection check (PR 6): the attempt re-resolves its start
            // dummy anyway, so an ejected thread just re-enters here;
            // `node` is unpublished and survives the restart.
            g.repin_if_ejected();
            // Safety: node is ours until published; the key is immutable.
            let key_ref = unsafe { (*node).key.as_ref() }.expect("data node holds a key");
            // Re-resolve the start dummy every attempt: a concurrent
            // doubling may have split our bucket since the last one.
            let start = self.start_for(h, &g);
            let pos = self.find_from(start, so, Some(key_ref), &g);
            if !pos.cur.is_null() {
                // Safety: cur epoch-protected by find's op guard.
                if unsafe { (*pos.cur).so_key } == so
                    && unsafe { (*pos.cur).key.as_ref() } == Some(key_ref)
                {
                    // Duplicate key: genuine rejection (fails a move).
                    // Safety: never published.
                    unsafe { free_unpublished_snode(node) };
                    return InsertOutcome::Rejected;
                }
            }
            // Safety: unpublished node.
            unsafe { &(*node).next }.store_word(pos.cur as usize);
            let r = ctx.scas(LinPoint {
                // Safety: prev allocation (a dummy or data node)
                // epoch-protected; a composed capture promotes `hp` into an
                // ENTRY hazard slot before the commit so the protection
                // outlives this epoch. The dummy itself is never the
                // *subject* of the linearization point — only the host of
                // the predecessor word (module-docs invariant).
                word: unsafe { &*pos.prev_word },
                old: pos.cur as usize,
                new: node as usize,
                hp: pos.prev_alloc,
            });
            match r {
                ScasResult::Success => {
                    self.note_inserted();
                    return InsertOutcome::Inserted;
                }
                ScasResult::Fail => continue,
                ScasResult::Abort => {
                    // Safety: never published.
                    unsafe { free_unpublished_snode(node) };
                    return InsertOutcome::Rejected;
                }
            }
        }
    }
}

impl<K, T> KeyedMoveTarget<K, T> for LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn insert_key_with<C: InsertCtx>(&self, key: K, elem: T, ctx: &mut C) -> InsertOutcome {
        let h = Self::hash(&key);
        let node = alloc_snode(so_data_key(h), Some(key), Some(elem));
        self.insert_snode(h, node, ctx)
    }
}

impl<K, T> KeyedMoveSource<K, T> for LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn remove_key_with<C: RemoveCtx<T>>(&self, key: &K, ctx: &mut C) -> RemoveOutcome<T> {
        let mut g = pin_op();
        let h = Self::hash(key);
        let so = so_data_key(h);
        loop {
            // Ejection check (PR 6): see `insert_key_with`.
            g.repin_if_ejected();
            let start = self.start_for(h, &g);
            let pos = self.find_from(start, so, Some(key), &g);
            let cur = pos.cur;
            // Safety: cur epoch-protected by find's op guard (non-null).
            if cur.is_null()
                || unsafe { (*cur).so_key } != so
                || unsafe { (*cur).key.as_ref() } != Some(key)
            {
                return RemoveOutcome::Empty;
            }
            // The key matched, so `cur` is a data node: the remove's
            // linearization point can never mark a dummy (module-docs
            // invariant).
            debug_assert!(unsafe { (*cur).key.is_some() });
            // Safety: cur epoch-protected.
            let succ_w = unsafe { &(*cur).next }.read(&g);
            if is_deleted(succ_w) {
                continue; // someone else is removing it; re-find
            }
            // Element accessible before the linearization point (req. 4).
            // Safety: value immutable; cur epoch-protected.
            let val = match unsafe { (*(*cur).val.get()).as_ref() } {
                Some(v) => v.clone(),
                None => unreachable!("data nodes always hold a value"),
            };
            // The linearization point: the logical-delete marking CAS.
            let r = ctx.scas(
                LinPoint {
                    // Safety: cur epoch-protected; composed captures promote
                    // `hp` into an ENTRY hazard slot before the commit.
                    word: unsafe { &(*cur).next },
                    old: succ_w,
                    new: succ_w | DEL_MARK,
                    hp: cur as usize,
                },
                &val,
            );
            match r {
                ScasResult::Success => {
                    // Relaxed (audited): growth heuristic only.
                    self.hdr().items.fetch_sub(1, Ordering::Relaxed);
                    // Cleanup: try to unlink physically; a traversal will
                    // otherwise do it later.
                    if unsafe { &*pos.prev_word }.cas_word(cur as usize, succ_w) {
                        // Safety: unlinked.
                        unsafe { retire_snode(cur) };
                    }
                    return RemoveOutcome::Removed(val);
                }
                ScasResult::Fail => continue,
                ScasResult::Abort => return RemoveOutcome::Aborted,
            }
        }
    }
}

impl<K, T> Drop for LfHashMap<K, T>
where
    K: Hash + Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn drop(&mut self) {
        let g = pin();
        // Every node — data and dummy alike — is reachable from the
        // bucket-0 dummy, the global head of the split-ordered list.
        let head = self.bucket_slot(0).load(Ordering::Acquire) as *mut SNode<K, T>;
        let mut cur = head as usize;
        while cur != 0 {
            let node = cur as *mut SNode<K, T>;
            // Safety: exclusive teardown (&mut self); helpers of past
            // composed operations may still write into `next` words, which
            // is why nodes go through the unified reclamation domain.
            let next = unsafe { &(*node).next }.read(&g);
            unsafe { retire_snode(node) };
            cur = without_mark(next);
        }
        // Segments and the map header flow through the same domain (PR 5):
        // their slots are plain atomics no helper writes to, but deferring
        // the free keeps one teardown discipline for every block the map
        // ever published.
        for k in 0..DIR_SLOTS {
            let seg = self.hdr().dir[k].load(Ordering::Acquire);
            if seg != 0 {
                // Safety: unique teardown; the length header word rebuilds
                // the layout inside the reclaimer. Segments carry no drop
                // glue, so the divert path is the reclaimer itself; the
                // byte charge uses the length header. Birth unknown: a
                // segment lives from first touch to Drop anyway.
                let len = unsafe { (*(seg as *mut AtomicUsize)).load(Ordering::Relaxed) };
                unsafe {
                    lfc_hazard::retire_with(
                        seg as *mut u8,
                        reclaim_segment,
                        lfc_hazard::RetireInfo {
                            bytes: segment_layout(len).size(),
                            birth: lfc_hazard::BIRTH_UNKNOWN,
                            divert: Some(reclaim_segment),
                        },
                    )
                };
            }
        }
        // Safety: unique teardown path.
        unsafe {
            lfc_hazard::retire_with(
                self.header.as_ptr() as *mut u8,
                reclaim_map_header,
                lfc_hazard::RetireInfo {
                    bytes: std::mem::size_of::<MapHeader>(),
                    birth: lfc_hazard::BIRTH_UNKNOWN,
                    divert: Some(reclaim_map_header),
                },
            )
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_zero_bytes_do_not_collide() {
        // A plain byte fold of the final partial chunk would hash "a",
        // "\0a", "\0\0a", ... identically (leading zeros vanish), pinning
        // the whole family to one chain; the length-seeded fold keeps
        // them distinct.
        let hash = |s: &str| {
            let mut h = FxHasher { hash: 0 };
            s.hash(&mut h);
            h.finish()
        };
        let family: Vec<u64> = ["a", "\0a", "\0\0a", "\0\0\0a"]
            .iter()
            .map(|s| hash(s))
            .collect();
        for i in 0..family.len() {
            for j in i + 1..family.len() {
                assert_ne!(family[i], family[j], "keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn split_order_key_invariants() {
        // Data keys always carry LSB 1, dummy keys LSB 0 — the two kinds
        // can never collide on a split-order key.
        for h in [0usize, 1, 0xDEAD_BEEF, usize::MAX] {
            assert_eq!(so_data_key(h) & 1, 1);
        }
        for b in [0usize, 1, 2, 3, 64, 1 << 30] {
            assert_eq!(so_dummy_key(b) & 1, 0);
        }
        // A bucket's dummy key lower-bounds every data key hashing to it,
        // at every table size the bucket exists in.
        for size_log in [1usize, 3, 6, 10] {
            let size = 1 << size_log;
            for h in [3usize, 0x1234_5678, 0xFEDC_BA98_7654_3210] {
                let b = h & (size - 1);
                assert!(so_dummy_key(b) < so_data_key(h), "size {size}, hash {h:#x}");
                // And upper-bounded by the *split* bucket's dummy iff the
                // key does not belong there.
                let split = b + size;
                if h & size == 0 {
                    assert!(so_data_key(h) < so_dummy_key(split));
                } else {
                    assert!(so_data_key(h) > so_dummy_key(split));
                }
            }
        }
        // Parent recursion strictly descends to the root.
        for b in [1usize, 2, 3, 7, 64, 1023, 1 << 20] {
            let mut x = b;
            let mut steps = 0;
            while x != 0 {
                x = parent_bucket(x);
                steps += 1;
                assert!(steps <= usize::BITS, "parent chain terminates");
            }
        }
    }

    #[test]
    fn insert_get_remove() {
        let m: LfHashMap<String, u64> = LfHashMap::new();
        assert!(m.insert("a".into(), 1));
        assert!(m.insert("b".into(), 2));
        assert!(!m.insert("a".into(), 3), "duplicate");
        assert_eq!(m.get(&"a".into()), Some(1));
        assert_eq!(m.remove(&"a".into()), Some(1));
        assert_eq!(m.get(&"a".into()), None);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn many_keys_across_buckets() {
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(8);
        for k in 0..500 {
            assert!(m.insert(k, k * k));
        }
        assert_eq!(m.count(), 500);
        for k in 0..500 {
            assert_eq!(m.get(&k), Some(k * k));
        }
        for k in (0..500).step_by(2) {
            assert_eq!(m.remove(&k), Some(k * k));
        }
        assert_eq!(m.count(), 250);
    }

    #[test]
    fn grows_incrementally_and_keeps_every_key() {
        // From a deliberately tiny start the directory must double its way
        // up while every key stays reachable — the tentpole property.
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(1);
        assert_eq!(m.capacity(), 1);
        for k in 0..10_000u64 {
            assert!(m.insert(k, !k));
            // Spot-check reads interleaved with growth.
            if k % 997 == 0 {
                assert_eq!(m.get(&k), Some(!k));
            }
        }
        assert!(
            m.capacity() >= 10_000 / 4,
            "directory grew with the items (capacity {})",
            m.capacity()
        );
        for k in 0..10_000u64 {
            assert_eq!(m.get(&k), Some(!k), "key {k} lost during growth");
        }
        assert_eq!(m.count(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.remove(&k), Some(!k));
        }
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn force_grow_splits_lazily() {
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(2);
        for k in 0..32u64 {
            assert!(m.insert(k, k));
        }
        let before = m.capacity();
        let after = m.force_grow();
        assert_eq!(after, (before * 2).min(m.max_size));
        // Every key survives the doubling; lookups thread the new dummies.
        for k in 0..32u64 {
            assert_eq!(m.get(&k), Some(k));
        }
        assert_eq!(m.count(), 32);
    }

    #[test]
    fn with_buckets_is_a_capacity_hint() {
        for (req, want) in [
            (0, 1),
            (1, 1),
            (2, 2),
            (3, 4),
            (48, 64),
            (64, 64),
            (65, 128),
        ] {
            let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(req);
            assert_eq!(m.capacity(), want, "with_buckets({req})");
        }
        // The hint is not a ceiling: the map grows past it on demand.
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(2);
        for k in 0..256u64 {
            m.insert(k, k);
        }
        assert!(m.capacity() > 2, "outgrew the hint");
    }

    #[test]
    fn fx_hash_disperses_sequential_keys() {
        // Sequential u64 keys must not collapse onto a few buckets (the
        // failure mode of a truncating or identity hash).
        let mut used = std::collections::HashSet::new();
        for k in 0..512u64 {
            used.insert(LfHashMap::<u64, u64>::hash(&k) & 63);
        }
        assert!(used.len() >= 48, "only {} of 64 buckets used", used.len());

        // String keys exercise the byte-chunk `write` path.
        let mut used = std::collections::HashSet::new();
        for k in 0..512u64 {
            used.insert(LfHashMap::<String, u64>::hash(&format!("key-{k}")) & 63);
        }
        assert!(used.len() >= 48, "only {} of 64 buckets used", used.len());
    }

    #[test]
    fn concurrent_mixed_ops() {
        use std::sync::atomic::{AtomicI64, Ordering};
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(16);
        let balance = AtomicI64::new(0);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let m = &m;
                let balance = &balance;
                sc.spawn(move || {
                    for i in 0..1_500 {
                        let k = (t * 31 + i * 7) % 64;
                        if i % 2 == 0 {
                            if m.insert(k, i) {
                                balance.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if m.remove(&k).is_some() {
                            balance.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(balance.load(Ordering::Relaxed), m.count() as i64);
    }

    #[test]
    fn concurrent_inserts_during_forced_growth() {
        // Writers hammer disjoint key ranges while a grower doubles the
        // directory as fast as it can: every insert must land exactly once
        // and stay reachable through the splits.
        let m: LfHashMap<u64, u64> = LfHashMap::with_buckets(1);
        std::thread::scope(|sc| {
            for t in 0..3u64 {
                let m = &m;
                sc.spawn(move || {
                    for k in 0..2_000u64 {
                        let key = t * 10_000 + k;
                        assert!(m.insert(key, key * 3));
                    }
                });
            }
            let m = &m;
            sc.spawn(move || {
                for _ in 0..10 {
                    m.force_grow();
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(m.count(), 6_000);
        for t in 0..3u64 {
            for k in 0..2_000u64 {
                let key = t * 10_000 + k;
                assert_eq!(m.get(&key), Some(key * 3));
            }
        }
    }

    #[test]
    fn drop_reclaims_values_after_growth() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let before = DROPS.load(Ordering::SeqCst);
        {
            let m: LfHashMap<u64, D> = LfHashMap::with_buckets(1);
            for k in 0..300 {
                m.insert(k, D);
            }
            assert!(m.capacity() > 1, "map grew before teardown");
        }
        crate::test_util::flush_until(|| DROPS.load(Ordering::SeqCst) - before == 300);
        assert_eq!(DROPS.load(Ordering::SeqCst) - before, 300);
    }
}
