//! A move-ready lock-free skip-list map (Sundell & Tsigas style) whose
//! bottom level **is** a [`crate::traverse`] kernel chain — the third
//! structure on the shared traversal kernel, and the first with ordered
//! `range` queries.
//!
//! # One linearization chain, auxiliary express lanes
//!
//! Level 0 is exactly the Harris/Michael marked chain of
//! [`crate::OrderedSet`]: nodes sorted by key, threaded through a
//! [`DAtomic`] `next` word whose bit 2 is the logical-delete mark, with
//! insert/remove linearizing at **one CAS on a level-0 `next` word** —
//! so the map is a move-candidate (paper Definition 1) and composes with
//! [`lfc_core::move_keyed`] / [`lfc_core::swap`] unchanged.
//!
//! Levels ≥ 1 (the *tower*) are pure search accelerators, and — like the
//! hash map's bucket dummies — **tower links are never linearization
//! points**: they are plain `AtomicUsize` words (no descriptor ever
//! lands in them), installed and removed by auxiliary CASes that change
//! no observable map state. A reader that ignored every tower level
//! would see the same map, only slower. This is what keeps composed
//! captures sound: a capture subject is always a level-0 `next` word,
//! validated and promoted exactly as for the list and the hash map,
//! while tower surgery merely races harmlessly alongside.
//!
//! # Tower lifecycle and reference counting
//!
//! A node of height `h` (deterministic pseudo-random, geometric p=½,
//! capped at [`MAX_LEVEL`]) starts with `refs = h`: one reference per
//! level that may end up linking it. Each level's reference is released
//! exactly once:
//!
//! * the **unlink winner** at a level (traversal helping, the remover's
//!   eager sweep, or `Drop`) releases that level's reference;
//! * the **builder** releases the references of levels it abandons
//!   before ever linking them (it saw the level marked).
//!
//! The node is hazard-retired when the count hits zero, so a slow
//! traversal parked on any level can never touch a freed node.
//!
//! Builders link bottom-up; removers mark top-down. The per-level link
//! *freezes* once marked (every tower CAS fails on a marked word), so a
//! level is unlinked at most once and the builder always observes a
//! mark on the lowest level it has not yet linked. The one overlap —
//! builder stages a successor, remover marks, builder's link CAS still
//! succeeds — is healed by the builder itself: after every successful
//! link it re-checks the mark and, if set, unlinks its own node (winner
//! releases) and stops building.
//!
//! # Removal
//!
//! 1. **Logical delete** (the linearization point, possibly inside a
//!    composed commit): CAS the mark onto the level-0 `next` word.
//! 2. **Tower freeze**: `fetch_or` the mark onto every tower level,
//!    top-down.
//! 3. **Eager cleanup**: one tower search for the key physically
//!    unlinks every marked level it passes; stragglers are unlinked by
//!    any later traversal (same helping rule as the kernel's level 0).
//!
//! # `range` and iteration semantics (weak consistency)
//!
//! [`LfSkipMap::range`] walks level 0 once, cloning entries whose key
//! falls in the bounds and whose node is not logically deleted at visit
//! time. The walk is **not a snapshot**: each returned entry was present
//! at the moment it was visited (and the keys are returned in ascending
//! order), but entries inserted or removed while the walk is in flight
//! may or may not appear — the guarantee is per-entry linearizability,
//! not cut consistency. The recorded-history linearizability suite
//! checks exactly this contract (every returned pair was live at some
//! point inside the walk's window; every pair live across the whole
//! window appears).

use crate::sync::{AtomicUsize, Ordering};
use crate::traverse::{self, is_deleted, without_mark, ChainNode, Position, DEL_MARK};
use lfc_core::{
    InsertCtx, InsertOutcome, KeyedMoveSource, KeyedMoveTarget, LinPoint, NormalCas, RemoveCtx,
    RemoveOutcome, ScasResult,
};
use lfc_dcas::DAtomic;
use lfc_hazard::{pin_op, Guard, OpGuard};
use std::alloc::Layout;
use std::cell::UnsafeCell;
use std::ops::{Bound, RangeBounds};
use std::ptr::NonNull;

/// Tower height cap: levels `0..MAX_LEVEL`. 12 levels cover ~2^12
/// elements at the geometric p=½ before express lanes saturate — beyond
/// that the walk degrades gracefully toward the list's O(n).
pub const MAX_LEVEL: usize = 12;

/// A skip-list node. Level 0 (`next`) is the kernel chain word; the
/// tower holds levels `1..height`.
#[repr(C)]
struct ZNode<K, T> {
    /// Level-0 successor; may transiently hold a DCAS/CASN descriptor;
    /// bit 2 is the logical-delete mark. **The only capturable word.**
    next: DAtomic,
    /// Levels `1..height` (index `L-1` holds level `L`): plain marked
    /// pointer words, never descriptors. Slots `height-1..` are unused.
    tower: [AtomicUsize; MAX_LEVEL - 1],
    /// Levels that may link this node (1..=MAX_LEVEL). Immutable.
    height: usize,
    /// Outstanding level references; hazard-retire at zero.
    refs: AtomicUsize,
    key: K,
    val: UnsafeCell<Option<T>>,
    /// Birth era (PR 6): written before publication, read at retire.
    birth: usize,
}

/// The map's anchor allocation: level-0 head plus the tower heads.
#[repr(C)]
struct ZHeader {
    next: DAtomic,
    tower: [AtomicUsize; MAX_LEVEL - 1],
}

fn znode_layout<K, T>() -> Layout {
    Layout::new::<ZNode<K, T>>()
}

fn alloc_znode<K, T>(key: K, val: T, height: usize) -> *mut ZNode<K, T> {
    let p = lfc_alloc::alloc_block(znode_layout::<K, T>()).cast::<ZNode<K, T>>();
    // Safety: fresh block of the right layout.
    unsafe {
        p.as_ptr().write(ZNode {
            next: DAtomic::new(0),
            tower: std::array::from_fn(|_| AtomicUsize::new(0)),
            height,
            refs: AtomicUsize::new(height),
            key,
            val: UnsafeCell::new(Some(val)),
            birth: lfc_hazard::birth_era(),
        });
    }
    debug_assert_eq!(p.as_ptr() as usize & 0b111, 0);
    p.as_ptr()
}

unsafe fn reclaim_znode<K, T>(p: *mut u8) {
    // Safety: retire contract.
    unsafe {
        std::ptr::drop_in_place(p as *mut ZNode<K, T>);
        lfc_alloc::free_block(p, znode_layout::<K, T>());
    }
}

/// Zombie-tier fallback: pool the block without dropping key/value (see
/// `divert_node` in `node.rs`).
unsafe fn divert_znode<K, T>(p: *mut u8) {
    // Safety: retire contract; contents intentionally not dropped.
    unsafe { lfc_alloc::free_block(p, znode_layout::<K, T>()) };
}

unsafe fn retire_znode<K, T>(p: *mut ZNode<K, T>) {
    // Safety: unlinked at every level but live; single retire call.
    let birth = unsafe { (*p).birth };
    // Safety: forwarded.
    unsafe {
        lfc_hazard::retire_with(
            p as *mut u8,
            reclaim_znode::<K, T>,
            lfc_hazard::RetireInfo {
                bytes: std::mem::size_of::<ZNode<K, T>>(),
                birth,
                divert: Some(divert_znode::<K, T>),
            },
        )
    };
}

/// Release one level reference; the last one out retires the node.
unsafe fn release_ref<K, T>(p: *mut ZNode<K, T>) {
    // Release orders this level's final link traffic before the retire;
    // the winner's Acquire fetch pairs with every loser's Release.
    // Safety: p live (each level releases at most once, refs > 0).
    if unsafe { &(*p).refs }.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Safety: every level let go; no new link can form (all frozen).
        unsafe { retire_znode(p) };
    }
}

unsafe fn free_unpublished_znode<K, T>(p: *mut ZNode<K, T>) {
    // Safety: unique owner (never published at any level).
    unsafe { reclaim_znode::<K, T>(p as *mut u8) };
}

// Safety: `next` is the marked level-0 chain word; the level-0 unlink
// winner releases that level's tower reference (retire happens when the
// towers let go too).
unsafe impl<K, T> ChainNode for ZNode<K, T> {
    #[inline]
    fn chain_word(&self) -> &DAtomic {
        &self.next
    }

    unsafe fn retire_unlinked(p: *mut Self) {
        // Safety: level-0 unlink winner releases level 0's reference.
        unsafe { release_ref(p) };
    }
}

/// A move-ready lock-free skip-list map with unique keys and ordered
/// [`range`](LfSkipMap::range) queries. See the module docs.
pub struct LfSkipMap<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    header: NonNull<ZHeader>,
    /// Deterministic height source: one tick per insert, mixed into a
    /// geometric height. Deterministic (per map) by design — the model
    /// checker and the fuzzer replay identical tower shapes.
    ticket: AtomicUsize,
    _marker: std::marker::PhantomData<(K, T)>,
}

// Safety: handle to hazard-managed shared state; see OrderedSet/MsQueue.
unsafe impl<K, T> Send for LfSkipMap<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
}
unsafe impl<K, T> Sync for LfSkipMap<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
}

/// Fibonacci-style mix of the insert ticket; trailing zeros give the
/// geometric level distribution.
#[inline]
fn height_for(ticket: usize) -> usize {
    let m = ticket.wrapping_mul(0x9E37_79B9_7F4A_7C15_u64 as usize);
    let m = m ^ (m >> 32);
    ((m.trailing_zeros() as usize) + 1).min(MAX_LEVEL)
}

impl<K, T> LfSkipMap<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    /// Empty map.
    pub fn new() -> Self {
        let p = lfc_alloc::alloc_block(Layout::new::<ZHeader>()).cast::<ZHeader>();
        // Safety: fresh block.
        unsafe {
            p.as_ptr().write(ZHeader {
                next: DAtomic::new(0),
                tower: std::array::from_fn(|_| AtomicUsize::new(0)),
            });
        }
        LfSkipMap {
            header: p,
            ticket: AtomicUsize::new(1),
            _marker: std::marker::PhantomData,
        }
    }

    #[inline]
    fn hdr(&self) -> &ZHeader {
        // Safety: header lives until Drop.
        unsafe { self.header.as_ref() }
    }

    /// The level-`level` link word of `base` (null = the header).
    ///
    /// # Safety
    ///
    /// `base` must be null or an epoch-protected node; `1 <= level <
    /// MAX_LEVEL`.
    #[inline]
    unsafe fn tower_word(&self, base: *mut ZNode<K, T>, level: usize) -> *const AtomicUsize {
        if base.is_null() {
            &self.hdr().tower[level - 1]
        } else {
            // Safety: epoch-protected per contract.
            unsafe { &(*base).tower[level - 1] }
        }
    }

    /// Walk the tower levels top-down, helping unlink marked links, and
    /// record the strict predecessor of `key` at every level ≥ 1.
    /// Returns the per-level predecessors (null = header) — the lowest
    /// one doubles as the kernel's level-0 restart anchor.
    ///
    /// The same ordering discipline as the kernel applies per level: a
    /// mark on the *predecessor's own* link word takes the whole search
    /// back to the top (the predecessor left the live chain), while a
    /// mark on `cur`'s link word makes `cur` the unlink subject.
    fn search_upper(&self, key: &K, g: &Guard) -> [*mut ZNode<K, T>; MAX_LEVEL - 1] {
        let _ = g; // the epoch, not any per-read token, licenses the derefs
        'retry: loop {
            let mut preds: [*mut ZNode<K, T>; MAX_LEVEL - 1] =
                [std::ptr::null_mut(); MAX_LEVEL - 1];
            let mut pred: *mut ZNode<K, T> = std::ptr::null_mut();
            for level in (1..MAX_LEVEL).rev() {
                loop {
                    // Safety: pred is the header or was reached through a
                    // live link inside this epoch.
                    let pred_w = unsafe { &*self.tower_word(pred, level) };
                    // Acquire pairs with the linking CAS's Release: the
                    // successor's fields are visible before its address.
                    let cur_w = pred_w.load(Ordering::Acquire);
                    if is_deleted(cur_w) {
                        // pred was frozen at this level under us: its link
                        // is off the live chain — restart from the top.
                        continue 'retry;
                    }
                    if cur_w == 0 {
                        break;
                    }
                    let cur = cur_w as *mut ZNode<K, T>;
                    // Safety: cur reachable through the live chain inside
                    // this epoch; the tower reference held for this level
                    // keeps the allocation until an unlink wins.
                    let cur_next = unsafe { &(*cur).tower[level - 1] }.load(Ordering::Acquire);
                    if is_deleted(cur_next) {
                        // Frozen at this level: unlink (helping); the
                        // winner releases this level's reference.
                        if pred_w
                            .compare_exchange(
                                cur_w,
                                without_mark(cur_next),
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            // Safety: we won this level's unlink.
                            unsafe { release_ref(cur) };
                        }
                        continue; // re-read pred_w either way
                    }
                    // Safety: cur epoch-protected; keys are immutable.
                    if unsafe { &(*cur).key } >= key {
                        break;
                    }
                    pred = cur;
                }
                preds[level - 1] = pred;
            }
            return preds;
        }
    }

    /// The level-0 restart anchor: the closest tower predecessor's `next`
    /// word (or the header's), re-derived per kernel restart.
    fn anchor(&self, key: &K, g: &Guard) -> (*const DAtomic, usize) {
        let preds = self.search_upper(key, g);
        let pred = preds[0];
        if pred.is_null() {
            (&self.hdr().next, self.header.as_ptr() as usize)
        } else {
            // Safety: pred found under this epoch (search_upper contract).
            (unsafe { &(*pred).next }, pred as usize)
        }
    }

    /// Locate `key` on level 0 via the shared traversal kernel, anchored
    /// at the closest tower predecessor. The anchor closure re-runs the
    /// tower search on every restart: unlike a bucket dummy, a tower
    /// predecessor *can* be logically deleted between restarts.
    fn find(&self, key: &K, g: &mut OpGuard) -> Position<ZNode<K, T>> {
        let anchor = |eg: &Guard| self.anchor(key, eg);
        // Safety: cur epoch-protected; keys are immutable.
        let at_or_after = |cur: *mut ZNode<K, T>| unsafe { &(*cur).key } >= key;
        // Safety: anchors are epoch-protected (header: owned; preds:
        // found under the same guard); nodes are ZNodes by construction.
        unsafe { traverse::find_pos(g, anchor, at_or_after) }
    }

    /// Link `node` at levels `1..height`, bottom-up, after its level-0
    /// publication. Runs entirely with auxiliary CASes; stops (releasing
    /// the remaining level references) as soon as it observes a mark.
    fn build_tower(&self, node: *mut ZNode<K, T>, g: &Guard) {
        // Safety: node is level-0 published and epoch-protected.
        let (key, height) = unsafe { (&(*node).key, (*node).height) };
        for level in 1..height {
            loop {
                let preds = self.search_upper(key, g);
                let pred = preds[level - 1];
                // Safety: pred epoch-protected (search_upper contract).
                let pred_w = unsafe { &*self.tower_word(pred, level) };
                let succ_w = pred_w.load(Ordering::Acquire);
                if is_deleted(succ_w) {
                    continue; // pred frozen under us; re-search
                }
                // Stage the successor into our own link. A marked value
                // here means the remover already froze this level (and,
                // top-down, every level above): release their references
                // and stop.
                // Safety: node epoch-protected.
                let staged = unsafe { &(*node).tower[level - 1] }.load(Ordering::Acquire);
                if is_deleted(staged) {
                    for _ in level..height {
                        // Safety: these levels were never linked; the
                        // builder owns their references.
                        unsafe { release_ref(node) };
                    }
                    return;
                }
                if unsafe { &(*node).tower[level - 1] }
                    .compare_exchange(staged, succ_w, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    continue; // re-read (either a stale stage or a mark)
                }
                // Link pred → node. Release publishes the staged link.
                if pred_w
                    .compare_exchange(succ_w, node as usize, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // Healing re-check: a remover may have frozen the
                    // level between our stage and the link. Unlink our
                    // own node (the winner releases) and stop — levels
                    // above are already frozen (marks go top-down).
                    let now = unsafe { &(*node).tower[level - 1] }.load(Ordering::Acquire);
                    if is_deleted(now) {
                        if pred_w
                            .compare_exchange(
                                node as usize,
                                without_mark(now),
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            // Safety: we won this level's unlink.
                            unsafe { release_ref(node) };
                        }
                        for _ in level + 1..height {
                            // Safety: never linked; builder-owned refs.
                            unsafe { release_ref(node) };
                        }
                        return;
                    }
                    break; // next level
                }
                // Lost the link race; re-search this level.
            }
        }
    }

    /// Post-linearization removal cleanup: freeze the tower top-down,
    /// then eagerly sweep the key's levels once (any marked link the
    /// sweep meets is unlinked; stragglers are caught by later
    /// traversals).
    fn unlink_tower(&self, node: *mut ZNode<K, T>, g: &Guard) {
        // Safety: node epoch-protected (logically deleted, not yet gone).
        let (key, height) = unsafe { ((*node).key.clone(), (*node).height) };
        for level in (1..height).rev() {
            // fetch_or freezes the level regardless of what the builder
            // is doing; tower words never hold descriptors, so the mark
            // bit is always ours to set.
            // Safety: node epoch-protected.
            unsafe { &(*node).tower[level - 1] }.fetch_or(DEL_MARK, Ordering::AcqRel);
        }
        if height > 1 {
            // One sweep unlinks what it can (helping does the rest).
            let _ = self.search_upper(&key, g);
        }
    }

    /// Insert `val` under `key`; false if the key is already present.
    pub fn insert(&self, key: K, val: T) -> bool {
        self.insert_key_with(key, val, &mut NormalCas) == InsertOutcome::Inserted
    }

    /// Remove the element under `key`.
    pub fn remove(&self, key: &K) -> Option<T> {
        match self.remove_key_with(key, &mut NormalCas) {
            RemoveOutcome::Removed(v) => Some(v),
            RemoveOutcome::Empty => None,
            RemoveOutcome::Aborted => unreachable!("NormalCas never aborts"),
        }
    }

    /// Clone the element under `key`, if present.
    pub fn get(&self, key: &K) -> Option<T> {
        let mut g = pin_op();
        let pos = self.find(key, &mut g);
        if pos.cur.is_null() {
            return None;
        }
        let node = pos.cur;
        // Safety: cur epoch-protected by the op guard; keys immutable.
        if unsafe { &(*node).key } == key {
            // Safety: value immutable, node epoch-protected.
            unsafe { (*(*node).val.get()).clone() }
        } else {
            None
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Clone every entry whose key falls within `bounds`, in ascending
    /// key order. **Not a snapshot** — see the module docs for the exact
    /// (per-entry) consistency contract.
    pub fn range<R: RangeBounds<K>>(&self, bounds: R) -> Vec<(K, T)> {
        let mut g = pin_op();
        let mut out = Vec::new();
        // Position the walk at the first candidate: an excluded start
        // bound still anchors at `start` and skips the equal key below.
        let start_pos = match bounds.start_bound() {
            Bound::Included(k) | Bound::Excluded(k) => self.find(k, &mut g).cur,
            Bound::Unbounded => {
                // Full walk from the head; the kernel is not needed (no
                // position to compute), but deleted-node skipping is.
                let w = self.hdr().next.read_acquire(&g);
                if is_deleted(w) {
                    // Head words are never marked; defensive only.
                    std::ptr::null_mut()
                } else {
                    w as *mut ZNode<K, T>
                }
            }
        };
        let mut cur = start_pos;
        while !cur.is_null() {
            // Safety: every node on the walk was reachable through the
            // live chain inside this epoch.
            let succ_w = unsafe { &(*cur).next }.read_acquire(&g);
            // Safety: keys immutable; cur epoch-protected.
            let key = unsafe { &(*cur).key };
            if !bounds.contains(key) {
                match bounds.end_bound() {
                    // Ascending walk: past the end bound means done.
                    Bound::Included(e) | Bound::Excluded(e) if key > e => break,
                    _ => {}
                }
            } else if !is_deleted(succ_w) {
                // Present at visit time: clone the pair.
                // Safety: value immutable, node epoch-protected.
                if let Some(v) = unsafe { (*(*cur).val.get()).as_ref() } {
                    out.push((key.clone(), v.clone()));
                }
            }
            cur = without_mark(succ_w) as *mut ZNode<K, T>;
        }
        out
    }

    /// Clone the whole map in ascending key order (a `range(..)`).
    pub fn to_vec(&self) -> Vec<(K, T)> {
        self.range(..)
    }

    /// Racy O(n) length (quiescent use only).
    pub fn count(&self) -> usize {
        let g = pin_op();
        let mut n = 0;
        let mut cur = self.hdr().next.read(&g);
        while cur != 0 {
            // Safety: quiescent per the docs.
            let next = unsafe { &(*(cur as *mut ZNode<K, T>)).next }.read_acquire(&g);
            if !is_deleted(next) {
                n += 1;
            }
            cur = without_mark(next);
        }
        n
    }
}

impl<K, T> Default for LfSkipMap<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, T> KeyedMoveTarget<K, T> for LfSkipMap<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn insert_key_with<C: InsertCtx>(&self, key: K, elem: T, ctx: &mut C) -> InsertOutcome {
        let mut g = pin_op();
        let height = height_for(self.ticket.fetch_add(1, Ordering::Relaxed));
        let node = alloc_znode(key, elem, height);
        loop {
            // The kernel repins at its own restart points; `node` is
            // unpublished and ours, so it survives every restart.
            // Safety: node is ours until published.
            let key_ref = unsafe { &(*node).key };
            let pos = self.find(key_ref, &mut g);
            if !pos.cur.is_null() {
                // Safety: cur epoch-protected by find's op guard.
                if unsafe { &(*pos.cur).key } == key_ref {
                    // Duplicate key: genuine rejection (fails a move).
                    // Safety: never published at any level.
                    unsafe { free_unpublished_znode(node) };
                    return InsertOutcome::Rejected;
                }
            }
            // Safety: unpublished node.
            unsafe { &(*node).next }.store_word(pos.cur as usize);
            let r = ctx.scas(LinPoint {
                // Safety: prev allocation epoch-protected; a composed
                // capture promotes `hp` into an ENTRY hazard slot before
                // the commit so the protection outlives this epoch.
                word: unsafe { &*pos.prev_word },
                old: pos.cur as usize,
                new: node as usize,
                hp: pos.prev_alloc,
            });
            match r {
                ScasResult::Success => {
                    // The map already contains the node (level 0 is the
                    // linearization chain); the tower is an accelerator
                    // built after the fact by auxiliary CASes.
                    self.build_tower(node, &g);
                    return InsertOutcome::Inserted;
                }
                ScasResult::Fail => continue,
                ScasResult::Abort => {
                    // Safety: never published at any level.
                    unsafe { free_unpublished_znode(node) };
                    return InsertOutcome::Rejected;
                }
            }
        }
    }
}

impl<K, T> KeyedMoveSource<K, T> for LfSkipMap<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn remove_key_with<C: RemoveCtx<T>>(&self, key: &K, ctx: &mut C) -> RemoveOutcome<T> {
        let mut g = pin_op();
        loop {
            let pos = self.find(key, &mut g);
            let cur = pos.cur;
            // Safety: cur epoch-protected by find's op guard (non-null).
            if cur.is_null() || unsafe { &(*cur).key } != key {
                return RemoveOutcome::Empty;
            }
            // Safety: cur epoch-protected.
            let succ_w = unsafe { &(*cur).next }.read(&g);
            if is_deleted(succ_w) {
                continue; // someone else is removing it; re-find
            }
            // Element accessible before the linearization point (req. 4).
            // Safety: value immutable; cur epoch-protected.
            let val = match unsafe { (*(*cur).val.get()).as_ref() } {
                Some(v) => v.clone(),
                None => unreachable!("skip-map nodes always hold a value"),
            };
            // The linearization point: the level-0 logical-delete mark.
            let r = ctx.scas(
                LinPoint {
                    // Safety: cur epoch-protected; composed captures
                    // promote `hp` into an ENTRY hazard slot pre-commit.
                    word: unsafe { &(*cur).next },
                    old: succ_w,
                    new: succ_w | DEL_MARK,
                    hp: cur as usize,
                },
                &val,
            );
            match r {
                ScasResult::Success => {
                    // Freeze and sweep the tower (auxiliary), then try
                    // the level-0 physical unlink; a traversal will
                    // otherwise do it later.
                    self.unlink_tower(cur, &g);
                    if unsafe { &*pos.prev_word }.cas_word(cur as usize, succ_w) {
                        // Safety: we won the level-0 unlink.
                        unsafe { release_ref(cur) };
                    }
                    return RemoveOutcome::Removed(val);
                }
                ScasResult::Fail => continue,
                ScasResult::Abort => return RemoveOutcome::Aborted,
            }
        }
    }
}

impl<K, T> Drop for LfSkipMap<K, T>
where
    K: Ord + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    fn drop(&mut self) {
        // Exclusive teardown. Walk every level through the normal
        // reference discipline: each linked level releases one reference
        // (towers first, level 0 last), so every node — including one a
        // racing remover marked but no traversal ever swept — retires
        // exactly once, when its last level lets go.
        let g = lfc_hazard::pin();
        for level in (1..MAX_LEVEL).rev() {
            let mut cur = without_mark(self.hdr().tower[level - 1].load(Ordering::Acquire));
            while cur != 0 {
                let node = cur as *mut ZNode<K, T>;
                // Safety: exclusive teardown; marks only need stripping.
                let next = unsafe { &(*node).tower[level - 1] }.load(Ordering::Acquire);
                // Safety: this level's link is dropped right here.
                unsafe { release_ref(node) };
                cur = without_mark(next);
            }
        }
        let mut cur = without_mark(self.hdr().next.read(&g));
        while cur != 0 {
            let node = cur as *mut ZNode<K, T>;
            // Safety: exclusive teardown.
            let next = unsafe { &(*node).next }.read(&g);
            // Safety: the level-0 link is dropped right here.
            unsafe { release_ref(node) };
            cur = without_mark(next);
        }
        // Safety: unique teardown; the header is a plain block.
        unsafe {
            lfc_hazard::retire_with(
                self.header.as_ptr() as *mut u8,
                reclaim_zheader,
                lfc_hazard::RetireInfo {
                    bytes: std::mem::size_of::<ZHeader>(),
                    birth: lfc_hazard::BIRTH_UNKNOWN,
                    divert: Some(reclaim_zheader),
                },
            );
        }
    }
}

unsafe fn reclaim_zheader(p: *mut u8) {
    // Safety: retire contract; ZHeader has no drop glue.
    unsafe { lfc_alloc::free_block(p, Layout::new::<ZHeader>()) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_unique_inserts_and_range() {
        let m: LfSkipMap<u64, u64> = LfSkipMap::new();
        for k in [5u64, 1, 9, 3, 7] {
            assert!(m.insert(k, k * 10));
        }
        assert!(!m.insert(3, 31), "duplicate key rejected");
        assert_eq!(m.count(), 5);
        assert_eq!(m.get(&7), Some(70));
        assert_eq!(m.get(&4), None);
        assert_eq!(
            m.range(3..8),
            vec![(3, 30), (5, 50), (7, 70)],
            "half-open range, ascending"
        );
        assert_eq!(m.to_vec().len(), 5);
        assert_eq!(m.range(..=5).last(), Some(&(5, 50)));
    }

    #[test]
    fn remove_by_key() {
        let m: LfSkipMap<u64, String> = LfSkipMap::new();
        m.insert(2, "two".into());
        m.insert(1, "one".into());
        assert_eq!(m.remove(&2).as_deref(), Some("two"));
        assert_eq!(m.remove(&2), None);
        assert!(m.contains(&1));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn reinsert_after_remove_exercises_towers() {
        let m: LfSkipMap<u64, u64> = LfSkipMap::new();
        // Enough churn that many ticket values (and so many heights,
        // including tall towers) pass through the same keys.
        for round in 0..200 {
            for k in 0..16u64 {
                assert!(m.insert(k, round));
            }
            for k in 0..16u64 {
                assert_eq!(m.remove(&k), Some(round));
            }
        }
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn concurrent_disjoint_key_ranges() {
        let m: LfSkipMap<u64, u64> = LfSkipMap::new();
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let m = &m;
                sc.spawn(move || {
                    for k in 0..300 {
                        let key = t * 1_000 + k;
                        assert!(m.insert(key, key * 2));
                    }
                    for k in 0..300 {
                        let key = t * 1_000 + k;
                        assert_eq!(m.remove(&key), Some(key * 2));
                    }
                });
            }
        });
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn concurrent_same_key_contention() {
        use std::sync::atomic::{AtomicI64, Ordering as SOrd};
        let m: LfSkipMap<u64, u64> = LfSkipMap::new();
        let balance = AtomicI64::new(0);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let m = &m;
                let balance = &balance;
                sc.spawn(move || {
                    for i in 0..2_000 {
                        if i % 2 == 0 {
                            if m.insert(42, i) {
                                balance.fetch_add(1, SOrd::Relaxed);
                            }
                        } else if m.remove(&42).is_some() {
                            balance.fetch_sub(1, SOrd::Relaxed);
                        }
                    }
                });
            }
        });
        let residual = balance.load(SOrd::Relaxed);
        assert_eq!(residual, m.count() as i64);
        assert!(residual == 0 || residual == 1);
    }

    #[test]
    fn range_under_concurrent_churn_stays_sorted() {
        let m: LfSkipMap<u64, u64> = LfSkipMap::new();
        for k in 0..64u64 {
            m.insert(k * 2, k);
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|sc| {
            let (mr, mw, stop) = (&m, &m, &stop);
            sc.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = ((i * 7) % 128) | 1; // odd keys churn
                    mw.insert(k, i);
                    mw.remove(&k);
                    i += 1;
                }
            });
            for _ in 0..200 {
                let snap = mr.range(10..100);
                // Ascending, within bounds, and every even (stable) key
                // present.
                assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
                assert!(snap.iter().all(|(k, _)| (10..100).contains(k)));
                let evens: Vec<u64> = snap
                    .iter()
                    .map(|(k, _)| *k)
                    .filter(|k| k % 2 == 0)
                    .collect();
                assert_eq!(evens, (5..50).map(|k| k * 2).collect::<Vec<_>>());
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn drop_reclaims_values() {
        use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as SOrd};
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        #[derive(Clone)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, SOrd::SeqCst);
            }
        }
        let before = DROPS.load(SOrd::SeqCst);
        {
            let m: LfSkipMap<u64, D> = LfSkipMap::new();
            for k in 0..30 {
                m.insert(k, D);
            }
        }
        crate::test_util::flush_until(|| DROPS.load(SOrd::SeqCst) - before == 30);
        assert_eq!(DROPS.load(SOrd::SeqCst) - before, 30);
    }

    #[test]
    fn heights_are_geometricish() {
        let mut counts = [0usize; MAX_LEVEL + 1];
        for t in 1..=4096usize {
            counts[height_for(t)] += 1;
        }
        assert!(counts[1] > 1500, "about half the towers are height 1");
        assert!(counts[2] > 700, "about a quarter are height 2");
        assert!(
            (3..=MAX_LEVEL).map(|h| counts[h]).sum::<usize>() > 500,
            "tall towers exist"
        );
    }
}
