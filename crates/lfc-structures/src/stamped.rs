//! Treiber stack with a *stamped* top pointer — the ABA mitigation the
//! paper's §7 discussion proposes:
//!
//! > "The problem can be alleviated by adding a counter to the top pointer
//! > in the stack, removing the possibility of the ABA-problem occurring.
//! > The downside with this solution is that it somewhat lowers the
//! > performance of the normal insert and remove operations."
//!
//! The top word packs a 16-bit stamp into the pointer's high bits; every
//! successful push/pop bumps it, so a delayed DCAS helper whose expected
//! `old2` was consumed can never match a *recreated* top value and false
//! helping disappears (measured by `lfc_dcas::counters::stale_mark_reverts`
//! in the `stamped_ablation` bench).

use crate::node::{
    alloc_node, alloc_solo_header, clone_val, free_unpublished_node, retire_node,
    retire_solo_header, Node, SoloHeader,
};
use lfc_core::{
    InsertCtx, InsertOutcome, LinPoint, MoveSource, MoveTarget, NormalCas, RemoveCtx,
    RemoveOutcome, ScasResult,
};
use lfc_hazard::{pin, pin_op};
use lfc_runtime::{Backoff, BackoffCfg};
use std::ptr::NonNull;

const STAMP_SHIFT: u32 = 48;
const ADDR_MASK: usize = (1 << STAMP_SHIFT) - 1;

#[inline]
fn pack(addr: usize, stamp: usize) -> usize {
    debug_assert_eq!(addr & !ADDR_MASK, 0, "node address exceeds 48 bits");
    addr | (stamp << STAMP_SHIFT)
}

#[inline]
fn addr_of(w: usize) -> usize {
    w & ADDR_MASK
}

#[inline]
fn stamp_of(w: usize) -> usize {
    w >> STAMP_SHIFT
}

/// A move-ready Treiber stack whose top pointer carries a version stamp.
pub struct StampedStack<T: Clone + Send + Sync + 'static> {
    header: NonNull<SoloHeader>,
    backoff: BackoffCfg,
    _marker: std::marker::PhantomData<T>,
}

// Safety: see `TreiberStack`.
unsafe impl<T: Clone + Send + Sync + 'static> Send for StampedStack<T> {}
unsafe impl<T: Clone + Send + Sync + 'static> Sync for StampedStack<T> {}

impl<T: Clone + Send + Sync + 'static> StampedStack<T> {
    /// Empty stack without backoff.
    pub fn new() -> Self {
        Self::with_backoff(BackoffCfg::NONE)
    }

    /// Empty stack with the given CAS-failure backoff.
    pub fn with_backoff(cfg: BackoffCfg) -> Self {
        StampedStack {
            header: alloc_solo_header(0),
            backoff: cfg,
            _marker: std::marker::PhantomData,
        }
    }

    #[inline]
    fn top(&self) -> &lfc_dcas::DAtomic {
        // Safety: header lives until Drop.
        &unsafe { self.header.as_ref() }.word
    }

    #[inline]
    fn header_addr(&self) -> usize {
        self.header.as_ptr() as usize
    }

    /// Push (lock-free).
    pub fn push(&self, v: T) {
        let r = self.insert_with(v, &mut NormalCas);
        debug_assert_eq!(r, InsertOutcome::Inserted);
    }

    /// Pop (lock-free).
    pub fn pop(&self) -> Option<T> {
        match self.remove_with(&mut NormalCas) {
            RemoveOutcome::Removed(v) => Some(v),
            RemoveOutcome::Empty => None,
            RemoveOutcome::Aborted => unreachable!("NormalCas never aborts"),
        }
    }

    /// Whether the stack was observed empty.
    pub fn is_empty(&self) -> bool {
        let g = pin();
        addr_of(self.top().read(&g)) == 0
    }

    /// Racy O(n) count (quiescent use only).
    pub fn count(&self) -> usize {
        let g = pin_op();
        let mut n = 0;
        let mut cur = addr_of(self.top().read(&g));
        while cur != 0 {
            n += 1;
            // Safety: quiescent per the docs.
            cur = unsafe { &(*(cur as *mut Node<T>)).next }.read_acquire(&g);
        }
        n
    }
}

impl<T: Clone + Send + Sync + 'static> Default for StampedStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + Send + Sync + 'static> MoveTarget<T> for StampedStack<T> {
    fn insert_with<C: InsertCtx>(&self, elem: T, ctx: &mut C) -> InsertOutcome {
        // No operation epoch: push never dereferences a node (see Treiber).
        let g = pin();
        let node = alloc_node(Some(elem));
        let mut bo = Backoff::new(self.backoff);
        loop {
            let lw = self.top().read(&g);
            // The node's next holds the *unstamped* successor pointer.
            // Safety: unpublished node.
            unsafe { &(*node).next }.store_word(addr_of(lw));
            match ctx.scas(LinPoint {
                word: self.top(),
                old: lw,
                new: pack(node as usize, stamp_of(lw).wrapping_add(1) & 0xFFFF),
                hp: self.header_addr(),
            }) {
                ScasResult::Abort => {
                    // Safety: never published.
                    unsafe { free_unpublished_node(node) };
                    return InsertOutcome::Rejected;
                }
                ScasResult::Success => return InsertOutcome::Inserted,
                ScasResult::Fail => bo.fail(),
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> MoveSource<T> for StampedStack<T> {
    fn remove_with<C: RemoveCtx<T>>(&self, ctx: &mut C) -> RemoveOutcome<T> {
        let mut g = pin_op();
        let mut bo = Backoff::new(self.backoff);
        loop {
            // Ejection check (PR 6): see TreiberStack.
            g.repin_if_ejected();
            let lw = self.top().read(&g);
            let ltop = addr_of(lw);
            if ltop == 0 {
                return RemoveOutcome::Empty;
            }
            let node = ltop as *mut Node<T>;
            // Safety: ltop was reachable through `top` inside this epoch.
            let val = unsafe { clone_val(node) };
            let lnext = unsafe { &(*node).next }.read_acquire(&g);
            let r = ctx.scas(
                LinPoint {
                    word: self.top(),
                    old: lw,
                    new: pack(lnext, stamp_of(lw).wrapping_add(1) & 0xFFFF),
                    hp: self.header_addr(),
                },
                &val,
            );
            match r {
                ScasResult::Success => {
                    // Safety: unlinked.
                    unsafe { retire_node(node) };
                    return RemoveOutcome::Removed(val);
                }
                ScasResult::Fail => bo.fail(),
                ScasResult::Abort => return RemoveOutcome::Aborted,
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for StampedStack<T> {
    fn drop(&mut self) {
        let g = pin();
        let mut cur = addr_of(self.top().read(&g));
        while cur != 0 {
            let node = cur as *mut Node<T>;
            // Safety: exclusive teardown.
            let next = unsafe { &(*node).next }.read(&g);
            unsafe { retire_node(node) };
            cur = next;
        }
        // Safety: unique teardown.
        unsafe { retire_solo_header(self.header) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let addr = 0x007F_FFFF_FFF8_usize;
        for stamp in [0usize, 1, 0xFFFF] {
            let w = pack(addr, stamp);
            assert_eq!(addr_of(w), addr);
            assert_eq!(stamp_of(w), stamp);
            assert!(lfc_dcas::word::is_raw(w), "stamped words stay raw-kind");
        }
    }

    #[test]
    fn lifo_order() {
        let s: StampedStack<u64> = StampedStack::new();
        for i in 0..64 {
            s.push(i);
        }
        for i in (0..64).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn stamp_advances_per_operation() {
        let s: StampedStack<u64> = StampedStack::new();
        let g = pin();
        let s0 = stamp_of(s.top().read(&g));
        s.push(1);
        let s1 = stamp_of(s.top().read(&g));
        assert_eq!(s1, (s0 + 1) & 0xFFFF);
        s.pop();
        let s2 = stamp_of(s.top().read(&g));
        assert_eq!(s2, (s0 + 2) & 0xFFFF);
    }

    #[test]
    fn concurrent_conservation() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let s: StampedStack<u64> = StampedStack::new();
        let sum = AtomicU64::new(0);
        let taken = AtomicU64::new(0);
        std::thread::scope(|sc| {
            for t in 0..2u64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..4_000 {
                        s.push(t * 4_000 + i + 1);
                    }
                });
            }
            for _ in 0..2 {
                let s = &s;
                let sum = &sum;
                let taken = &taken;
                sc.spawn(move || {
                    while taken.load(Ordering::Relaxed) < 8_000 {
                        if let Some(v) = s.pop() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            taken.fetch_add(1, Ordering::Relaxed);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), (1..=8_000u64).sum::<u64>());
    }
}
