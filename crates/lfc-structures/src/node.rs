//! Node and header plumbing shared by the move-ready structures.
//!
//! All nodes and structure headers are allocated from the paper's pooling
//! memory manager (`lfc-alloc`) and given back exclusively through the
//! unified reclamation domain (`lfc-hazard::retire`), because DCAS helpers
//! may write into a node's `next` word — or into a structure's
//! `head`/`tail`/`top` header word — after the operation that published
//! the descriptor has returned. Since PR 3 the structures protect their
//! traversals with one operation epoch (`lfc_hazard::pin_op`) instead of
//! per-node hazards; a retired block is freed only once it is out of reach
//! of **both** regimes (older than every active epoch *and* absent from
//! every hazard slot). Hazard-managed headers are the Rust-soundness
//! addition documented in DESIGN.md §2.

use lfc_dcas::{DAtomic, Word};
use lfc_hazard::RetireInfo;
use std::alloc::Layout;
use std::cell::UnsafeCell;
use std::ptr::NonNull;

/// A singly linked node carrying an optional value (the queue's dummy node
/// holds `None`).
#[repr(C)]
pub(crate) struct Node<T> {
    /// Successor word; may transiently hold a DCAS descriptor.
    pub next: DAtomic,
    /// Written once before the node is published; read (cloned) by removers
    /// before their linearization point; dropped at reclamation.
    pub val: UnsafeCell<Option<T>>,
    /// Era the node was allocated in (plain write before publication,
    /// plain read at retire): the zombie partition's evidence that a
    /// stalled reader cannot reach this node (DESIGN.md, PR 6).
    pub birth: usize,
}

const fn node_layout<T>() -> Layout {
    Layout::new::<Node<T>>()
}

/// Allocate and initialize a node. The returned pointer is at least
/// 8-aligned, i.e. a valid raw protocol word.
pub(crate) fn alloc_node<T>(val: Option<T>) -> *mut Node<T> {
    let p = lfc_alloc::alloc_block(node_layout::<T>());
    unsafe { init_node(p, val) }
}

/// Fallible [`alloc_node`]: surfaces exhaustion (or the `structures.node`
/// fault site) as `Err` instead of panicking. On failure the element is
/// handed back so the caller keeps ownership.
pub(crate) fn try_alloc_node<T>(
    val: Option<T>,
) -> Result<*mut Node<T>, (Option<T>, lfc_alloc::AllocError)> {
    if lfc_runtime::fault::check("structures.node") {
        return Err((val, lfc_alloc::AllocError));
    }
    match lfc_alloc::try_alloc_block(node_layout::<T>()) {
        Ok(p) => Ok(unsafe { init_node(p, val) }),
        Err(e) => Err((val, e)),
    }
}

/// # Safety
///
/// `p` must be a fresh block of `node_layout::<T>()`.
unsafe fn init_node<T>(p: NonNull<u8>, val: Option<T>) -> *mut Node<T> {
    let p = p.cast::<Node<T>>();
    // Safety: fresh, correctly sized and aligned block.
    unsafe {
        p.as_ptr().write(Node {
            next: DAtomic::new(0),
            val: UnsafeCell::new(val),
            birth: lfc_hazard::birth_era(),
        });
    }
    debug_assert_eq!(p.as_ptr() as usize & 0b111, 0);
    p.as_ptr()
}

/// Reclaimer registered with the hazard domain: drops the value and returns
/// the block to the pool.
pub(crate) unsafe fn reclaim_node<T>(p: *mut u8) {
    let node = p as *mut Node<T>;
    // Safety: retire contract — last reference, initialized node.
    unsafe {
        std::ptr::drop_in_place(node);
        lfc_alloc::free_block(p, node_layout::<T>());
    }
}

/// Zombie-tier fallback free (see `lfc-hazard` crate docs): return the
/// block to its type-stable pool **without** running drop glue — the value
/// leaks, bounded per stall, but a reader that violates the park
/// assumption lands on mapped pooled memory instead of recycled bytes.
pub(crate) unsafe fn divert_node<T>(p: *mut u8) {
    // Safety: retire contract; contents intentionally not dropped.
    unsafe { lfc_alloc::free_block(p, node_layout::<T>()) };
}

/// Defer-free a node that was published (reachable through shared memory).
///
/// # Safety
///
/// The node must be unlinked per the hazard-domain retire contract.
pub(crate) unsafe fn retire_node<T>(p: *mut Node<T>) {
    // Safety: the node is unlinked but still live; reading its plain
    // birth field is the retirer's prerogative (single retire call).
    let birth = unsafe { (*p).birth };
    // Safety: forwarded.
    unsafe {
        lfc_hazard::retire_with(
            p as *mut u8,
            reclaim_node::<T>,
            RetireInfo {
                bytes: std::mem::size_of::<Node<T>>(),
                birth,
                divert: Some(divert_node::<T>),
            },
        )
    };
}

/// Free a node that was never published (insert abort path, paper Q15–Q17 /
/// S8–S10).
///
/// # Safety
///
/// The node must be unpublished and uniquely owned.
pub(crate) unsafe fn free_unpublished_node<T>(p: *mut Node<T>) {
    // Safety: unique owner.
    unsafe { reclaim_node::<T>(p as *mut u8) };
}

/// Clone the value out of a (hazard-protected) node.
///
/// # Safety
///
/// `p` must point to a live node holding `Some` value, protected against
/// reclamation by the caller.
pub(crate) unsafe fn clone_val<T: Clone>(p: *mut Node<T>) -> T {
    // Safety: value words are written once before publication; concurrent
    // readers only take shared references.
    match unsafe { (*(*p).val.get()).as_ref() } {
        Some(v) => v.clone(),
        None => unreachable!("value nodes always hold Some; only the dummy holds None"),
    }
}

/// A two-word structure header (queue). Kept in its own pooled allocation so
/// helpers can pin it before writing (see module docs).
#[repr(C)]
pub(crate) struct PairHeader {
    pub first: DAtomic,
    pub second: DAtomic,
}

/// A one-word structure header (stack, slot).
#[repr(C)]
pub(crate) struct SoloHeader {
    pub word: DAtomic,
}

pub(crate) fn alloc_pair_header(first: Word, second: Word) -> NonNull<PairHeader> {
    let p = lfc_alloc::alloc_block(Layout::new::<PairHeader>()).cast::<PairHeader>();
    // Safety: fresh block.
    unsafe {
        p.as_ptr().write(PairHeader {
            first: DAtomic::new(first),
            second: DAtomic::new(second),
        });
    }
    p
}

/// Fallible [`alloc_pair_header`] (`structures.header` fault site): lets
/// constructors degrade to `Err` under memory pressure instead of aborting.
pub(crate) fn try_alloc_pair_header(
    first: Word,
    second: Word,
) -> Result<NonNull<PairHeader>, lfc_alloc::AllocError> {
    if lfc_runtime::fault::check("structures.header") {
        return Err(lfc_alloc::AllocError);
    }
    let p = lfc_alloc::try_alloc_block(Layout::new::<PairHeader>())?.cast::<PairHeader>();
    // Safety: fresh block.
    unsafe {
        p.as_ptr().write(PairHeader {
            first: DAtomic::new(first),
            second: DAtomic::new(second),
        });
    }
    Ok(p)
}

pub(crate) fn alloc_solo_header(word: Word) -> NonNull<SoloHeader> {
    let p = lfc_alloc::alloc_block(Layout::new::<SoloHeader>()).cast::<SoloHeader>();
    // Safety: fresh block.
    unsafe {
        p.as_ptr().write(SoloHeader {
            word: DAtomic::new(word),
        });
    }
    p
}

/// Fallible [`alloc_solo_header`] (`structures.header` fault site).
pub(crate) fn try_alloc_solo_header(
    word: Word,
) -> Result<NonNull<SoloHeader>, lfc_alloc::AllocError> {
    if lfc_runtime::fault::check("structures.header") {
        return Err(lfc_alloc::AllocError);
    }
    let p = lfc_alloc::try_alloc_block(Layout::new::<SoloHeader>())?.cast::<SoloHeader>();
    // Safety: fresh block.
    unsafe {
        p.as_ptr().write(SoloHeader {
            word: DAtomic::new(word),
        });
    }
    Ok(p)
}

pub(crate) unsafe fn reclaim_pair_header(p: *mut u8) {
    // No drop glue: DAtomics are plain words.
    unsafe { lfc_alloc::free_block(p, Layout::new::<PairHeader>()) };
}

pub(crate) unsafe fn reclaim_solo_header(p: *mut u8) {
    unsafe { lfc_alloc::free_block(p, Layout::new::<SoloHeader>()) };
}

/// Retire a header at structure drop.
///
/// # Safety
///
/// Must be the structure's unique teardown path.
pub(crate) unsafe fn retire_pair_header(p: NonNull<PairHeader>) {
    // Headers carry no drop glue, so the divert path *is* the reclaimer:
    // a zombie-pinned header frees fully instead of being retained.
    unsafe {
        lfc_hazard::retire_with(
            p.as_ptr() as *mut u8,
            reclaim_pair_header,
            RetireInfo {
                bytes: std::mem::size_of::<PairHeader>(),
                birth: lfc_hazard::BIRTH_UNKNOWN,
                divert: Some(reclaim_pair_header),
            },
        )
    };
}

/// See [`retire_pair_header`].
///
/// # Safety
///
/// Must be the structure's unique teardown path.
pub(crate) unsafe fn retire_solo_header(p: NonNull<SoloHeader>) {
    unsafe {
        lfc_hazard::retire_with(
            p.as_ptr() as *mut u8,
            reclaim_solo_header,
            RetireInfo {
                bytes: std::mem::size_of::<SoloHeader>(),
                birth: lfc_hazard::BIRTH_UNKNOWN,
                divert: Some(reclaim_solo_header),
            },
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_word_aligned() {
        let n = alloc_node::<u64>(Some(1));
        assert_eq!(n as usize & 0b111, 0);
        unsafe { free_unpublished_node(n) };
    }

    #[test]
    fn node_value_roundtrip() {
        let n = alloc_node::<String>(Some("hello".to_string()));
        assert_eq!(unsafe { clone_val(n) }, "hello");
        unsafe { free_unpublished_node(n) };
    }

    #[test]
    fn drop_counts_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let before = DROPS.load(Ordering::SeqCst);
        let n = alloc_node::<D>(Some(D));
        unsafe { free_unpublished_node(n) };
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
    }

    #[test]
    fn headers_allocate_and_free() {
        let h = alloc_pair_header(0, 8);
        unsafe {
            assert_eq!(h.as_ref().first.load_word(), 0);
            assert_eq!(h.as_ref().second.load_word(), 8);
            reclaim_pair_header(h.as_ptr() as *mut u8);
        }
        let s = alloc_solo_header(16);
        unsafe {
            assert_eq!(s.as_ref().word.load_word(), 16);
            reclaim_solo_header(s.as_ptr() as *mut u8);
        }
    }
}
