//! Move-ready concurrent data objects and their baselines.
//!
//! * [`MsQueue`] — the Michael–Scott lock-free queue, move-ready (paper §5.1)
//! * [`TreiberStack`] — the Treiber lock-free stack, move-ready (paper §5.2)
//! * [`StampedStack`] — Treiber with a version-stamped top (paper §7's ABA fix)
//! * [`OneSlot`] — a bounded single-element container (exercises move aborts)
//! * [`PlainMsQueue`], [`PlainTreiberStack`] — textbook baselines without the
//!   `scas` transformation, for the normal-operation overhead comparison
//! * [`LockQueue`], [`LockStack`], [`lock_move`] — the paper's blocking
//!   test-test-and-set baseline and its two-lock composed move
//!
//! All lock-free objects share the pooling memory manager (`lfc-alloc`) and
//! the hazard-pointer domain (`lfc-hazard`), as in the paper's evaluation.

#![warn(missing_docs)]

mod node;
pub(crate) mod traverse;

#[doc(hidden)]
pub mod sync;

pub mod elim;
pub mod hash_map;
pub mod locked;
pub mod ms_queue;
pub mod one_slot;
pub mod ordered_list;
pub mod plain;
pub mod skip_map;
pub mod stamped;
pub mod treiber;

pub use hash_map::LfHashMap;
pub use locked::{lock_move, LockQueue, LockStack, Locked};
pub use ms_queue::MsQueue;
pub use one_slot::OneSlot;
pub use ordered_list::OrderedSet;
pub use plain::{PlainMsQueue, PlainTreiberStack};
pub use skip_map::LfSkipMap;
pub use stamped::StampedStack;
pub use treiber::TreiberStack;

/// Seeded-bug / exploration switches for the model checker (mirrors
/// `lfc_hazard::model_toggles`): compiled only under `--cfg lfc_model`.
#[cfg(lfc_model)]
pub mod model_toggles {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Route plain stack push/pop through the elimination exchanger
    /// *before* the `top` CAS, so the model scenario reaches collision
    /// interleavings without having to manufacture CAS failures first.
    pub static FORCE_ELIM: AtomicBool = AtomicBool::new(false);

    pub(crate) fn force_elim() -> bool {
        FORCE_ELIM.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    /// Flush the reclamation domain until `cond` holds or a 30 s deadline
    /// passes, then report whether it held. Drop-count assertions need
    /// this since PR 3: a sibling test pinned in an epoch spanning our
    /// retires defers reclamation to a later scan.
    pub(crate) fn flush_until(cond: impl Fn() -> bool) -> bool {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while !cond() && std::time::Instant::now() < deadline {
            lfc_hazard::flush();
            std::thread::yield_now();
        }
        cond()
    }
}
