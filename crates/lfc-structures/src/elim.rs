//! Elimination backoff for the Treiber stack (PR 7).
//!
//! A stack's `top` word is a sequential bottleneck: every push and pop
//! linearizes there. The classic observation (Hendler, Shavit & Yerushalmi)
//! is that a *colliding* push/pop pair needs no stack at all — the pop may
//! take the push's element directly, as if the push linearized immediately
//! before the pop — so contention can be bled off into a side channel that
//! never touches `top`.
//!
//! # Protocol
//!
//! The exchanger is a small array of cache-padded slots. A slot holds 0 or
//! the address of a waiting pusher's **unpublished node** (allocated for
//! the normal push path, value already written, never linked):
//!
//! * **Pusher** (after a failed `top` CAS): CAS its slot `0 → node`
//!   (Release: publishes the value write). Wait a short window, yielding —
//!   on an oversubscribed core a collision partner cannot run otherwise.
//!   If the slot no longer holds `node`, a popper claimed it: the push is
//!   done and the *popper* owns the node. Otherwise withdraw with a CAS
//!   `node → 0`: success keeps ownership and resumes the normal loop;
//!   failure again means a popper claimed it in the window.
//! * **Popper** (after a failed `top` CAS): scan the slots; on a nonzero
//!   word `w`, CAS `w → 0` (Acquire: pairs with the pusher's Release).
//!   Winning the claim transfers *whole-node ownership*: the popper takes
//!   the value out and frees the node, then returns it as its pop result.
//!
//! # Correctness
//!
//! *Linearizability*: the claim CAS is the shared linearization point —
//! the push takes effect immediately before the pop, an order consistent
//! with both (neither operation had linearized on `top`, and the element
//! was never visible to anyone else). *Ownership*: a slot only ever
//! transitions `0 → node` (by the node's owner) and `node → 0` (by owner
//! withdrawal or popper claim); the CAS makes those mutually exclusive, so
//! exactly one side owns the node afterwards. *ABA*: a recycled node
//! address re-posted in the same slot is harmless — the claim hands over
//! whatever offer is current, and the waiting pusher cannot confuse
//! another offer for its own while it still owns its node (the address
//! cannot be reused before the pusher gives it up).
//!
//! Compositions never take this path: [`lfc_core::RemoveCtx::eliminable`]
//! is `false` for every composed context, because a composed operation's
//! linearization point must be a *captured CAS triple* — a cancelled pair
//! has no word to capture.

use crate::node::{free_unpublished_node, Node};
use crate::sync::{spin_loop, yield_now, AtomicUsize, Ordering};
use lfc_runtime::CachePadded;
use std::marker::PhantomData;

/// Exchanger width. Small on purpose: elimination only pays on *hot*
/// stacks, where a handful of slots already catches most collisions, and
/// poppers scan every slot.
pub(crate) const ELIM_SLOTS: usize = 4;

/// Rounds a pusher camps on its slot. Mostly yields: the partner popper
/// must actually run to collide, and on an oversubscribed core a pure spin
/// only burns the partner's quantum.
#[cfg(not(lfc_model))]
const ELIM_WAIT: u32 = 32;
#[cfg(lfc_model)]
const ELIM_WAIT: u32 = 2;

/// The padded exchanger array, embedded in each stack.
pub(crate) struct ElimArray<T> {
    slots: [CachePadded<AtomicUsize>; ELIM_SLOTS],
    _marker: PhantomData<T>,
}

impl<T: Clone + Send + Sync + 'static> ElimArray<T> {
    pub(crate) fn new() -> Self {
        ElimArray {
            slots: std::array::from_fn(|_| CachePadded::new(AtomicUsize::new(0))),
            _marker: PhantomData,
        }
    }

    /// Offer `node` (unpublished, value written) for elimination.
    ///
    /// Returns `true` if a popper claimed it — the push is complete and
    /// the node now belongs to the popper. Returns `false` if the offer
    /// was withdrawn (or never posted): the caller still owns the node
    /// and resumes its normal loop.
    ///
    /// # Safety
    ///
    /// `node` must be unpublished and uniquely owned by the caller.
    pub(crate) unsafe fn offer_push(&self, node: *mut Node<T>, lane: usize) -> bool {
        let slot = &self.slots[lane % ELIM_SLOTS];
        let addr = node as usize;
        // Release: a claimer's Acquire read of `addr` must see the value
        // written into the node before the offer.
        if slot
            .compare_exchange(0, addr, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        let mut i = 0;
        while i < ELIM_WAIT {
            if slot.load(Ordering::Relaxed) != addr {
                // Claimed: do not touch the node again.
                counters::note_pair();
                return true;
            }
            if i % 4 == 3 {
                yield_now();
            } else {
                spin_loop();
            }
            i += 1;
        }
        // Withdraw. Failure means a popper won the claim in the window.
        let won = slot
            .compare_exchange(addr, 0, Ordering::Relaxed, Ordering::Relaxed)
            .is_err();
        if won {
            counters::note_pair();
        }
        won
    }

    /// Try to claim any offered push; on success the popper owns the node:
    /// the value is taken out, the node freed, and the value returned as
    /// the pop result.
    pub(crate) fn try_take(&self, lane: usize) -> Option<T> {
        for k in 0..ELIM_SLOTS {
            let slot = &self.slots[(lane + k) % ELIM_SLOTS];
            let w = slot.load(Ordering::Relaxed);
            if w == 0 {
                continue;
            }
            // Acquire: pairs with the offering pusher's Release, making
            // the node's value write visible before we read it.
            if slot
                .compare_exchange(w, 0, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                let node = w as *mut Node<T>;
                // Safety: winning the claim CAS transferred exclusive
                // ownership of the (unpublished) node to us.
                let val = unsafe { (*(*node).val.get()).take() };
                // Safety: ours, unpublished.
                unsafe { free_unpublished_node(node) };
                return Some(val.expect("offered nodes always hold a value"));
            }
        }
        None
    }

    /// Whether any slot currently holds an offer (teardown sanity checks).
    #[cfg(test)]
    pub(crate) fn is_quiet(&self) -> bool {
        self.slots.iter().all(|s| s.load(Ordering::Relaxed) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{alloc_node, free_unpublished_node};

    #[test]
    fn solo_offer_withdraws_cleanly() {
        let e: ElimArray<u64> = ElimArray::new();
        let n = alloc_node(Some(5u64));
        // No popper around: the offer must come back withdrawn and the
        // caller keeps ownership.
        assert!(!unsafe { e.offer_push(n, 0) });
        assert!(e.is_quiet());
        unsafe { free_unpublished_node(n) };
    }

    #[test]
    fn claim_transfers_the_value_and_frees_the_node() {
        let e: ElimArray<u64> = ElimArray::new();
        let n = alloc_node(Some(7u64));
        // Park the offer directly (offer_push would withdraw it before a
        // same-thread popper could run).
        e.slots[1]
            .compare_exchange(0, n as usize, Ordering::Release, Ordering::Relaxed)
            .unwrap();
        // The popper scans every lane, whatever its own lane is.
        assert_eq!(e.try_take(3), Some(7));
        assert!(e.is_quiet());
        assert_eq!(e.try_take(0), None);
    }

    #[test]
    fn paired_threads_eliminate() {
        // A parked pusher and a looping popper must eventually collide.
        let e: std::sync::Arc<ElimArray<u64>> = std::sync::Arc::new(ElimArray::new());
        let e2 = e.clone();
        let popper = std::thread::spawn(move || loop {
            if let Some(v) = e2.try_take(0) {
                return v;
            }
            std::thread::yield_now();
        });
        let mut v = 41u64;
        loop {
            v += 1;
            let n = alloc_node(Some(v));
            if unsafe { e.offer_push(n, 0) } {
                break;
            }
            unsafe { free_unpublished_node(n) };
        }
        assert_eq!(popper.join().unwrap(), v);
        assert!(e.is_quiet());
    }
}

/// Elimination tallies (plain `std` atomics, diagnostics only).
pub mod counters {
    use std::sync::atomic::{AtomicU64, Ordering};

    static PAIRS: AtomicU64 = AtomicU64::new(0);

    pub(super) fn note_pair() {
        PAIRS.fetch_add(1, Ordering::Relaxed);
    }

    /// Push/pop pairs cancelled through the exchanger (process-wide).
    pub fn eliminated_pairs() -> u64 {
        PAIRS.load(Ordering::Relaxed)
    }
}
