//! Elimination backoff for the Treiber stack (PR 7).
//!
//! A stack's `top` word is a sequential bottleneck: every push and pop
//! linearizes there. The classic observation (Hendler, Shavit & Yerushalmi)
//! is that a *colliding* push/pop pair needs no stack at all — the pop may
//! take the push's element directly, as if the push linearized immediately
//! before the pop — so contention can be bled off into a side channel that
//! never touches `top`.
//!
//! # Protocol
//!
//! The exchanger is a small array of cache-padded slots. A slot holds 0 or
//! the address of a waiting pusher's **unpublished node** (allocated for
//! the normal push path, value already written, never linked):
//!
//! * **Pusher** (after a failed `top` CAS): park the node's address in the
//!   [`slot::ELIM`] hazard (the ABA defense, see *Correctness*), then CAS
//!   its slot `0 → node` (Release: publishes the value write). Wait a
//!   short window, yielding — on an oversubscribed core a collision
//!   partner cannot run otherwise. If the slot no longer holds `node`, a
//!   popper claimed it: the push is done and the *popper* owns the node.
//!   Otherwise withdraw with a CAS `node → 0`: success keeps ownership and
//!   resumes the normal loop; failure again means a popper claimed it in
//!   the window. Either way the hazard is cleared on exit.
//! * **Popper** (after a failed `top` CAS): scan the slots; on a nonzero
//!   word `w`, CAS `w → 0` (Acquire: pairs with the pusher's Release).
//!   Winning the claim transfers *whole-node ownership*: the popper takes
//!   the value out, **retires** the node through the hazard domain, and
//!   returns the value as its pop result.
//!
//! # Correctness
//!
//! *Linearizability*: the claim CAS is the shared linearization point —
//! the push takes effect immediately before the pop, an order consistent
//! with both (neither operation had linearized on `top`, and the element
//! was never visible to anyone else). *Ownership*: a slot only ever
//! transitions `0 → node` (by the node's owner) and `node → 0` (by owner
//! withdrawal or popper claim); the CAS makes those mutually exclusive, so
//! exactly one side owns the node afterwards.
//!
//! *ABA*: the dangerous reuse is a claimed node's address coming back from
//! the allocator and being re-offered **into the same slot** while the
//! original pusher still camps — the camping pusher would read `slot ==
//! addr`, believe its own offer is still current, and its withdraw CAS
//! `addr → 0` could *steal* the new offer (the second pusher then
//! completes as "eliminated" with no consuming pop, while the first
//! republishes a node it no longer owns). The ownership CAS argument above
//! cannot exclude this on its own: ownership transfers at claim time, but
//! the pusher only learns of the claim at observation time, and in that
//! window a freed address is free to recycle. The defense is to close the
//! reuse window outright: the pusher parks `addr` in its [`slot::ELIM`]
//! hazard *before* offering and clears it only after the outcome is
//! decided, and a claiming popper hands the node to [`retire_node`]
//! instead of freeing it. Reclamation of the node therefore cannot
//! complete while the pusher camps — every scan that could free it runs
//! after the popper's retire, which is ordered after the claim CAS's
//! Acquire read of the offer's Release publication, which the hazard store
//! precedes; the sweep consequently observes the hazard — so `slot ==
//! addr` always means "my own offer", and the withdraw CAS can only ever
//! withdraw it. (Named hazards also survive ejection and zombie
//! partitioning, so a pusher descheduled mid-camp keeps its protection.)
//!
//! Compositions never take this path: [`lfc_core::RemoveCtx::eliminable`]
//! is `false` for every composed context, because a composed operation's
//! linearization point must be a *captured CAS triple* — a cancelled pair
//! has no word to capture.

use crate::node::{retire_node, Node};
use crate::sync::{AtomicUsize, Ordering};
use lfc_hazard::{slot, Guard};
use lfc_runtime::CachePadded;
use std::marker::PhantomData;

/// Exchanger width. Small on purpose: elimination only pays on *hot*
/// stacks, where a handful of slots already catches most collisions, and
/// poppers scan every slot.
pub(crate) const ELIM_SLOTS: usize = 4;

/// Rounds a pusher camps on its slot. Mostly yields: the partner popper
/// must actually run to collide, and on an oversubscribed core a pure spin
/// only burns the partner's quantum.
#[cfg(not(lfc_model))]
const ELIM_WAIT: u32 = 32;
#[cfg(lfc_model)]
const ELIM_WAIT: u32 = 2;

/// The padded exchanger array, embedded in each stack.
pub(crate) struct ElimArray<T> {
    slots: [CachePadded<AtomicUsize>; ELIM_SLOTS],
    _marker: PhantomData<T>,
}

impl<T: Clone + Send + Sync + 'static> ElimArray<T> {
    pub(crate) fn new() -> Self {
        ElimArray {
            slots: std::array::from_fn(|_| CachePadded::new(AtomicUsize::new(0))),
            _marker: PhantomData,
        }
    }

    /// Offer `node` (unpublished, value written) for elimination.
    ///
    /// Returns `true` if a popper claimed it — the push is complete and
    /// the node now belongs to the popper. Returns `false` if the offer
    /// was withdrawn (or never posted): the caller still owns the node
    /// and resumes its normal loop.
    ///
    /// # Safety
    ///
    /// `node` must be unpublished and uniquely owned by the caller.
    pub(crate) unsafe fn offer_push(&self, node: *mut Node<T>, g: &Guard, lane: usize) -> bool {
        let elim_slot = &self.slots[lane % ELIM_SLOTS];
        let addr = node as usize;
        debug_assert_eq!(g.get(slot::ELIM), 0, "offers do not nest");
        // Park the address for the whole camp (module docs, *ABA*): a
        // claimed offer is retired, never freed, and this hazard is what
        // keeps reclamation from recycling `addr` into a fresh offer the
        // withdraw CAS below could steal. Promotion ordering suffices: we
        // own the node when the store executes, and any scan that could
        // free it is ordered after the claim CAS that read our Release
        // offer publication, which this store precedes.
        g.promote(slot::ELIM, addr);
        // Release: a claimer's Acquire read of `addr` must see the value
        // written into the node before the offer.
        if elim_slot
            .compare_exchange(0, addr, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            g.clear(slot::ELIM);
            return false;
        }
        let mut i = 0;
        while i < ELIM_WAIT {
            if elim_slot.load(Ordering::Relaxed) != addr {
                // Claimed: do not touch the node again.
                g.clear(slot::ELIM);
                counters::note_pair();
                return true;
            }
            lfc_runtime::camp_round(i);
            i += 1;
        }
        // Withdraw. Failure means a popper won the claim in the window.
        let won = elim_slot
            .compare_exchange(addr, 0, Ordering::Relaxed, Ordering::Relaxed)
            .is_err();
        g.clear(slot::ELIM);
        if won {
            counters::note_pair();
        }
        won
    }

    /// Try to claim any offered push; on success the popper owns the node:
    /// the value is taken out, the node retired, and the value returned as
    /// the pop result.
    pub(crate) fn try_take(&self, lane: usize) -> Option<T> {
        for k in 0..ELIM_SLOTS {
            let slot = &self.slots[(lane + k) % ELIM_SLOTS];
            let w = slot.load(Ordering::Relaxed);
            if w == 0 {
                continue;
            }
            // Acquire: pairs with the offering pusher's Release, making
            // the node's value write visible before we read it.
            if slot
                .compare_exchange(w, 0, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                let node = w as *mut Node<T>;
                // Safety: winning the claim CAS transferred exclusive
                // ownership of the node to us.
                let val = unsafe { (*(*node).val.get()).take() };
                // Retire, never free (module docs, *ABA*): the offering
                // pusher may still be camping on the slot, and an
                // immediate free could recycle this address into a fresh
                // offer its withdraw CAS would steal. The pusher's ELIM
                // hazard defers reclamation past its camp.
                // Safety: claimed above, unlinked from the slot by our CAS.
                unsafe { retire_node(node) };
                return Some(val.expect("offered nodes always hold a value"));
            }
        }
        None
    }

    /// Whether any slot currently holds an offer (teardown sanity checks).
    #[cfg(test)]
    pub(crate) fn is_quiet(&self) -> bool {
        self.slots.iter().all(|s| s.load(Ordering::Relaxed) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{alloc_node, free_unpublished_node};
    use lfc_hazard::pin;

    #[test]
    fn solo_offer_withdraws_cleanly() {
        let e: ElimArray<u64> = ElimArray::new();
        let g = pin();
        let n = alloc_node(Some(5u64));
        // No popper around: the offer must come back withdrawn and the
        // caller keeps ownership.
        assert!(!unsafe { e.offer_push(n, &g, 0) });
        assert!(e.is_quiet());
        assert_eq!(g.get(slot::ELIM), 0, "camp hazard must be cleared");
        unsafe { free_unpublished_node(n) };
    }

    #[test]
    fn claim_transfers_the_value_and_retires_the_node() {
        let e: ElimArray<u64> = ElimArray::new();
        let n = alloc_node(Some(7u64));
        // Park the offer directly (offer_push would withdraw it before a
        // same-thread popper could run).
        e.slots[1]
            .compare_exchange(0, n as usize, Ordering::Release, Ordering::Relaxed)
            .unwrap();
        // The popper scans every lane, whatever its own lane is.
        assert_eq!(e.try_take(3), Some(7));
        assert!(e.is_quiet());
        assert_eq!(e.try_take(0), None);
    }

    #[test]
    fn claimed_address_is_not_recycled_while_pusher_camps() {
        // The ABA regression net (module docs): with the camping pusher's
        // ELIM hazard standing, a claimed node's address must never come
        // back from the allocator — under the old immediate-free scheme
        // the thread-local LIFO pool would hand it straight back, letting
        // a fresh offer reuse the address in the same slot.
        let e: ElimArray<u64> = ElimArray::new();
        let g = pin();
        let n = alloc_node(Some(11u64));
        let addr = n as usize;
        // Stand in for the camping pusher: hazard up, offer parked.
        g.promote(slot::ELIM, addr);
        e.slots[2]
            .compare_exchange(0, addr, Ordering::Release, Ordering::Relaxed)
            .unwrap();
        assert_eq!(e.try_take(0), Some(11));
        let mut probes = Vec::new();
        for _ in 0..64 {
            lfc_hazard::flush();
            let p = alloc_node(Some(0u64));
            assert_ne!(
                p as usize, addr,
                "claimed node recycled under a camping pusher"
            );
            probes.push(p);
        }
        for p in probes {
            unsafe { free_unpublished_node(p) };
        }
        // Camp over: the node becomes reclaimable.
        g.clear(slot::ELIM);
        lfc_hazard::flush();
    }

    #[test]
    fn paired_threads_eliminate() {
        // A parked pusher and a looping popper must eventually collide.
        let e: std::sync::Arc<ElimArray<u64>> = std::sync::Arc::new(ElimArray::new());
        let e2 = e.clone();
        let popper = std::thread::spawn(move || loop {
            if let Some(v) = e2.try_take(0) {
                return v;
            }
            std::thread::yield_now();
        });
        let g = pin();
        let mut v = 41u64;
        loop {
            v += 1;
            let n = alloc_node(Some(v));
            if unsafe { e.offer_push(n, &g, 0) } {
                break;
            }
            unsafe { free_unpublished_node(n) };
        }
        assert_eq!(popper.join().unwrap(), v);
        assert!(e.is_quiet());
        assert_eq!(g.get(slot::ELIM), 0, "camp hazard must be cleared");
    }
}

/// Elimination tallies (plain `std` atomics, diagnostics only).
pub mod counters {
    use std::sync::atomic::{AtomicU64, Ordering};

    static PAIRS: AtomicU64 = AtomicU64::new(0);

    pub(super) fn note_pair() {
        PAIRS.fetch_add(1, Ordering::Relaxed);
    }

    /// Push/pop pairs cancelled through the exchanger (process-wide).
    pub fn eliminated_pairs() -> u64 {
        PAIRS.load(Ordering::Relaxed)
    }
}
