//! Treiber's lock-free stack, made move-ready per the paper's §5.2 /
//! Algorithm 6: the linearization CASes at lines S7 (push) and S22 (pop)
//! become `scas` calls, push gains an abort path (S8–S10), and all reads of
//! `top` go through the DCAS `read` operation (S5, S15, S19).
//!
//! The stack is a verified move-candidate (paper Lemma 9). Note that a
//! *self*-move (stack onto itself) would put both linearization points on
//! the same `top` word — a case a two-word CAS cannot express; the move
//! layer detects it and reports [`lfc_core::MoveOutcome::WouldAlias`].

use crate::elim::ElimArray;
use crate::node::{
    alloc_node, alloc_solo_header, clone_val, free_unpublished_node, retire_node,
    retire_solo_header, try_alloc_node, try_alloc_solo_header, Node, SoloHeader,
};
use lfc_core::{
    InsertCtx, InsertOutcome, LinPoint, MoveSource, MoveTarget, NormalCas, RemoveCtx,
    RemoveOutcome, ScasResult,
};
use lfc_hazard::{pin, pin_op};
use lfc_runtime::{Backoff, BackoffCfg};
use std::ptr::NonNull;

/// A move-ready Treiber lock-free LIFO stack.
///
/// Since PR 7 the stack carries an embedded elimination exchanger
/// ([`crate::elim`]): a plain push and a plain pop that both failed their
/// `top` CAS may cancel each other through a side slot without ever
/// touching `top`. Composed operations never eliminate
/// ([`RemoveCtx::eliminable`] is `false` for composed contexts), and the
/// uncontended path is untouched — elimination is only attempted after a
/// CAS failure.
pub struct TreiberStack<T: Clone + Send + Sync + 'static> {
    header: NonNull<SoloHeader>,
    backoff: BackoffCfg,
    elim: ElimArray<T>,
    elim_enabled: bool,
    _marker: std::marker::PhantomData<T>,
}

// Safety: see `MsQueue`.
unsafe impl<T: Clone + Send + Sync + 'static> Send for TreiberStack<T> {}
unsafe impl<T: Clone + Send + Sync + 'static> Sync for TreiberStack<T> {}

impl<T: Clone + Send + Sync + 'static> TreiberStack<T> {
    /// Empty stack without contention backoff.
    pub fn new() -> Self {
        Self::with_backoff(BackoffCfg::NONE)
    }

    /// Empty stack whose operations run `cfg` backoff on failed CASes.
    pub fn with_backoff(cfg: BackoffCfg) -> Self {
        TreiberStack {
            header: alloc_solo_header(0),
            backoff: cfg,
            elim: ElimArray::new(),
            elim_enabled: true,
            _marker: std::marker::PhantomData,
        }
    }

    /// Fallible [`TreiberStack::new`]: surfaces header-allocation failure
    /// (genuine exhaustion, or the `structures.header` fault site) as `Err`
    /// instead of panicking.
    pub fn try_new() -> Result<Self, lfc_alloc::AllocError> {
        Ok(TreiberStack {
            header: try_alloc_solo_header(0)?,
            backoff: BackoffCfg::NONE,
            elim: ElimArray::new(),
            elim_enabled: true,
            _marker: std::marker::PhantomData,
        })
    }

    /// Empty stack with the elimination layer disabled — the PR 6 behaviour,
    /// kept for baseline measurements and tests that need every operation
    /// to linearize on `top`.
    pub fn without_elimination() -> Self {
        let mut s = Self::new();
        s.elim_enabled = false;
        s
    }

    #[inline]
    fn top(&self) -> &lfc_dcas::DAtomic {
        // Safety: header lives until Drop retires it.
        &unsafe { self.header.as_ref() }.word
    }

    #[inline]
    fn header_addr(&self) -> usize {
        self.header.as_ptr() as usize
    }

    /// Push `v`. Lock-free; never fails on an unbounded stack.
    pub fn push(&self, v: T) {
        let r = self.insert_with(v, &mut NormalCas);
        debug_assert_eq!(r, InsertOutcome::Inserted);
    }

    /// Fallible [`TreiberStack::push`]: a node-allocation failure (genuine
    /// exhaustion, or the `structures.node` fault site) surfaces as `Err`
    /// with the element handed back and the stack untouched.
    pub fn try_push(&self, v: T) -> Result<(), (T, lfc_alloc::AllocError)> {
        let node = match try_alloc_node(Some(v)) {
            Ok(n) => n,
            Err((v, e)) => return Err((v.expect("value handed back on failure"), e)),
        };
        let r = self.insert_node(node, &mut NormalCas);
        debug_assert_eq!(r, InsertOutcome::Inserted);
        Ok(())
    }

    /// Pop the most recently pushed element, if any. Lock-free.
    pub fn pop(&self) -> Option<T> {
        match self.remove_with(&mut NormalCas) {
            RemoveOutcome::Removed(v) => Some(v),
            RemoveOutcome::Empty => None,
            RemoveOutcome::Aborted => unreachable!("NormalCas never aborts"),
        }
    }

    /// Whether the stack was observed empty.
    pub fn is_empty(&self) -> bool {
        let g = pin();
        self.top().read(&g) == 0
    }

    /// Racy O(n) count; only meaningful on a quiescent stack (tests).
    pub fn count(&self) -> usize {
        let g = pin_op();
        let mut n = 0;
        let mut cur = self.top().read(&g);
        while cur != 0 {
            n += 1;
            // Safety: quiescent per the docs.
            cur = unsafe { &(*(cur as *mut Node<T>)).next }.read_acquire(&g);
        }
        n
    }
}

impl<T: Clone + Send + Sync + 'static> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + Send + Sync + 'static> TreiberStack<T> {
    /// Algorithm 6, `push` (lines S4–S12), on an already-allocated node:
    /// the shared tail of the infallible ([`MoveTarget::insert_with`]) and
    /// fallible ([`TreiberStack::try_push`]) insert paths.
    fn insert_node<C: InsertCtx>(&self, node: *mut Node<T>, ctx: &mut C) -> InsertOutcome {
        let g = pin();
        #[cfg(lfc_model)]
        if self.elim_enabled && ctx.eliminable() && crate::model_toggles::force_elim() {
            // Deterministic-exploration hook: collide in the exchanger
            // *before* touching `top`, so the model scenario reaches the
            // pairing interleavings within its budget.
            // Safety: node unpublished, ours.
            if unsafe { self.elim.offer_push(node, &g, g.tid() as usize) } {
                return InsertOutcome::Inserted;
            }
        }
        let mut bo = Backoff::new(self.backoff);
        loop {
            let ltop = self.top().read(&g); // S5
                                            // S6: link the unpublished node.
                                            // Safety: node is ours until the CAS publishes it.
            unsafe { &(*node).next }.store_word(ltop);
            // S7: the linearization point.
            match ctx.scas(LinPoint {
                word: self.top(),
                old: ltop,
                new: node as usize,
                hp: self.header_addr(),
            }) {
                ScasResult::Abort => {
                    // S8–S10.
                    // Safety: never published.
                    unsafe { free_unpublished_node(node) };
                    return InsertOutcome::Rejected;
                }
                ScasResult::Success => return InsertOutcome::Inserted, // S11–S12
                ScasResult::Fail => {
                    // Contention observed: offer the (still unpublished)
                    // node for elimination before backing off. A claimed
                    // offer completes the push — the colliding pop
                    // linearized it — and hands node ownership to the
                    // popper.
                    if self.elim_enabled && ctx.eliminable() {
                        // Safety: node unpublished, ours until claimed.
                        if unsafe { self.elim.offer_push(node, &g, g.tid() as usize) } {
                            return InsertOutcome::Inserted;
                        }
                    }
                    bo.fail()
                }
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> MoveTarget<T> for TreiberStack<T> {
    /// Algorithm 6, `push` (lines S1–S12). Needs no operation epoch: the
    /// only shared word it touches is `top` (header allocation, kept alive
    /// by the `&self` borrow); it never dereferences a node.
    fn insert_with<C: InsertCtx>(&self, elem: T, ctx: &mut C) -> InsertOutcome {
        let node = alloc_node(Some(elem)); // S2–S3
        self.insert_node(node, ctx)
    }
}

impl<T: Clone + Send + Sync + 'static> MoveSource<T> for TreiberStack<T> {
    /// Algorithm 6, `pop` (lines S13–S24). Fence-free since PR 3: the
    /// operation epoch replaces the S18 hazard publication and the S19–S20
    /// validation re-read — nodes cannot be recycled inside our epoch, so
    /// the S22 CAS cannot ABA onto a reallocated block.
    fn remove_with<C: RemoveCtx<T>>(&self, ctx: &mut C) -> RemoveOutcome<T> {
        let mut g = pin_op();
        #[cfg(lfc_model)]
        if self.elim_enabled && ctx.eliminable() && crate::model_toggles::force_elim() {
            if let Some(v) = self.elim.try_take(g.tid() as usize) {
                return RemoveOutcome::Removed(v);
            }
        }
        let mut bo = Backoff::new(self.backoff);
        loop {
            // Ejection check (PR 6): the retry head holds no pointers, so
            // an ejected thread acknowledges here and re-reads `top` under
            // its fresh era.
            g.repin_if_ejected();
            let ltop = self.top().read(&g); // S15
            if ltop == 0 {
                return RemoveOutcome::Empty; // S16–S17
            }
            let node = ltop as *mut Node<T>;
            // S21: the element is accessible before the linearization point.
            // Safety: ltop was reachable through `top` inside this epoch.
            let val = unsafe { clone_val(node) };
            // `ltop.next` is immutable while the node is linked.
            let lnext = unsafe { &(*node).next }.read_acquire(&g);
            // S22: the linearization point.
            let r = ctx.scas(
                LinPoint {
                    word: self.top(),
                    old: ltop,
                    new: lnext,
                    hp: self.header_addr(),
                },
                &val,
            );
            match r {
                ScasResult::Success => {
                    // S23–S24.
                    // Safety: unlinked by the successful CAS.
                    unsafe { retire_node(node) };
                    return RemoveOutcome::Removed(val);
                }
                ScasResult::Fail => {
                    // Contention observed: try to cancel against a waiting
                    // pusher instead of re-fighting over `top`.
                    if self.elim_enabled && ctx.eliminable() {
                        if let Some(v) = self.elim.try_take(g.tid() as usize) {
                            return RemoveOutcome::Removed(v);
                        }
                    }
                    bo.fail()
                }
                ScasResult::Abort => return RemoveOutcome::Aborted,
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        let g = pin();
        let mut cur = self.top().read(&g);
        while cur != 0 {
            let node = cur as *mut Node<T>;
            // Safety: exclusive teardown; see MsQueue::drop.
            let next = unsafe { &(*node).next }.read(&g);
            unsafe { retire_node(node) };
            cur = next;
        }
        // Safety: unique teardown.
        unsafe { retire_solo_header(self.header) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let s: TreiberStack<u64> = TreiberStack::new();
        assert!(s.is_empty());
        for i in 0..100 {
            s.push(i);
        }
        for i in (0..100).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn count_matches() {
        let s: TreiberStack<u64> = TreiberStack::new();
        for i in 0..9 {
            s.push(i);
        }
        assert_eq!(s.count(), 9);
        s.pop();
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn drop_reclaims_values() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let before = DROPS.load(Ordering::SeqCst);
        {
            let s: TreiberStack<D> = TreiberStack::new();
            for _ in 0..20 {
                s.push(D);
            }
        }
        crate::test_util::flush_until(|| DROPS.load(Ordering::SeqCst) - before == 20);
        assert_eq!(DROPS.load(Ordering::SeqCst) - before, 20);
    }

    #[test]
    fn concurrent_push_pop_conserves_values() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        const THREADS: u64 = 4;
        const PER: u64 = 5_000;
        let s: TreiberStack<u64> = TreiberStack::new();
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let s = &s;
                let seen = &seen;
                sc.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..PER {
                        s.push(t * PER + i);
                        if i % 3 == 0 {
                            if let Some(v) = s.pop() {
                                mine.push(v);
                            }
                        }
                    }
                    let mut set = seen.lock().unwrap();
                    for v in mine {
                        assert!(set.insert(v), "duplicate {v}");
                    }
                });
            }
        });
        // Drain the rest.
        let mut set = seen.lock().unwrap();
        while let Some(v) = s.pop() {
            assert!(set.insert(v), "duplicate {v}");
        }
        assert_eq!(set.len() as u64, THREADS * PER, "no values lost");
    }
}
