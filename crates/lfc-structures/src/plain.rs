//! Textbook (non-move-ready) Michael–Scott queue and Treiber stack.
//!
//! These are the *reference* implementations against which the `overhead`
//! benchmark validates the paper's claim that "the operations originally
//! supported by the data objects keep their performance behavior" once the
//! objects are made move-ready: identical algorithms and memory management
//! (epoch-batched protection via `pin_op`, same unified reclamation
//! domain), but plain CASes and plain loads — no `scas` indirection, no
//! descriptor check on reads.

use crate::node::{
    alloc_node, alloc_pair_header, alloc_solo_header, clone_val, retire_node, retire_pair_header,
    retire_solo_header, Node, PairHeader, SoloHeader,
};
use lfc_hazard::pin_op;
use std::ptr::NonNull;

/// Plain Michael–Scott queue (baseline; cannot take part in moves).
pub struct PlainMsQueue<T: Clone + Send + Sync + 'static> {
    header: NonNull<PairHeader>,
    _marker: std::marker::PhantomData<T>,
}

// Safety: as for MsQueue.
unsafe impl<T: Clone + Send + Sync + 'static> Send for PlainMsQueue<T> {}
unsafe impl<T: Clone + Send + Sync + 'static> Sync for PlainMsQueue<T> {}

impl<T: Clone + Send + Sync + 'static> PlainMsQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        let dummy = alloc_node::<T>(None);
        PlainMsQueue {
            header: alloc_pair_header(dummy as usize, dummy as usize),
            _marker: std::marker::PhantomData,
        }
    }

    #[inline]
    fn h(&self) -> &PairHeader {
        // Safety: header lives until Drop.
        unsafe { self.header.as_ref() }
    }

    /// Append at the tail.
    pub fn enqueue(&self, v: T) {
        let _g = pin_op();
        let node = alloc_node(Some(v));
        loop {
            let ltail = self.h().second.load_word();
            let tail_node = ltail as *mut Node<T>;
            // Safety: ltail was reachable through `tail` inside this epoch.
            let lnext = unsafe { &(*tail_node).next }.load_word();
            if lnext != 0 {
                self.h().second.cas_word(ltail, lnext);
                continue;
            }
            if unsafe { &(*tail_node).next }.cas_word(0, node as usize) {
                self.h().second.cas_word(ltail, node as usize);
                return;
            }
        }
    }

    /// Remove from the head.
    pub fn dequeue(&self) -> Option<T> {
        let _g = pin_op();
        loop {
            let lhead = self.h().first.load_word();
            let ltail = self.h().second.load_word();
            let head_node = lhead as *mut Node<T>;
            // Safety: lhead was reachable through `head` inside this epoch.
            let lnext = unsafe { &(*head_node).next }.load_word();
            if lnext == 0 {
                return None;
            }
            if lhead == ltail {
                self.h().second.cas_word(ltail, lnext);
                continue;
            }
            // Safety: lnext retires no earlier than lhead (see MsQueue).
            let val = unsafe { clone_val(lnext as *mut Node<T>) };
            if self.h().first.cas_word(lhead, lnext) {
                // Safety: unlinked.
                unsafe { retire_node(head_node) };
                return Some(val);
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Default for PlainMsQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for PlainMsQueue<T> {
    fn drop(&mut self) {
        let mut cur = self.h().first.load_word();
        while cur != 0 {
            let node = cur as *mut Node<T>;
            // Safety: exclusive teardown.
            let next = unsafe { &(*node).next }.load_word();
            unsafe { retire_node(node) };
            cur = next;
        }
        // Safety: unique teardown.
        unsafe { retire_pair_header(self.header) };
    }
}

/// Plain Treiber stack (baseline; cannot take part in moves).
pub struct PlainTreiberStack<T: Clone + Send + Sync + 'static> {
    header: NonNull<SoloHeader>,
    _marker: std::marker::PhantomData<T>,
}

// Safety: as for TreiberStack.
unsafe impl<T: Clone + Send + Sync + 'static> Send for PlainTreiberStack<T> {}
unsafe impl<T: Clone + Send + Sync + 'static> Sync for PlainTreiberStack<T> {}

impl<T: Clone + Send + Sync + 'static> PlainTreiberStack<T> {
    /// Empty stack.
    pub fn new() -> Self {
        PlainTreiberStack {
            header: alloc_solo_header(0),
            _marker: std::marker::PhantomData,
        }
    }

    #[inline]
    fn top(&self) -> &lfc_dcas::DAtomic {
        // Safety: header lives until Drop.
        &unsafe { self.header.as_ref() }.word
    }

    /// Push.
    pub fn push(&self, v: T) {
        // No shared dereference: the CAS on `top` needs no protection.
        let node = alloc_node(Some(v));
        loop {
            let ltop = self.top().load_word();
            // Safety: unpublished node.
            unsafe { &(*node).next }.store_word(ltop);
            if self.top().cas_word(ltop, node as usize) {
                return;
            }
        }
    }

    /// Pop.
    pub fn pop(&self) -> Option<T> {
        let _g = pin_op();
        loop {
            let ltop = self.top().load_word();
            if ltop == 0 {
                return None;
            }
            let node = ltop as *mut Node<T>;
            // Safety: ltop was reachable through `top` inside this epoch;
            // no recycle inside the epoch means the CAS below cannot ABA.
            let val = unsafe { clone_val(node) };
            let lnext = unsafe { &(*node).next }.load_word();
            if self.top().cas_word(ltop, lnext) {
                // Safety: unlinked.
                unsafe { retire_node(node) };
                return Some(val);
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Default for PlainTreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for PlainTreiberStack<T> {
    fn drop(&mut self) {
        let mut cur = self.top().load_word();
        while cur != 0 {
            let node = cur as *mut Node<T>;
            // Safety: exclusive teardown.
            let next = unsafe { &(*node).next }.load_word();
            unsafe { retire_node(node) };
            cur = next;
        }
        // Safety: unique teardown.
        unsafe { retire_solo_header(self.header) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_fifo() {
        let q: PlainMsQueue<u64> = PlainMsQueue::new();
        for i in 0..50 {
            q.enqueue(i);
        }
        for i in 0..50 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn stack_lifo() {
        let s: PlainTreiberStack<u64> = PlainTreiberStack::new();
        for i in 0..50 {
            s.push(i);
        }
        for i in (0..50).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn queue_mpmc_conservation() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let q: PlainMsQueue<u64> = PlainMsQueue::new();
        let sum_out = AtomicU64::new(0);
        let taken = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..5_000 {
                        q.enqueue(t * 5_000 + i);
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                let sum_out = &sum_out;
                let taken = &taken;
                s.spawn(move || {
                    while taken.load(Ordering::Relaxed) < 10_000 {
                        if let Some(v) = q.dequeue() {
                            sum_out.fetch_add(v, Ordering::Relaxed);
                            taken.fetch_add(1, Ordering::Relaxed);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        let expected: u64 = (0..10_000).sum();
        assert_eq!(sum_out.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn stack_concurrent_conservation() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let s: PlainTreiberStack<u64> = PlainTreiberStack::new();
        let sum_out = AtomicU64::new(0);
        let taken = AtomicU64::new(0);
        std::thread::scope(|sc| {
            for t in 0..2u64 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..5_000 {
                        s.push(t * 5_000 + i + 1);
                    }
                });
            }
            for _ in 0..2 {
                let s = &s;
                let sum_out = &sum_out;
                let taken = &taken;
                sc.spawn(move || {
                    while taken.load(Ordering::Relaxed) < 10_000 {
                        if let Some(v) = s.pop() {
                            sum_out.fetch_add(v, Ordering::Relaxed);
                            taken.fetch_add(1, Ordering::Relaxed);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        let expected: u64 = (1..=10_000).sum();
        assert_eq!(sum_out.load(Ordering::Relaxed), expected);
    }
}
