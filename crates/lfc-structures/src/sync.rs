//! Crate-local virtual-atomics facade: re-exports
//! [`lfc_runtime::sync`] (see there). The structures' shared words are
//! [`lfc_dcas::DAtomic`]s, which are already instrumented through
//! `lfc-dcas`'s facade; any *direct* atomic a future structure needs must
//! come from here, never from `std`.

pub use lfc_runtime::sync::*;
