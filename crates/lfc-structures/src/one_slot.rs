//! A one-element container: the smallest useful move-ready object.
//!
//! Its single word holds null or a node pointer; insert CASes null → node
//! (failing if occupied), remove CASes node → null. Because the insert can
//! genuinely fail (the slot is *bounded*), `OneSlot` exercises the move
//! abort path that unbounded queues and stacks never take (paper step 2:
//! "If the insertion fails, due for example to the object being full, the
//! move is aborted"), and it is handy as a mailbox in examples.

use crate::node::{
    alloc_node, alloc_solo_header, clone_val, free_unpublished_node, retire_node,
    retire_solo_header, Node, SoloHeader,
};
use lfc_core::{
    InsertCtx, InsertOutcome, LinPoint, MoveSource, MoveTarget, NormalCas, RemoveCtx,
    RemoveOutcome, ScasResult,
};
use lfc_hazard::{pin, pin_op};
use std::ptr::NonNull;

/// A move-ready single-element slot (a bounded container of capacity 1).
pub struct OneSlot<T: Clone + Send + Sync + 'static> {
    header: NonNull<SoloHeader>,
    _marker: std::marker::PhantomData<T>,
}

// Safety: see `TreiberStack`.
unsafe impl<T: Clone + Send + Sync + 'static> Send for OneSlot<T> {}
unsafe impl<T: Clone + Send + Sync + 'static> Sync for OneSlot<T> {}

impl<T: Clone + Send + Sync + 'static> OneSlot<T> {
    /// Empty slot.
    pub fn new() -> Self {
        OneSlot {
            header: alloc_solo_header(0),
            _marker: std::marker::PhantomData,
        }
    }

    #[inline]
    fn word(&self) -> &lfc_dcas::DAtomic {
        // Safety: header lives until Drop.
        &unsafe { self.header.as_ref() }.word
    }

    #[inline]
    fn header_addr(&self) -> usize {
        self.header.as_ptr() as usize
    }

    /// Try to store `v`; fails if the slot is occupied.
    pub fn put(&self, v: T) -> bool {
        self.insert_with(v, &mut NormalCas) == InsertOutcome::Inserted
    }

    /// Take the element out, if present.
    pub fn take(&self) -> Option<T> {
        match self.remove_with(&mut NormalCas) {
            RemoveOutcome::Removed(v) => Some(v),
            RemoveOutcome::Empty => None,
            RemoveOutcome::Aborted => unreachable!("NormalCas never aborts"),
        }
    }

    /// Clone the element without removing it, if present.
    pub fn peek(&self) -> Option<T> {
        let g = pin_op();
        let cur = self.word().read(&g);
        if cur == 0 {
            return None;
        }
        // Safety: cur was reachable through the slot inside this epoch;
        // values are immutable.
        Some(unsafe { clone_val(cur as *mut Node<T>) })
    }

    /// Whether the slot was observed occupied.
    pub fn is_occupied(&self) -> bool {
        let g = pin();
        self.word().read(&g) != 0
    }
}

impl<T: Clone + Send + Sync + 'static> Default for OneSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + Send + Sync + 'static> MoveTarget<T> for OneSlot<T> {
    fn insert_with<C: InsertCtx>(&self, elem: T, ctx: &mut C) -> InsertOutcome {
        // No operation epoch: only the borrow-protected header word is read.
        let g = pin();
        let node = alloc_node(Some(elem));
        loop {
            let cur = self.word().read(&g);
            if cur != 0 {
                // Occupied: fail before the linearization point; a composed
                // move aborts with TargetRejected.
                // Safety: never published.
                unsafe { free_unpublished_node(node) };
                return InsertOutcome::Rejected;
            }
            match ctx.scas(LinPoint {
                word: self.word(),
                old: 0,
                new: node as usize,
                hp: self.header_addr(),
            }) {
                ScasResult::Success => return InsertOutcome::Inserted,
                ScasResult::Fail => continue,
                ScasResult::Abort => {
                    // Safety: never published.
                    unsafe { free_unpublished_node(node) };
                    return InsertOutcome::Rejected;
                }
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> MoveSource<T> for OneSlot<T> {
    fn remove_with<C: RemoveCtx<T>>(&self, ctx: &mut C) -> RemoveOutcome<T> {
        let mut g = pin_op();
        loop {
            // Ejection check (PR 6): see TreiberStack.
            g.repin_if_ejected();
            let cur = self.word().read(&g);
            if cur == 0 {
                return RemoveOutcome::Empty;
            }
            // Safety: cur epoch-protected; element accessible before the
            // linearization point (requirement 4).
            let val = unsafe { clone_val(cur as *mut Node<T>) };
            let r = ctx.scas(
                LinPoint {
                    word: self.word(),
                    old: cur,
                    new: 0,
                    hp: self.header_addr(),
                },
                &val,
            );
            match r {
                ScasResult::Success => {
                    // Safety: unlinked.
                    unsafe { retire_node(cur as *mut Node<T>) };
                    return RemoveOutcome::Removed(val);
                }
                ScasResult::Fail => continue,
                ScasResult::Abort => return RemoveOutcome::Aborted,
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for OneSlot<T> {
    fn drop(&mut self) {
        let g = pin();
        let cur = self.word().read(&g);
        if cur != 0 {
            // Safety: exclusive teardown.
            unsafe { retire_node(cur as *mut Node<T>) };
        }
        // Safety: unique teardown.
        unsafe { retire_solo_header(self.header) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_take_roundtrip() {
        let s: OneSlot<u64> = OneSlot::new();
        assert!(!s.is_occupied());
        assert!(s.put(5));
        assert!(!s.put(6), "occupied");
        assert_eq!(s.peek(), Some(5));
        assert_eq!(s.take(), Some(5));
        assert_eq!(s.take(), None);
    }

    #[test]
    fn drop_with_occupant_reclaims() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let before = DROPS.load(Ordering::SeqCst);
        {
            let s: OneSlot<D> = OneSlot::new();
            s.put(D);
        }
        crate::test_util::flush_until(|| DROPS.load(Ordering::SeqCst) == before + 1);
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
    }

    #[test]
    fn contended_put_admits_exactly_one() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let s: OneSlot<u64> = OneSlot::new();
        let wins = AtomicUsize::new(0);
        std::thread::scope(|sc| {
            for t in 0..4 {
                let s = &s;
                let wins = &wins;
                sc.spawn(move || {
                    if s.put(t) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1);
        assert!(s.take().is_some());
    }
}
