//! The shared traversal kernel: **one** Michael-style `find` for every
//! marked-chain structure in this crate.
//!
//! [`OrderedSet`](crate::OrderedSet), [`LfHashMap`](crate::LfHashMap) and
//! the bottom level of [`LfSkipMap`](crate::LfSkipMap) are all the same
//! data structure at the chain level: nodes threaded through a raw
//! protocol word whose bit 2 ([`DEL_MARK`]) is the Harris logical-delete
//! mark, searched by "first node at-or-after the target". Before PR 9
//! the search loop — with its mark-check, unlink-helping and restart
//! discipline — was duplicated per structure, and so was the safety
//! argument below. [`find_pos`] is that loop, written once; the
//! structures supply only their node layout ([`ChainNode`]), their
//! restart anchor and their ordering predicate.
//!
//! # The traversal (Michael's `find`, fence-free since PR 3)
//!
//! The walk holds no per-node hazards. The caller's *operation epoch*
//! ([`lfc_hazard::pin_op`], one fence at entry) protects every node the
//! walk can reach: any node reachable after the epoch's enter fence is
//! retired, if at all, at an epoch no scan can free under us — so the
//! hops are plain acquire reads with no per-node hazard publication or
//! validation re-read. This is the **single** statement of the PR 3
//! fence-free proof; the call sites only assert which guard provides the
//! epoch.
//!
//! Per hop, in order:
//!
//! 1. **Predecessor-mark check.** `*prev_word` is re-read; if the mark
//!    bit is set, the predecessor was logically deleted under us — its
//!    link is frozen and no longer part of the live chain — and the walk
//!    restarts from the anchor (Michael's find re-checks the mark on
//!    every hop).
//! 2. **Unlink helping.** If `cur`'s own next word carries the mark,
//!    `cur` is logically deleted: the walk CASes it out of the chain
//!    (cleanup helping; a stale `prev_word` makes the CAS fail
//!    harmlessly) and the **winner** of that CAS retires the node via
//!    [`ChainNode::retire_unlinked`]. This is the only physical-unlink
//!    site in the crate.
//! 3. **Ordering predicate.** The first `cur` with `at_or_after(cur)`
//!    ends the walk; otherwise `cur` becomes the predecessor.
//!
//! # Restart anchor
//!
//! The anchor is a closure, re-invoked on **every** restart (not hoisted),
//! because the three structures restart differently:
//!
//! * `OrderedSet` restarts at the list head word — the closure is constant.
//! * `LfHashMap` restarts at a bucket dummy's next word. Dummies are
//!   unlinked only at `Drop` and never logically deleted, so the same
//!   dummy stays a sound anchor across restarts; no re-resolution needed,
//!   and the traversal can run under a plain [`Guard`] (no repin point).
//! * `LfSkipMap` anchors at the closest level-≥1 predecessor, which *can*
//!   be logically deleted between restarts; its closure re-runs the
//!   tower search so every restart re-derives a live anchor.
//!
//! # Ejection restart point (PR 6)
//!
//! [`TraverseGuard::at_restart`] runs at the top of every retry, where
//! the walk holds no pointers: for an [`OpGuard`] caller this is
//! [`OpGuard::repin_if_ejected`] — acknowledging an ejection there is
//! free because the walk below re-derives everything from the anchor
//! under the fresh era (which is also why the anchor closure is
//! re-invoked: pointers obtained under the pre-ejection era are dead).
//! Plain [`Guard`] callers (bucket-dummy anchored) have no repin point
//! and use [`NoRepin`].
//!
//! # Ordering audit (moved here from the two pre-PR 9 copies)
//!
//! | access | ordering | why |
//! |---|---|---|
//! | `*prev_word` read | Acquire (`read_acquire`) | pairs with the inserting/unlinking CAS's Release: the successor's fields are visible before its address |
//! | `cur.next` read | Acquire | same pairing; also carries the logical-delete mark |
//! | unlink CAS | AcqRel (`cas_word`) | Release republishes the successor chain under the new link; Acquire orders the retire after the frozen link's final value |
//! | retire | — | winner-only (the CAS arbitrates), under the caller's epoch |

use lfc_dcas::DAtomic;
use lfc_hazard::{Guard, OpGuard};

/// Logical-deletion mark on raw chain words (descriptor kind bits are
/// [1:0], so the mark occupies bit 2 of the 8-aligned pointer word).
pub(crate) const DEL_MARK: usize = 0b100;

/// Whether a raw chain word carries the logical-delete mark.
#[inline]
pub(crate) fn is_deleted(w: usize) -> bool {
    w & DEL_MARK != 0
}

/// The chain word with the logical-delete mark stripped.
#[inline]
pub(crate) fn without_mark(w: usize) -> usize {
    w & !DEL_MARK
}

/// A node type whose instances are threaded through a marked chain word.
///
/// # Safety
///
/// `chain_word` must return the word the chain is threaded through (the
/// word carrying [`DEL_MARK`] when the node is logically deleted), and
/// `retire_unlinked` must be safe to call exactly once on a node that has
/// been physically unlinked from the chain while epoch-protected.
pub(crate) unsafe trait ChainNode {
    /// The node's chain ("next") word.
    fn chain_word(&self) -> &DAtomic;

    /// Hand the physically unlinked node to reclamation.
    ///
    /// Called only by the winner of the unlink CAS. For plainly owned
    /// nodes this is a hazard-retire; [`LfSkipMap`](crate::LfSkipMap)
    /// nodes instead release the level-0 tower reference here (the node
    /// retires when the last level lets go).
    ///
    /// # Safety
    ///
    /// `p` was just unlinked by the caller and is epoch-protected.
    unsafe fn retire_unlinked(p: *mut Self);
}

/// Where a key belongs in a chain: the word to CAS and its successor.
///
/// `prev_alloc` was called `prev_hp` before PR 9 — a relic of the
/// pre-PR 3 per-node hazard-pointer scheme. It is *not* a hazard: it is
/// the base address of the allocation hosting `prev_word` (anchor header,
/// bucket dummy, or predecessor node), recorded so a composed capture can
/// promote that allocation into an `ENTRY*` hazard slot at capture time
/// ([`lfc_core::LinPoint::hp`]).
pub(crate) struct Position<N> {
    /// Word holding `cur` (the anchor word or a predecessor's chain word).
    pub prev_word: *const DAtomic,
    /// Base of the allocation containing `prev_word` (see type docs).
    pub prev_alloc: usize,
    /// First node satisfying the ordering predicate, or null.
    pub cur: *mut N,
}

/// The guard a traversal runs under: an epoch source plus an optional
/// ejection-restart hook.
pub(crate) trait TraverseGuard {
    /// Called at the top of every retry, where the walk holds no
    /// pointers (the PR 6 restart point).
    fn at_restart(&mut self);

    /// The epoch guard protecting the walk's reads.
    fn guard(&self) -> &Guard;
}

impl TraverseGuard for OpGuard {
    #[inline]
    fn at_restart(&mut self) {
        self.repin_if_ejected();
    }

    #[inline]
    fn guard(&self) -> &Guard {
        self
    }
}

/// [`TraverseGuard`] for walks anchored at a structure whose anchor can
/// never be logically deleted (bucket dummies): restarting needs no
/// repin, so a plain borrowed [`Guard`] suffices.
pub(crate) struct NoRepin<'g>(pub &'g Guard);

impl TraverseGuard for NoRepin<'_> {
    #[inline]
    fn at_restart(&mut self) {}

    #[inline]
    fn guard(&self) -> &Guard {
        self.0
    }
}

/// Locate the first node satisfying `at_or_after`, unlinking logically
/// deleted nodes on the way. See the module docs for the full protocol
/// and safety argument.
///
/// `anchor` returns the restart anchor — the word to start from and the
/// base address of its allocation — and is re-invoked on every restart.
///
/// # Safety
///
/// * `anchor` must return a word reachable and epoch-protected under the
///   guard it is handed (an owned header, a never-deleted dummy, or a
///   node found under that same guard's epoch).
/// * Every node threaded through the chain must be an `N` allocated for
///   this chain's [`ChainNode`] discipline.
#[inline]
pub(crate) unsafe fn find_pos<N, G, A, P>(
    g: &mut G,
    mut anchor: A,
    mut at_or_after: P,
) -> Position<N>
where
    N: ChainNode,
    G: TraverseGuard,
    A: FnMut(&Guard) -> (*const DAtomic, usize),
    P: FnMut(*mut N) -> bool,
{
    'retry: loop {
        g.at_restart();
        let (mut prev_word, mut prev_alloc) = anchor(g.guard());
        loop {
            // Safety: prev allocation is epoch-protected (anchor contract;
            // advanced predecessors were reachable inside this epoch).
            let cur = unsafe { &*prev_word }.read_acquire(g.guard());
            if is_deleted(cur) {
                // Predecessor logically deleted under us: its link is
                // frozen and off the live chain — restart at the anchor.
                continue 'retry;
            }
            if cur == 0 {
                return Position {
                    prev_word,
                    prev_alloc,
                    cur: std::ptr::null_mut(),
                };
            }
            let cur_node = cur as *mut N;
            // Safety: cur was reachable through the live chain inside this
            // epoch, so its allocation cannot be reclaimed yet even if it
            // is unlinked concurrently.
            let next_w = unsafe { &*cur_node }.chain_word().read_acquire(g.guard());
            if is_deleted(next_w) {
                // Logically deleted: unlink (cleanup helping) and retry.
                // A stale prev word makes the CAS fail harmlessly.
                if unsafe { &*prev_word }.cas_word(cur, without_mark(next_w)) {
                    // Safety: we won the unlink.
                    unsafe { N::retire_unlinked(cur_node) };
                }
                continue 'retry;
            }
            if at_or_after(cur_node) {
                return Position {
                    prev_word,
                    prev_alloc,
                    cur: cur_node,
                };
            }
            // Advance: cur becomes the new predecessor.
            prev_word = unsafe { &*cur_node }.chain_word();
            prev_alloc = cur;
        }
    }
}
